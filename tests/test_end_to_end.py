"""Integration tests: the Explain3D facade end to end."""

import pytest

from repro import Explain3D, Explain3DConfig, Priors, matching
from repro.baselines import Explain3DMethod, ThresholdBaseline
from repro.evaluation import evaluate_evidence, evaluate_explanations, run_method


class TestFacadeOnFigure1:
    def test_explain_end_to_end(self, figure1_db1, figure1_db2, figure1_queries, figure1_mapping):
        q1, q2 = figure1_queries
        engine = Explain3D(Explain3DConfig(partitioning="none", priors=Priors(0.9, 0.9)))
        report = engine.explain(
            q1, figure1_db1, q2, figure1_db2,
            attribute_matches=matching(("Program", "Major")),
            tuple_mapping=figure1_mapping,
        )
        assert report.problem.result_left == 7.0
        assert report.problem.result_right == 6.0
        assert len(report.explanations.value) == 1
        assert not report.explanations.provenance
        assert len(report.evidence) == 6
        assert report.timings["total"] > 0
        description = report.describe()
        assert "Query results disagree" in description
        assert "wrong impact" in description

    def test_explain_with_automatic_stage1(self, figure1_db1, figure1_db2, figure1_queries):
        """Without a provided mapping, the record-linkage stage runs on its own."""
        q1, q2 = figure1_queries
        engine = Explain3D(Explain3DConfig(partitioning="none"))
        report = engine.explain(
            q1, figure1_db1, q2, figure1_db2, attribute_matches=matching(("Program", "Major"))
        )
        # Every exact-name program is matched; CS/CSE has no token overlap so it
        # cannot be recovered from similarity alone.
        assert len(report.evidence) >= 5
        assert report.summary is not None

    def test_schema_matching_fallback(self, figure1_db1, figure1_db2, figure1_queries):
        """With no attribute matches given, the schema matcher must find Program~Major."""
        q1, q2 = figure1_queries
        engine = Explain3D(Explain3DConfig(partitioning="none"))
        report = engine.explain(q1, figure1_db1, q2, figure1_db2)
        pairs = report.problem.attribute_matches.attribute_pairs()
        assert ("Program", "Major") in pairs

    def test_summarization_can_be_disabled(self, figure1_db1, figure1_db2, figure1_queries):
        q1, q2 = figure1_queries
        engine = Explain3D(Explain3DConfig(partitioning="none", summarize=False))
        report = engine.explain(
            q1, figure1_db1, q2, figure1_db2, attribute_matches=matching(("Program", "Major"))
        )
        assert report.summary.size == 0


class TestFacadeOnGeneratedData:
    def test_academic_pair_accuracy(self, small_academic_pair):
        problem, gold = small_academic_pair.build_problem()
        engine = Explain3D(Explain3DConfig(partitioning="components"))
        report = engine.explain_problem(problem)
        explanation_metrics = evaluate_explanations(report.explanations, gold, problem)
        evidence_metrics = evaluate_evidence(report.explanations, gold)
        # The generated pair is small and mostly clean; Explain3D should do well.
        assert evidence_metrics.f_measure > 0.75
        assert explanation_metrics.f_measure > 0.55

    def test_explain3d_beats_threshold_on_academic(self, small_academic_pair):
        problem, gold = small_academic_pair.build_problem()
        exp3d = run_method(Explain3DMethod(), problem, gold)
        threshold = run_method(ThresholdBaseline(0.9), problem, gold)
        assert exp3d.evidence.f_measure >= threshold.evidence.f_measure
        assert exp3d.explanation.f_measure >= threshold.explanation.f_measure - 0.05

    def test_synthetic_pair_near_perfect(self, small_synthetic_pair):
        problem, gold = small_synthetic_pair.build_problem()
        engine = Explain3D(Explain3DConfig(partitioning="smart", batch_size=100))
        report = engine.explain_problem(problem)
        explanation_metrics = evaluate_explanations(report.explanations, gold, problem)
        evidence_metrics = evaluate_evidence(report.explanations, gold)
        assert explanation_metrics.f_measure > 0.9
        assert evidence_metrics.f_measure > 0.9

    def test_partitioned_and_exact_agree_on_synthetic(self, small_synthetic_pair):
        problem, gold = small_synthetic_pair.build_problem()
        exact = Explain3D(Explain3DConfig(partitioning="none")).explain_problem(problem)
        batched = Explain3D(
            Explain3DConfig(partitioning="smart", batch_size=60)
        ).explain_problem(problem)
        exact_metrics = evaluate_explanations(exact.explanations, gold, problem)
        batched_metrics = evaluate_explanations(batched.explanations, gold, problem)
        # Smart partitioning should not lose noticeable accuracy (Section 5.3).
        assert batched_metrics.f_measure >= exact_metrics.f_measure - 0.05

    def test_report_describe_runs(self, small_academic_pair):
        problem, _ = small_academic_pair.build_problem()
        report = Explain3D(Explain3DConfig(partitioning="components")).explain_problem(problem)
        text = report.describe(max_items=3)
        assert "explanations" in text
        assert "partition" in text

"""Unit tests for repro.relational.relation."""

import pytest

from repro.relational.errors import SchemaError
from repro.relational.relation import Relation, Row
from repro.relational.schema import Attribute, DataType, Schema


@pytest.fixture()
def movies() -> Relation:
    return Relation.from_records(
        [
            {"title": "Alpha", "year": 1999, "gross": 10.0},
            {"title": "Beta", "year": 2001, "gross": 5.5},
            {"title": "Gamma", "year": 1999, "gross": 7.25},
        ],
        name="movies",
    )


class TestConstruction:
    def test_from_records_infers_schema(self, movies):
        assert movies.schema.dtype("year") is DataType.INTEGER
        assert len(movies) == 3

    def test_base_rows_get_singleton_lineage(self, movies):
        assert movies[0].lineage == frozenset({"movies:0"})
        assert movies[2].lineage == frozenset({"movies:2"})

    def test_append_coerces(self, movies):
        row = movies.append(["Delta", "2005", "1.0"])
        assert row.values == ("Delta", 2005, 1.0)

    def test_append_row_arity_checked(self, movies):
        with pytest.raises(SchemaError):
            movies.append_row(Row(("too", "short")))

    def test_row_id(self, movies):
        assert movies.row_id(1) == "movies:1"


class TestAccessors:
    def test_column(self, movies):
        assert movies.column("title") == ["Alpha", "Beta", "Gamma"]

    def test_distinct_values(self, movies):
        assert movies.distinct_values("year") == {1999, 2001}

    def test_as_dicts(self, movies):
        assert movies.as_dicts()[1] == {"title": "Beta", "year": 2001, "gross": 5.5}

    def test_row_value_and_dict(self, movies):
        row = movies[0]
        assert row.value(movies.schema, "title") == "Alpha"
        assert row.as_dict(movies.schema)["gross"] == 10.0


class TestAlgebra:
    def test_select(self, movies):
        result = movies.select(lambda record: record["year"] == 1999)
        assert len(result) == 2
        assert {r.values[0] for r in result} == {"Alpha", "Gamma"}

    def test_project_keeps_lineage(self, movies):
        result = movies.project(["title"])
        assert result.schema.names == ("title",)
        assert result[1].lineage == frozenset({"movies:1"})

    def test_rename(self, movies):
        renamed = movies.rename({"title": "name"})
        assert "name" in renamed.schema

    def test_extend_column(self, movies):
        extended = movies.extend_column(Attribute("flag", DataType.BOOLEAN), [True, False, True])
        assert extended.column("flag") == [True, False, True]

    def test_extend_column_wrong_length(self, movies):
        with pytest.raises(SchemaError):
            movies.extend_column(Attribute("flag"), ["only-one"])

    def test_union(self, movies):
        doubled = movies.union(movies)
        assert len(doubled) == 6

    def test_union_schema_mismatch(self, movies):
        other = Relation(Schema(["a"]), name="other")
        with pytest.raises(SchemaError):
            movies.union(other)

    def test_distinct_merges_lineage(self):
        relation = Relation.from_records(
            [{"x": 1}, {"x": 1}, {"x": 2}], name="r"
        )
        distinct = relation.distinct()
        assert len(distinct) == 2
        assert distinct[0].lineage == frozenset({"r:0", "r:1"})

    def test_sorted_by(self, movies):
        ordered = movies.sorted_by("gross")
        assert [row.values[0] for row in ordered] == ["Beta", "Gamma", "Alpha"]

    def test_sorted_by_reverse(self, movies):
        ordered = movies.sorted_by("gross", reverse=True)
        assert ordered[0].values[0] == "Alpha"

    def test_head(self, movies):
        assert len(movies.head(2)) == 2

    def test_to_table_contains_header_and_rows(self, movies):
        table = movies.to_table()
        assert "title" in table
        assert "Alpha" in table

    def test_to_table_truncates(self, movies):
        table = movies.to_table(max_rows=1)
        assert "more rows" in table

"""The fleet layer: hash ring, router failover, single flight, metrics.

The fleet guarantee mirrors the service guarantee one level up: a fleet of
workers behind the router is a transparent accelerator -- every routed
answer must be byte-identical to a direct single-daemon answer, through
worker death, failover re-hash and request coalescing.

Router tests run against *in-process* worker daemons (``serve_in_background``
fronted by :class:`StaticWorker` handles) so they exercise the real HTTP
protocol without subprocess spawn latency; one lifecycle test uses a real
``python -m repro.service`` subprocess.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.fleet import (
    FleetRouter,
    HashRing,
    StaticWorker,
    WorkerPool,
    WorkerSpec,
    ring_position,
    serve_router_in_background,
)
from repro.fleet.__main__ import canonical_report, demo_pair
from repro.service.api import ServiceClient, ServiceClientError, serve_in_background
from repro.service.engine import ExplainService
from repro.service.metrics import (
    LatencyRecorder,
    merge_endpoint_snapshots,
    quantile,
)


# ---------------------------------------------------------------------------
# Consistent-hash ring
# ---------------------------------------------------------------------------

KEYS = [f"key-{i}" for i in range(400)]


class TestHashRing:
    def test_position_is_process_independent(self):
        # sha256, not salted hash(): the literal value pins determinism
        # across interpreter restarts (router and workers must agree).
        assert ring_position("worker-0#0") == ring_position("worker-0#0")
        assert ring_position("a") != ring_position("b")

    def test_identical_rings_agree_on_every_key(self):
        a = HashRing(["w0", "w1", "w2"], replicas=32)
        b = HashRing(["w2", "w0", "w1"], replicas=32)  # order must not matter
        assert [a.node_for(k) for k in KEYS] == [b.node_for(k) for k in KEYS]

    def test_add_and_remove_are_idempotent(self):
        ring = HashRing(["w0"], replicas=8)
        ring.add("w0")
        assert len(ring) == 1
        ring.remove("absent")
        assert ring.nodes() == ["w0"]

    def test_join_moves_only_a_bounded_fraction(self):
        ring = HashRing(["w0", "w1", "w2", "w3"], replicas=64)
        before = {k: ring.node_for(k) for k in KEYS}
        ring.add("w4")
        after = {k: ring.node_for(k) for k in KEYS}
        moved = sum(1 for k in KEYS if before[k] != after[k])
        # Expected ~1/5 of the keyspace; a rehash-everything bug moves ~4/5.
        assert 0 < moved < len(KEYS) * 0.45
        # Every moved key moved *onto* the newcomer, never between survivors.
        assert all(after[k] == "w4" for k in KEYS if before[k] != after[k])

    def test_leave_moves_only_the_departed_nodes_keys(self):
        ring = HashRing(["w0", "w1", "w2"], replicas=64)
        before = {k: ring.node_for(k) for k in KEYS}
        ring.remove("w1")
        after = {k: ring.node_for(k) for k in KEYS}
        for key in KEYS:
            if before[key] != "w1":
                assert after[key] == before[key]  # survivors keep their keys
            else:
                assert after[key] != "w1"

    def test_failover_preference_is_distinct_and_owner_first(self):
        ring = HashRing(["w0", "w1", "w2"], replicas=32)
        for key in KEYS[:50]:
            order = list(ring.preference(key))
            assert order[0] == ring.node_for(key)
            assert sorted(order) == ["w0", "w1", "w2"]  # all distinct nodes

    def test_exclude_reroutes_and_exhaustion_raises(self):
        ring = HashRing(["w0", "w1"], replicas=16)
        key = "some-request"
        owner = ring.node_for(key)
        other = ring.node_for(key, exclude={owner})
        assert other != owner
        with pytest.raises(LookupError):
            ring.node_for(key, exclude={"w0", "w1"})

    def test_spread_is_roughly_balanced(self):
        ring = HashRing(["w0", "w1", "w2"], replicas=64)
        spread = ring.spread(KEYS)
        assert sum(spread.values()) == len(KEYS)
        for node, owned in spread.items():
            assert owned >= len(KEYS) * 0.10, f"{node} starved: {spread}"

    def test_empty_ring(self):
        ring = HashRing()
        assert list(ring.preference("k")) == []
        with pytest.raises(LookupError):
            ring.node_for("k")


# ---------------------------------------------------------------------------
# Latency metrics
# ---------------------------------------------------------------------------

class TestLatencyMetrics:
    def test_quantile_nearest_rank(self):
        ordered = [1.0, 2.0, 3.0, 4.0]
        assert quantile(ordered, 0.50) == 2.0
        assert quantile(ordered, 0.99) == 4.0
        assert quantile([7.0], 0.50) == 7.0

    def test_recorder_counts_and_quantiles(self):
        recorder = LatencyRecorder()
        for ms in (1, 2, 3, 4, 5, 6, 7, 8, 9, 100):
            recorder.observe("POST /explain", ms / 1000.0)
        recorder.observe("POST /explain", 0.5, error=True)
        snapshot = recorder.snapshot()["POST /explain"]
        assert snapshot["count"] == 11
        assert snapshot["errors"] == 1
        assert snapshot["p50_ms"] <= snapshot["p90_ms"] <= snapshot["p99_ms"]
        assert recorder.total_count() == 11

    def test_merge_sums_counts_and_ranges_quantiles(self):
        a = LatencyRecorder()
        b = LatencyRecorder()
        a.observe("GET /health", 0.001)
        a.observe("GET /health", 0.002)
        b.observe("GET /health", 0.010, error=True)
        b.observe("POST /explain", 0.005)
        merged = merge_endpoint_snapshots([a.snapshot(), b.snapshot()])
        health = merged["GET /health"]
        assert health["count"] == 3
        assert health["errors"] == 1
        assert health["workers"] == 2
        # Quantiles cannot be merged exactly -> the fleet reports ranges.
        assert health["p50_ms_min"] <= health["p50_ms_max"]
        assert merged["POST /explain"]["workers"] == 1


# ---------------------------------------------------------------------------
# Router over in-process workers
# ---------------------------------------------------------------------------

PAIRS = [demo_pair(index) for index in range(3)]


class _Fleet:
    """A router fronting N in-process daemons, with a stock ServiceClient."""

    def __init__(self, count: int = 2):
        self.servers = []
        workers = []
        for index in range(count):
            server, _ = serve_in_background(ExplainService(), port=0)
            self.servers.append(server)
            host, port = server.server_address[:2]
            workers.append(StaticWorker(f"w{index}", f"http://{host}:{port}"))
        self.workers = workers
        self.router = FleetRouter(workers, breaker_reset_seconds=0.2)
        self.http, _ = serve_router_in_background(self.router)
        host, port = self.http.server_address[:2]
        self.client = ServiceClient(f"http://{host}:{port}", timeout=60.0)

    def register(self, pairs=PAIRS):
        for left_name, left, right_name, right, _ in pairs:
            self.client.register_database(left_name, left)
            self.client.register_database(right_name, right)

    def kill_worker(self, index: int) -> None:
        """Transport-level death: stop serving *and* close the socket, so
        new connections are refused rather than queueing forever."""
        self.servers[index].shutdown()
        self.servers[index].server_close()

    def close(self):
        self.http.shutdown()
        self.router.shutdown()
        for server in self.servers:
            try:
                server.shutdown()
                server.server_close()
            except OSError:
                pass  # already closed by kill_worker


@pytest.fixture()
def fleet():
    instance = _Fleet(2)
    instance.register()
    yield instance
    instance.close()


def _direct_answers():
    server, _ = serve_in_background(ExplainService(), port=0)
    try:
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}", timeout=60.0)
        for left_name, left, right_name, right, _ in PAIRS:
            client.register_database(left_name, left)
            client.register_database(right_name, right)
        return [client.explain(pair[4]) for pair in PAIRS]
    finally:
        server.shutdown()


class TestFleetRouter:
    def test_routed_answers_byte_identical_to_direct(self, fleet):
        direct = _direct_answers()
        for pair, expected in zip(PAIRS, direct):
            routed = fleet.client.explain(pair[4])
            assert canonical_report(routed) == canonical_report(expected)
            assert routed["fleet"]["worker"] in ("w0", "w1")

    def test_placement_is_sticky_per_database_pair(self, fleet):
        first = fleet.client.explain(PAIRS[0][4])["fleet"]["worker"]
        again = fleet.client.explain(PAIRS[0][4])["fleet"]["worker"]
        assert first == again
        assert fleet.client.explain(PAIRS[0][4])["service"]["cached_report"] is True

    def test_failover_rehash_when_worker_dies_mid_stream(self, fleet):
        direct = _direct_answers()
        owners = {
            index: fleet.client.explain(pair[4])["fleet"]["worker"]
            for index, pair in enumerate(PAIRS)
        }
        victim_name = owners[0]
        fleet.kill_worker(int(victim_name[1:]))
        # Every pair -- including those owned by the victim -- still answers,
        # and the answers are the same bytes the direct daemon produces.
        for index, pair in enumerate(PAIRS):
            report = fleet.client.explain(pair[4])
            assert canonical_report(report) == canonical_report(direct[index])
            assert report["fleet"]["worker"] != victim_name
        health = fleet.client.health()
        assert health["workers"][victim_name]["state"] == "dead"
        assert health["router"]["failovers"] >= 1
        assert health["status"] == "degraded"
        assert victim_name not in health["ring"]["nodes"]

    def test_all_workers_dead_is_503_not_a_hang(self, fleet):
        fleet.kill_worker(0)
        fleet.kill_worker(1)
        with pytest.raises(ServiceClientError) as excinfo:
            fleet.client.explain(PAIRS[0][4])
        assert excinfo.value.status == 503
        assert excinfo.value.error_type == "NoWorkerAvailable"

    def test_worker_error_responses_relay_without_failover(self, fleet):
        # A 4xx means the worker answered; the router must relay it, not
        # mark the worker dead and retry elsewhere.
        with pytest.raises(ServiceClientError) as excinfo:
            fleet.client.explain({"database_left": "D1_0"})
        assert excinfo.value.status == 400
        assert fleet.client.health()["router"]["failovers"] == 0

    def test_job_ids_are_worker_prefixed_and_routable(self, fleet):
        job = fleet.client.submit_job(PAIRS[1][4])
        worker_name, _, _ = job["id"].partition(":")
        assert worker_name in ("w0", "w1")
        final = fleet.client.wait_for_job(job["id"], timeout=60)
        assert final["state"] == "done"
        assert final["id"] == job["id"]
        with pytest.raises(ServiceClientError) as excinfo:
            fleet.client.job("nonsense")
        assert excinfo.value.status == 404

    def test_health_aggregates_worker_endpoint_metrics(self, fleet):
        fleet.client.explain(PAIRS[0][4])
        health = fleet.client.health()
        assert health["live_workers"] == 2
        assert sorted(health["registered_databases"]) == sorted(
            name for pair in PAIRS for name in (pair[0], pair[2])
        )
        merged = health["worker_endpoints"]
        assert merged["POST /explain"]["count"] >= 1
        assert merged["POST /explain"]["workers"] >= 1
        assert merged["POST /databases"]["count"] >= len(PAIRS) * 2 * 2
        # The router's own front-door metrics are tracked separately.
        assert health["endpoints"]["POST /explain"]["count"] >= 1

    @staticmethod
    def _await_coalesced(router, count: int) -> None:
        """Block until ``count`` followers have latched onto a flight."""
        deadline = time.monotonic() + 10.0
        while router._counters["coalesced"] < count:
            assert time.monotonic() < deadline, "follower never latched"
            time.sleep(0.005)

    def test_single_flight_coalesces_concurrent_identical_requests(self, fleet):
        entered = threading.Event()
        release = threading.Event()
        calls = []

        def blocked_call():
            calls.append(1)
            entered.set()
            release.wait(timeout=10)
            return 200, {"answer": 42}

        results = []

        def run():
            results.append(fleet.router._single_flight("key-x", blocked_call))

        leader = threading.Thread(target=run)
        leader.start()
        assert entered.wait(timeout=10)  # leader is executing upstream
        follower = threading.Thread(target=run)
        follower.start()
        self._await_coalesced(fleet.router, 1)  # follower latched, then release
        release.set()
        leader.join(timeout=10)
        follower.join(timeout=10)
        assert len(calls) == 1  # one upstream execution for two requests
        assert results == [(200, {"answer": 42})] * 2
        # The flight is gone: the next identical request executes afresh.
        assert fleet.router._single_flight("key-x", lambda: (200, {})) == (200, {})

    def test_single_flight_leader_error_propagates_to_followers(self, fleet):
        entered = threading.Event()
        release = threading.Event()

        def failing_call():
            entered.set()
            release.wait(timeout=10)
            raise ValueError("upstream exploded")

        errors = []

        def run(call):
            try:
                fleet.router._single_flight("key-y", call)
            except ValueError as exc:
                errors.append(str(exc))

        leader = threading.Thread(target=run, args=(failing_call,))
        leader.start()
        assert entered.wait(timeout=10)
        follower = threading.Thread(target=run, args=(lambda: (200, {}),))
        follower.start()
        self._await_coalesced(fleet.router, 1)
        release.set()
        leader.join(timeout=10)
        follower.join(timeout=10)
        # A coalesced failure fails both callers -- never a silent hang or
        # a follower succeeding with nothing.
        assert errors == ["upstream exploded"] * 2


# ---------------------------------------------------------------------------
# Real worker subprocess lifecycle
# ---------------------------------------------------------------------------

class TestWorkerLifecycle:
    def test_spawn_probe_sigterm_drain_exits_zero(self, tmp_path):
        pool = WorkerPool(WorkerSpec(spill_dir=tmp_path, drain_seconds=3.0))
        try:
            worker = pool.spawn(1)[0]
            assert worker.state == "ready"
            assert worker.url and worker.url.startswith("http://")
            health = worker.heartbeat()
            assert health is not None and health["status"] == "ok"
            code = worker.terminate()
            assert code == 0  # SIGTERM drains and exits cleanly
            assert worker.state == "stopped"
        finally:
            pool.stop()

    def test_heartbeat_flips_dead_after_kill(self, tmp_path):
        pool = WorkerPool(WorkerSpec(spill_dir=tmp_path))
        try:
            worker = pool.spawn(1)[0]
            worker.process.kill()
            worker.process.wait(timeout=10)
            assert worker.heartbeat() is None
            assert worker.state == "dead"
            assert not worker.alive
        finally:
            pool.stop()


# ---------------------------------------------------------------------------
# Live deltas across the fleet
# ---------------------------------------------------------------------------

class TestFleetIngest:
    INSERT = [{"op": "insert", "record": {"Program": "Live", "Degree": "B.S."}}]

    def test_ingest_broadcasts_to_every_pod_and_matches_direct(self, fleet):
        pre = canonical_report(fleet.client.explain(PAIRS[0][4]))
        summary = fleet.client.ingest("D1_0", "D1_0", self.INSERT)
        assert summary["applied"] is True
        assert summary["workers"] == ["w0", "w1"]  # every pod took the delta
        post = fleet.client.explain(PAIRS[0][4])
        assert canonical_report(post) != pre

        # The routed post-delta answer is byte-identical to a direct daemon
        # that ingested the same batch -- and both agree on the fingerprint.
        server, _ = serve_in_background(ExplainService(), port=0)
        try:
            host, port = server.server_address[:2]
            direct = ServiceClient(f"http://{host}:{port}", timeout=60.0)
            direct.register_database(PAIRS[0][0], PAIRS[0][1])
            direct.register_database(PAIRS[0][2], PAIRS[0][3])
            direct_summary = direct.ingest("D1_0", "D1_0", self.INSERT)
            assert direct_summary["fingerprint"] == summary["fingerprint"]
            expected = direct.explain(PAIRS[0][4])
        finally:
            server.shutdown()
        assert canonical_report(post) == canonical_report(expected)

    def test_duplicate_submission_dedupes_on_every_pod(self, fleet):
        first = fleet.client.ingest("D1_1", "D1_1", self.INSERT)
        again = fleet.client.ingest("D1_1", "D1_1", self.INSERT)
        assert first["applied"] is True
        assert again["applied"] is False and again["deduplicated"] is True
        assert again["fingerprint"] == first["fingerprint"]
        assert again["workers"] == ["w0", "w1"]

    def test_admitted_worker_replays_registrations_then_deltas(self, fleet):
        from repro.fleet import StaticWorker as _StaticWorker

        fleet.client.ingest("D1_0", "D1_0", self.INSERT)
        post = canonical_report(fleet.client.explain(PAIRS[0][4]))
        server, _ = serve_in_background(ExplainService(), port=0)
        try:
            host, port = server.server_address[:2]
            fleet.router._admit(_StaticWorker("w9", f"http://{host}:{port}"))
            # The newcomer converged on the live (post-delta) version: asking
            # it directly yields the same bytes the fleet serves.
            direct = ServiceClient(f"http://{host}:{port}", timeout=60.0)
            assert canonical_report(direct.explain(PAIRS[0][4])) == post
        finally:
            server.shutdown()

    def test_reregistration_clears_the_delta_log(self, fleet):
        fleet.client.ingest("D1_2", "D1_2", self.INSERT)
        with fleet.router._lock:
            assert "D1_2" in fleet.router._ingests
        fleet.client.register_database("D1_2", PAIRS[2][1])
        with fleet.router._lock:
            assert "D1_2" not in fleet.router._ingests

    def test_shared_tier_tombstones_are_write_through(self, tmp_path):
        from repro.fleet.shared_cache import SharedCacheTier
        from repro.service.engine import ServiceConfig

        servers, workers = [], []
        for index in range(2):
            service = ExplainService(
                ServiceConfig(spill_dir=tmp_path, spill_write_through=True)
            )
            server, _ = serve_in_background(service, port=0)
            servers.append(server)
            host, port = server.server_address[:2]
            workers.append(StaticWorker(f"s{index}", f"http://{host}:{port}"))
        router = FleetRouter(workers, shared_cache=SharedCacheTier(tmp_path))
        http, _ = serve_router_in_background(router)
        host, port = http.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}", timeout=60.0)
        try:
            client.register_database(PAIRS[0][0], PAIRS[0][1])
            client.register_database(PAIRS[0][2], PAIRS[0][3])
            assert client.explain(PAIRS[0][4])["query_left"]["result"] == 5.0
            tier = SharedCacheTier(tmp_path)
            assert tier.describe()["artifacts"] > 0
            client.ingest("D1_0", "D1_0", self.INSERT)
            # The serving pod's eviction wrote tombstones through to the
            # shared tier, so no sibling can resurrect pre-delta artifacts.
            assert tier.describe()["tombstones"] > 0
            assert client.explain(PAIRS[0][4])["query_left"]["result"] == 6.0
        finally:
            http.shutdown()
            router.shutdown()
            for server in servers:
                server.shutdown()
                server.server_close()

"""Unit tests for canonicalization (Stage 1) and the probabilistic scoring model."""

import math

import pytest

from repro.core.canonical import canonicalize
from repro.core.explanations import ExplanationSet, ProvenanceExplanation, ValueExplanation
from repro.core.scoring import (
    ExplanationScorer,
    MatchLogProbability,
    Priors,
    derive_explanations_from_mapping,
    impact_equality_holds,
    is_complete,
    mapping_is_valid,
)
from repro.graphs.bipartite import Side
from repro.matching.attribute_match import SemanticRelation, matching
from repro.matching.tuple_matching import TupleMapping, TupleMatch
from repro.relational.executor import Database
from repro.relational.provenance import provenance_relation
from repro.relational.query import AggregateFunction, Scan, aggregate_query, count_query


@pytest.fixture()
def figure3_canonicals(figure1_db1, figure1_db2, figure1_queries):
    """The canonical relations of Figure 3 (T1 with CS impact 2, T2 all impact 1)."""
    q1, q2 = figure1_queries
    attrs = matching(("Program", "Major"))
    p1 = provenance_relation(q1, figure1_db1)
    p2 = provenance_relation(q2, figure1_db2)
    t1 = canonicalize(p1, attrs, Side.LEFT, label="T1")
    t2 = canonicalize(p2, attrs, Side.RIGHT, label="T2")
    return t1, t2


class TestCanonicalization:
    def test_figure3_grouping(self, figure3_canonicals):
        t1, t2 = figure3_canonicals
        assert len(t1) == 6  # 7 provenance tuples, CS grouped
        assert len(t2) == 6
        impacts = {t.value("Program"): t.impact for t in t1}
        assert impacts["CS"] == 2.0
        assert impacts["Accounting"] == 1.0

    def test_total_impact_preserved(self, figure3_canonicals):
        t1, _ = figure3_canonicals
        assert t1.total_impact() == 7.0

    def test_members_recorded(self, figure3_canonicals):
        t1, _ = figure3_canonicals
        cs = next(t for t in t1 if t.value("Program") == "CS")
        assert len(cs.members) == 2

    def test_provenance_members_lookup(self, figure3_canonicals):
        t1, _ = figure3_canonicals
        cs = next(t for t in t1 if t.value("Program") == "CS")
        members = t1.provenance_members(cs.key)
        assert {m.value("Degree") for m in members} == {"B.S.", "B.A."}

    def test_avg_queries_stay_one_to_one(self):
        db = Database("d")
        db.add_records("T", [{"name": "a", "v": 1}, {"name": "a", "v": 3}])
        query = aggregate_query("q", AggregateFunction.AVG, Scan("T"), "v")
        provenance = provenance_relation(query, db)
        canonical = canonicalize(provenance, matching(("name", "name")), Side.LEFT)
        assert len(canonical) == 2  # not grouped

    def test_missing_matching_attribute_raises(self, figure1_db1, figure1_queries):
        q1, _ = figure1_queries
        provenance = provenance_relation(q1, figure1_db1)
        with pytest.raises(ValueError):
            canonicalize(provenance, matching(("NotThere", "Major")), Side.LEFT)

    def test_empty_matching_raises(self, figure1_db1, figure1_queries):
        from repro.matching.attribute_match import AttributeMatching

        q1, _ = figure1_queries
        provenance = provenance_relation(q1, figure1_db1)
        with pytest.raises(ValueError):
            canonicalize(provenance, AttributeMatching(), Side.LEFT)

    def test_lookup_helpers(self, figure3_canonicals):
        t1, _ = figure3_canonicals
        key = t1.keys()[0]
        assert key in t1
        assert t1.get("nope") is None
        assert t1.impacts()[key] == t1[key].impact


class TestPriors:
    def test_constants(self):
        priors = Priors(0.9, 0.9)
        assert priors.removed == pytest.approx(math.log(0.1))
        assert priors.kept_unchanged == pytest.approx(math.log(0.9) + math.log(0.9))
        assert priors.kept_changed == pytest.approx(math.log(0.9) + math.log(0.1))

    def test_validation(self):
        with pytest.raises(ValueError):
            Priors(alpha=0.4)
        with pytest.raises(ValueError):
            Priors(beta=1.5)

    def test_alpha_one_is_clamped(self):
        assert math.isfinite(Priors(alpha=1.0, beta=1.0).removed)

    def test_match_log_probability_clamped(self):
        terms = MatchLogProbability.of(1.0)
        assert math.isfinite(terms.rejected)
        assert terms.selected > terms.rejected


class TestValidityAndCompleteness:
    def test_mapping_validity_equivalence(self):
        mapping = [TupleMatch("a", "x", 1.0), TupleMatch("a", "y", 1.0)]
        assert not mapping_is_valid(mapping, SemanticRelation.EQUIVALENT)
        assert mapping_is_valid(mapping, SemanticRelation.MORE_GENERAL)

    def test_mapping_validity_many_to_one(self):
        mapping = [TupleMatch("a", "x", 1.0), TupleMatch("b", "x", 1.0)]
        assert mapping_is_valid(mapping, SemanticRelation.LESS_GENERAL)
        assert not mapping_is_valid(mapping, SemanticRelation.MORE_GENERAL)

    def test_impact_equality(self, figure3_canonicals):
        t1, t2 = figure3_canonicals
        pairs = list(zip(t1.keys(), t2.keys()))
        evidence = TupleMapping([TupleMatch(l, r, 1.0) for l, r in pairs])
        explanations = ExplanationSet(evidence=evidence)
        # CS has impact 2 on the left but CSE has 1 on the right -> not equal.
        assert not impact_equality_holds(t1, t2, explanations)
        # Correct the CS component with a value explanation.
        cs_key = next(t.key for t in t1 if t.value("Program") == "CS")
        explanations.value.append(ValueExplanation(Side.LEFT, cs_key, 2.0, 1.0))
        assert impact_equality_holds(t1, t2, explanations)

    def test_is_complete(self, figure3_canonicals):
        t1, t2 = figure3_canonicals
        pairs = list(zip(t1.keys(), t2.keys()))
        evidence = TupleMapping([TupleMatch(l, r, 1.0) for l, r in pairs])
        cs_key = next(t.key for t in t1 if t.value("Program") == "CS")
        explanations = ExplanationSet(
            value=[ValueExplanation(Side.LEFT, cs_key, 2.0, 1.0)], evidence=evidence
        )
        assert is_complete(t1, t2, explanations, SemanticRelation.EQUIVALENT)


class TestScorer:
    def test_score_matches_manual_computation(self, figure3_canonicals):
        t1, t2 = figure3_canonicals
        priors = Priors(0.9, 0.9)
        mapping = TupleMapping([TupleMatch(t1.keys()[0], t2.keys()[0], 0.8)])
        scorer = ExplanationScorer(t1, t2, mapping, priors)
        explanations = ExplanationSet(
            provenance=[ProvenanceExplanation(Side.LEFT, t1.keys()[1])],
            evidence=TupleMapping([TupleMatch(t1.keys()[0], t2.keys()[0], 0.8)]),
        )
        expected = (
            priors.removed  # the one removed tuple
            + 11 * priors.kept_unchanged  # remaining 11 tuples unchanged
            + math.log(0.8)  # the selected match
        )
        assert scorer.score(explanations) == pytest.approx(expected)

    def test_removed_and_changed_is_impossible(self, figure3_canonicals):
        t1, t2 = figure3_canonicals
        scorer = ExplanationScorer(t1, t2, TupleMapping())
        key = t1.keys()[0]
        explanations = ExplanationSet(
            provenance=[ProvenanceExplanation(Side.LEFT, key)],
            value=[ValueExplanation(Side.LEFT, key, 1.0, 2.0)],
        )
        assert scorer.score(explanations) == -math.inf

    def test_score_mapping_prefers_better_evidence(self, figure3_canonicals):
        t1, t2 = figure3_canonicals
        good_pairs = list(zip(t1.keys(), t2.keys()))
        mapping = TupleMapping([TupleMatch(l, r, 0.9) for l, r in good_pairs])
        scorer = ExplanationScorer(t1, t2, mapping)
        full = scorer.score_mapping(mapping, SemanticRelation.EQUIVALENT)
        empty = scorer.score_mapping(TupleMapping(), SemanticRelation.EQUIVALENT)
        assert full > empty


class TestDerivedExplanations:
    def test_unmatched_tuples_become_provenance(self, figure3_canonicals):
        t1, t2 = figure3_canonicals
        mapping = TupleMapping([TupleMatch(t1.keys()[0], t2.keys()[0], 1.0)])
        explanations = derive_explanations_from_mapping(t1, t2, mapping, SemanticRelation.EQUIVALENT)
        assert len(explanations.provenance) == 10  # 5 unmatched on each side

    def test_impact_mismatch_becomes_value_explanation(self, figure3_canonicals):
        t1, t2 = figure3_canonicals
        cs_left = next(t.key for t in t1 if t.value("Program") == "CS")
        cse_right = next(t.key for t in t2 if t.value("Major") == "CSE")
        mapping = TupleMapping([TupleMatch(cs_left, cse_right, 1.0)])
        explanations = derive_explanations_from_mapping(t1, t2, mapping, SemanticRelation.EQUIVALENT)
        assert len(explanations.value) == 1
        value = explanations.value[0]
        assert value.side is Side.RIGHT
        assert value.old_impact == 1.0
        assert value.new_impact == 2.0

    def test_anchor_side_follows_relation(self, figure3_canonicals):
        t1, t2 = figure3_canonicals
        cs_left = next(t.key for t in t1 if t.value("Program") == "CS")
        cse_right = next(t.key for t in t2 if t.value("Major") == "CSE")
        mapping = TupleMapping([TupleMatch(cs_left, cse_right, 1.0)])
        explanations = derive_explanations_from_mapping(t1, t2, mapping, SemanticRelation.MORE_GENERAL)
        assert explanations.value[0].side is Side.LEFT


class TestExplanationSet:
    def test_merge(self):
        first = ExplanationSet(
            provenance=[ProvenanceExplanation(Side.LEFT, "a")],
            evidence=TupleMapping([TupleMatch("a", "b", 0.5)]),
            objective=-1.0,
        )
        second = ExplanationSet(
            value=[ValueExplanation(Side.RIGHT, "c", 1.0, 2.0)],
            evidence=TupleMapping([TupleMatch("c", "d", 0.5)]),
            objective=-2.0,
        )
        merged = first.merge(second)
        assert merged.size == 2
        assert len(merged.evidence) == 2
        assert merged.objective == -3.0

    def test_identity_views(self):
        explanations = ExplanationSet(
            provenance=[ProvenanceExplanation(Side.LEFT, "a")],
            value=[ValueExplanation(Side.RIGHT, "b", 1.0, 2.0)],
        )
        assert explanations.provenance_identities() == {("L", "a")}
        assert explanations.value_identities() == {("R", "b")}
        assert ("provenance", "L", "a") in explanations.explanation_identities()
        assert explanations.explained_keys(Side.RIGHT) == {"b"}

    def test_describe_mentions_counts(self):
        explanations = ExplanationSet(provenance=[ProvenanceExplanation(Side.LEFT, "a")])
        assert "1 provenance-based" in explanations.describe()

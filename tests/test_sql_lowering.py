"""Binding and lowering SQL to the relational AST, and the to_sql round trip."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database, col, count_query, parse_query
from repro.relational.executor import execute
from repro.relational.expressions import (
    And,
    AttributeComparison,
    Comparison,
    Contains,
    IsNull,
    Membership,
    Not,
    Or,
)
from repro.relational.query import (
    Aggregate,
    AggregateFunction,
    Difference,
    Join,
    Project,
    Query,
    Scan,
    Select,
    Union,
)
from repro.sql import BindError, SqlPrintError, node_to_sql
from repro.sql.fuzz import random_query_sql, toy_database


@pytest.fixture(scope="module")
def db() -> Database:
    database = Database("test")
    database.add_records(
        "Movie",
        [
            {"movie_id": 1, "title": "Midnight Harvest", "year": 1994, "gross": 12.5},
            {"movie_id": 2, "title": "Iron Compass", "year": 1994, "gross": None},
            {"movie_id": 3, "title": "Silent Echo", "year": 1999, "gross": 3.0},
        ],
    )
    database.add_records(
        "Cast",
        [
            {"movie_id": 1, "person": "Ada"},
            {"movie_id": 2, "person": "Grace"},
            {"movie_id": 3, "person": "Ada"},
        ],
    )
    return database


class TestLoweringShapes:
    def test_count_with_where_matches_builder(self, db):
        parsed = parse_query(
            "SELECT COUNT(title) FROM Movie WHERE year = 1994", db, name="Q"
        )
        hand = count_query(
            "Q", Scan("Movie"), predicate=(col("year") == 1994), attribute="title"
        )
        assert parsed.fingerprint() == hand.fingerprint()

    def test_select_star_adds_no_node(self, db):
        parsed = parse_query("SELECT * FROM Movie", db)
        assert parsed.root == Scan("Movie")

    def test_default_aggregate_aliases_match_builders(self, db):
        assert parse_query("SELECT SUM(gross) FROM Movie", db).root.alias == "sum"
        assert parse_query("SELECT COUNT(*) FROM Movie", db).root.alias == "count"
        assert parse_query("SELECT AVG(gross) FROM Movie", db).root.alias == "avg"

    def test_join_on_becomes_pairs(self, db):
        parsed = parse_query(
            "SELECT COUNT(*) FROM Movie JOIN Cast ON Movie.movie_id = Cast.movie_id",
            db,
        )
        join = parsed.root.child
        assert isinstance(join, Join)
        assert join.on == (("movie_id", "movie_id"),)
        assert join.condition is None

    def test_comma_join_extracts_equi_pairs_from_where(self, db):
        parsed = parse_query(
            "SELECT COUNT(*) FROM Movie, Cast "
            "WHERE Movie.movie_id = Cast.movie_id AND year = 1994",
            db,
        )
        select = parsed.root.child
        assert isinstance(select, Select)
        assert select.predicate == Comparison("year", "=", 1994)
        join = select.child
        assert join.on == (("movie_id", "movie_id"),)

    def test_reversed_on_equality_still_pairs_left_right(self, db):
        parsed = parse_query(
            "SELECT COUNT(*) FROM Movie JOIN Cast ON Cast.movie_id = Movie.movie_id",
            db,
        )
        assert parsed.root.child.on == (("movie_id", "movie_id"),)

    def test_non_equi_on_conjunct_becomes_condition(self, db):
        parsed = parse_query(
            "SELECT COUNT(*) FROM Movie JOIN Cast "
            "ON Movie.movie_id = Cast.movie_id AND year > 1990",
            db,
        )
        join = parsed.root.child
        assert join.on == (("movie_id", "movie_id"),)
        assert join.condition == Comparison("year", ">", 1990)

    def test_join_renames_are_reachable_via_qualified_names(self, db):
        parsed = parse_query(
            "SELECT COUNT(*) FROM Movie JOIN Cast ON Movie.movie_id = Cast.movie_id "
            "WHERE Cast.movie_id > 1",
            db,
        )
        select = parsed.root.child
        # Cast.movie_id clashes with Movie's and is renamed movie_id_r.
        assert select.predicate == Comparison("movie_id_r", ">", 1)

    def test_where_true_is_identity(self, db):
        parsed = parse_query("SELECT COUNT(*) FROM Movie WHERE TRUE", db)
        assert parsed.root.child == Scan("Movie")

    def test_on_true_is_cross_join(self, db):
        parsed = parse_query("SELECT COUNT(*) FROM Movie JOIN Cast ON TRUE", db)
        join = parsed.root.child
        assert join.on == () and join.condition is None

    def test_not_in_subquery_becomes_difference_after_select(self, db):
        parsed = parse_query(
            "SELECT DISTINCT person FROM Cast WHERE person != 'Eve' "
            "AND movie_id NOT IN (SELECT * FROM Movie WHERE year = 1999)",
            db,
        )
        project = parsed.root
        assert isinstance(project, Project)
        difference = project.child
        assert isinstance(difference, Difference)
        assert difference.on == ("movie_id",)
        assert isinstance(difference.left, Select)

    def test_union_flattens_and_except_uses_output_columns(self, db):
        parsed = parse_query(
            "SELECT title FROM Movie UNION SELECT title FROM Movie "
            "UNION SELECT title FROM Movie",
            db,
        )
        assert isinstance(parsed.root, Union)
        assert len(parsed.root.inputs) == 3

        except_parsed = parse_query(
            "SELECT title FROM Movie EXCEPT SELECT title FROM Movie WHERE year = 1999",
            db,
        )
        assert isinstance(except_parsed.root, Difference)
        assert except_parsed.root.on == ("title",)

    def test_parenthesized_compound_stays_nested(self, db):
        parsed = parse_query(
            "(SELECT title FROM Movie UNION SELECT title FROM Movie) "
            "EXCEPT SELECT title FROM Movie",
            db,
        )
        assert isinstance(parsed.root, Difference)
        assert isinstance(parsed.root.left, Union)

    def test_group_by(self, db):
        parsed = parse_query(
            "SELECT year, COUNT(title) FROM Movie GROUP BY year", db
        )
        root = parsed.root
        assert isinstance(root, Aggregate)
        assert root.group_by == ("year",)
        assert root.function is AggregateFunction.COUNT

    def test_predicate_forms(self, db):
        parsed = parse_query(
            "SELECT COUNT(*) FROM Movie WHERE year IN (1994, 1999) "
            "AND gross BETWEEN 1 AND 20 AND title LIKE '%Echo%' "
            "AND gross IS NOT NULL AND title = 'x' OR NOT year = 2000",
            db,
        )
        predicate = parsed.root.child.predicate
        assert isinstance(predicate, Or)
        left = predicate.children[0]
        assert isinstance(left, And)
        assert isinstance(predicate.children[1], Not)
        # dig out the individual conjuncts
        flat: list = []

        def flatten(p):
            if isinstance(p, And) and len(p.children) == 2:
                flatten(p.children[0])
                flat.append(p.children[1])
            else:
                flat.append(p)

        flatten(left)
        assert flat[0] == Membership("year", (1994, 1999))
        assert repr(flat[1]) == repr(
            And(Comparison("gross", ">=", 1), Comparison("gross", "<=", 20))
        )
        assert flat[2] == Contains("title", "Echo")
        assert flat[3] == IsNull("gross", negate=True)

    def test_attribute_comparison_and_flipped_literal(self, db):
        parsed = parse_query(
            "SELECT COUNT(*) FROM Movie WHERE 1995 > year AND movie_id = movie_id",
            db,
        )
        predicate = parsed.root.child.predicate
        assert predicate.children[0] == Comparison("year", "<", 1995)
        assert predicate.children[1] == AttributeComparison("movie_id", "=", "movie_id")

    def test_like_exact_pattern_is_equality(self, db):
        parsed = parse_query("SELECT COUNT(*) FROM Movie WHERE title LIKE 'Iron Compass'", db)
        assert parsed.root.child.predicate == Comparison("title", "=", "Iron Compass")

    def test_lenient_mode_skips_schema_checks(self):
        parsed = parse_query("SELECT COUNT(whatever) FROM NoSuchTable")
        assert parsed.root.attribute == "whatever"

    def test_lenient_comma_join_only_pairs_provable_conjuncts(self):
        """Regression: without schemas, unqualified equalities must stay in
        WHERE (a same-side filter like ``label = city`` is not provably a
        cross-table join condition)."""
        parsed = parse_query(
            "SELECT COUNT(*) FROM R, S WHERE id = rid AND label = city"
        )
        select = parsed.root.child
        assert isinstance(select, Select)
        join = select.child
        assert join.on == ()
        assert isinstance(select.predicate, And)

    def test_lenient_comma_join_pairs_qualified_conjuncts(self):
        parsed = parse_query("SELECT COUNT(*) FROM R, S WHERE R.id = S.rid")
        assert parsed.root.child.on == (("id", "rid"),)

    def test_lenient_on_clause_keeps_natural_join_reading(self):
        parsed = parse_query("SELECT COUNT(*) FROM R JOIN S ON id = rid")
        assert parsed.root.child.on == (("id", "rid"),)


class TestBindErrors:
    def test_unknown_relation_suggests(self, db):
        with pytest.raises(BindError) as excinfo:
            parse_query("SELECT COUNT(*) FROM Movi", db)
        assert "did you mean 'Movie'" in str(excinfo.value)
        assert excinfo.value.column == 22

    def test_unknown_column_suggests_and_points(self, db):
        with pytest.raises(BindError) as excinfo:
            parse_query("SELECT COUNT(titel) FROM Movie", db)
        assert "did you mean 'title'" in str(excinfo.value)
        assert excinfo.value.column == 14

    def test_unknown_alias(self, db):
        with pytest.raises(BindError) as excinfo:
            parse_query("SELECT COUNT(*) FROM Movie WHERE m.year = 1", db)
        assert "unknown table or alias" in str(excinfo.value)

    def test_duplicate_table_needs_aliases(self, db):
        with pytest.raises(BindError) as excinfo:
            parse_query(
                "SELECT COUNT(*) FROM Movie JOIN Movie ON Movie.movie_id = Movie.movie_id "
                "WHERE Movie.year = 1994",
                db,
            )
        assert "distinct alias" in str(excinfo.value)

    def test_aliases_disambiguate_self_joins(self, db):
        parsed = parse_query(
            "SELECT COUNT(*) FROM Movie AS a JOIN Movie AS b ON a.movie_id = b.movie_id "
            "WHERE b.year = 1994",
            db,
        )
        select = parsed.root.child
        assert select.predicate == Comparison("year_r", "=", 1994)

    def test_column_alias_rejected(self, db):
        with pytest.raises(BindError) as excinfo:
            parse_query("SELECT title AS t FROM Movie", db)
        assert "rename" in str(excinfo.value)

    def test_two_aggregates_rejected(self, db):
        with pytest.raises(BindError) as excinfo:
            parse_query("SELECT SUM(gross), COUNT(*) FROM Movie", db)
        assert "at most one aggregate" in str(excinfo.value)

    def test_group_by_without_aggregate(self, db):
        with pytest.raises(BindError):
            parse_query("SELECT year FROM Movie GROUP BY year", db)

    def test_plain_column_must_be_grouped(self, db):
        with pytest.raises(BindError) as excinfo:
            parse_query("SELECT title, COUNT(*) FROM Movie GROUP BY year", db)
        assert "GROUP BY" in str(excinfo.value)

    def test_positive_in_subquery_rejected(self, db):
        with pytest.raises(BindError) as excinfo:
            parse_query(
                "SELECT * FROM Movie WHERE movie_id IN (SELECT * FROM Cast)", db
            )
        assert "NOT IN" in str(excinfo.value)

    def test_not_in_subquery_must_produce_key(self, db):
        with pytest.raises(BindError) as excinfo:
            parse_query(
                "SELECT * FROM Movie WHERE title NOT IN (SELECT person FROM Cast)",
                db,
            )
        assert "does not produce column" in str(excinfo.value)

    def test_unsupported_like_pattern(self, db):
        with pytest.raises(BindError) as excinfo:
            parse_query("SELECT * FROM Movie WHERE title LIKE 'Iron%'", db)
        assert "LIKE" in str(excinfo.value)

    def test_sum_star_rejected(self, db):
        with pytest.raises(BindError) as excinfo:
            parse_query("SELECT SUM(*) FROM Movie", db)
        assert "COUNT(*)" in str(excinfo.value)

    def test_aggregate_alias_colliding_with_group_by_rejected(self, db):
        with pytest.raises(BindError) as excinfo:
            parse_query(
                "SELECT year, COUNT(title) AS year FROM Movie GROUP BY year", db
            )
        assert "collides with a GROUP BY column" in str(excinfo.value)

    def test_duplicate_projection_column_rejected(self, db):
        with pytest.raises(BindError) as excinfo:
            parse_query("SELECT title, title FROM Movie", db)
        assert "selected twice" in str(excinfo.value)

    def test_union_schema_mismatch(self, db):
        with pytest.raises(BindError) as excinfo:
            parse_query("SELECT title FROM Movie UNION SELECT person, movie_id FROM Cast", db)
        assert "different output schemas" in str(excinfo.value)


class TestToSqlRoundTrip:
    def test_handbuilt_queries_round_trip(self, db):
        handbuilt = [
            count_query("Q", Scan("Movie"), attribute="title"),
            Query("Q", Project(Scan("Cast"), ("person",), distinct=True)),
            Query(
                "Q",
                Aggregate(
                    Select(
                        Join(Scan("Movie"), Scan("Cast"), on=(("movie_id", "movie_id"),)),
                        col("year") == 1994,
                    ),
                    AggregateFunction.SUM,
                    "gross",
                    alias="sum",
                ),
            ),
            Query(
                "Q",
                Union(
                    (
                        Project(Scan("Movie"), ("title",), distinct=True),
                        Project(Scan("Movie"), ("title",), distinct=True),
                    )
                ),
            ),
            Query(
                "Q",
                Project(
                    Difference(
                        Select(Scan("Cast"), col("person") == "Ada"),
                        Scan("Movie"),
                        on=("movie_id",),
                    ),
                    ("person",),
                ),
            ),
            Query(
                "Q",
                Aggregate(
                    Scan("Movie"),
                    AggregateFunction.COUNT,
                    None,
                    group_by=("year",),
                    alias="n",
                ),
            ),
        ]
        for query in handbuilt:
            printed = query.to_sql()
            reparsed = parse_query(printed, db, name=query.name)
            assert reparsed.fingerprint() == query.fingerprint(), printed

    def test_query_node_to_sql_method(self, db):
        node = Select(Scan("Movie"), col("year") == 1994)
        assert "WHERE year = 1994" in node.to_sql()

    def test_same_side_on_equality_round_trips_as_condition(self, db):
        """Regression: ``ON Movie.year = Movie.movie_id`` lowers to an extra
        condition (not an on-pair); its printed form must re-parse as a
        condition too, not get claimed as a cross-side join pair."""
        query = parse_query(
            "SELECT COUNT(*) FROM Movie JOIN Cast ON Movie.year = Movie.movie_id",
            db,
            name="Q",
        )
        join = query.root.child
        assert join.on == () and join.condition is not None
        printed = node_to_sql(query.root)
        reparsed = parse_query(printed, db, name="Q")
        assert reparsed.fingerprint() == query.fingerprint(), printed
        original = execute(query, db)
        round_tripped = execute(reparsed, db)
        assert [row.values for row in original] == [row.values for row in round_tripped]

    def test_self_join_printing_generates_aliases(self, db):
        node = Join(Scan("Movie"), Scan("Movie"), on=(("movie_id", "movie_id"),))
        printed = node.to_sql()
        reparsed = parse_query(printed, db, name="Q")
        assert reparsed.root == node

    def test_unprintable_predicate_raises(self, db):
        class Weird:
            pass

        node = Select(Scan("Movie"), Weird())  # not a Predicate the printer knows
        with pytest.raises(SqlPrintError):
            node_to_sql(node)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_fuzz_round_trip_property(self, seed):
        """parse -> lower -> print -> parse -> lower is fingerprint-stable,
        and both ASTs execute to identical relations."""
        db = toy_database()
        sql = random_query_sql(random.Random(seed), db)
        query = parse_query(sql, db, name="F")
        printed = node_to_sql(query.root)
        reparsed = parse_query(printed, db, name="F")
        assert reparsed.fingerprint() == query.fingerprint(), (
            f"\n in: {sql}\nout: {printed}"
        )
        original = execute(query, db)
        round_tripped = execute(reparsed, db)
        assert [row.values for row in original] == [row.values for row in round_tripped]

"""Unit tests for repro.relational.schema."""

import pytest

from repro.relational.errors import SchemaError, UnknownAttributeError
from repro.relational.schema import Attribute, DataType, Schema


class TestDataType:
    def test_coerce_string(self):
        assert DataType.STRING.coerce(42) == "42"

    def test_coerce_integer(self):
        assert DataType.INTEGER.coerce("7") == 7

    def test_coerce_float(self):
        assert DataType.FLOAT.coerce("2.5") == 2.5

    def test_coerce_boolean_from_string(self):
        assert DataType.BOOLEAN.coerce("true") is True
        assert DataType.BOOLEAN.coerce("no") is False

    def test_coerce_boolean_invalid(self):
        with pytest.raises(SchemaError):
            DataType.BOOLEAN.coerce("maybe")

    def test_coerce_none_passthrough(self):
        assert DataType.INTEGER.coerce(None) is None

    def test_coerce_invalid_integer(self):
        with pytest.raises(SchemaError):
            DataType.INTEGER.coerce("hello")

    def test_is_numeric(self):
        assert DataType.INTEGER.is_numeric
        assert DataType.FLOAT.is_numeric
        assert not DataType.STRING.is_numeric
        assert not DataType.BOOLEAN.is_numeric

    def test_infer(self):
        assert DataType.infer(True) is DataType.BOOLEAN
        assert DataType.infer(3) is DataType.INTEGER
        assert DataType.infer(3.5) is DataType.FLOAT
        assert DataType.infer("x") is DataType.STRING


class TestAttribute:
    def test_requires_name(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_renamed_keeps_dtype(self):
        attr = Attribute("year", DataType.INTEGER)
        assert attr.renamed("release_year") == Attribute("release_year", DataType.INTEGER)


class TestSchema:
    def make(self) -> Schema:
        return Schema(
            [Attribute("name"), Attribute("year", DataType.INTEGER), Attribute("gross", DataType.FLOAT)]
        )

    def test_construction_from_mixed_forms(self):
        schema = Schema(["a", ("b", DataType.INTEGER), Attribute("c", DataType.FLOAT)])
        assert schema.names == ("a", "b", "c")
        assert schema.dtype("b") is DataType.INTEGER

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_contains_and_index(self):
        schema = self.make()
        assert "year" in schema
        assert schema.index("year") == 1

    def test_unknown_attribute(self):
        with pytest.raises(UnknownAttributeError):
            self.make().index("missing")

    def test_project_preserves_order(self):
        schema = self.make().project(["gross", "name"])
        assert schema.names == ("gross", "name")

    def test_rename(self):
        schema = self.make().rename({"name": "title"})
        assert schema.names == ("title", "year", "gross")

    def test_extend(self):
        schema = self.make().extend([Attribute("extra")])
        assert schema.names[-1] == "extra"

    def test_concat_disambiguates(self):
        left = Schema(["id", "name"])
        right = Schema(["id", "value"])
        combined = left.concat(right)
        assert combined.names == ("id", "name", "id_r", "value")

    def test_concat_without_disambiguation_raises(self):
        with pytest.raises(SchemaError):
            Schema(["id"]).concat(Schema(["id"]), disambiguate=False)

    def test_coerce_row(self):
        schema = self.make()
        assert schema.coerce_row(["x", "1999", "3.5"]) == ("x", 1999, 3.5)

    def test_coerce_row_wrong_arity(self):
        with pytest.raises(SchemaError):
            self.make().coerce_row(["only-one"])

    def test_infer_from_records(self):
        schema = Schema.infer([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert schema.dtype("a") is DataType.INTEGER
        assert schema.dtype("b") is DataType.STRING

    def test_infer_empty_raises(self):
        with pytest.raises(SchemaError):
            Schema.infer([])

    def test_equality_and_hash(self):
        assert self.make() == self.make()
        assert hash(self.make()) == hash(self.make())

"""Unit tests for the query AST and executor."""

import pytest

from repro.relational.errors import ExecutionError, UnknownRelationError
from repro.relational.executor import Database, evaluate, execute, scalar_result
from repro.relational.expressions import col
from repro.relational.query import (
    Aggregate,
    AggregateFunction,
    Difference,
    Join,
    Project,
    Query,
    Scan,
    Select,
    Union,
    aggregate_query,
    count_query,
    projection_query,
    sum_query,
    where,
)


@pytest.fixture()
def db() -> Database:
    database = Database("test")
    database.add_records(
        "Movie",
        [
            {"movie_id": 1, "title": "Alpha", "year": 1999, "gross": 10.0, "genre": "Drama"},
            {"movie_id": 2, "title": "Beta", "year": 1999, "gross": 5.0, "genre": "Comedy"},
            {"movie_id": 3, "title": "Gamma", "year": 2001, "gross": 8.0, "genre": "Comedy"},
        ],
    )
    database.add_records(
        "Cast",
        [
            {"movie_id": 1, "actor": "Ann"},
            {"movie_id": 1, "actor": "Bob"},
            {"movie_id": 2, "actor": "Ann"},
        ],
    )
    return database


class TestDatabase:
    def test_relation_lookup(self, db):
        assert len(db.relation("Movie")) == 3

    def test_unknown_relation(self, db):
        with pytest.raises(UnknownRelationError):
            db.relation("Nope")

    def test_contains(self, db):
        assert "Cast" in db
        assert "Nope" not in db


class TestOperators:
    def test_scan(self, db):
        result = evaluate(Scan("Movie"), db)
        assert len(result) == 3
        assert result[0].lineage == frozenset({"Movie:0"})

    def test_select(self, db):
        result = evaluate(Select(Scan("Movie"), col("year") == 1999), db)
        assert len(result) == 2

    def test_project_distinct(self, db):
        result = evaluate(Project(Scan("Movie"), ("year",), distinct=True), db)
        assert len(result) == 2

    def test_project_keeps_duplicates_when_not_distinct(self, db):
        result = evaluate(Project(Scan("Movie"), ("year",), distinct=False), db)
        assert len(result) == 3

    def test_join_equality(self, db):
        join = Join(Scan("Movie"), Scan("Cast"), on=(("movie_id", "movie_id"),))
        result = evaluate(join, db)
        assert len(result) == 3
        # Lineage merges both sides.
        assert any("Cast:0" in row.lineage and "Movie:0" in row.lineage for row in result)

    def test_join_disambiguates_schema(self, db):
        join = Join(Scan("Movie"), Scan("Cast"), on=(("movie_id", "movie_id"),))
        result = evaluate(join, db)
        assert "movie_id_r" in result.schema

    def test_join_with_condition(self, db):
        join = Join(
            Scan("Movie"),
            Scan("Cast"),
            on=(("movie_id", "movie_id"),),
            condition=(col("actor") == "Ann"),
        )
        assert len(evaluate(join, db)) == 2

    def test_cross_join_without_keys(self, db):
        join = Join(Scan("Movie"), Scan("Cast"))
        assert len(evaluate(join, db)) == 9

    def test_union(self, db):
        union = Union((Scan("Movie"), Scan("Movie")))
        assert len(evaluate(union, db)) == 6

    def test_union_empty_raises(self, db):
        with pytest.raises(ExecutionError):
            evaluate(Union(()), db)

    def test_difference(self, db):
        comedies = Select(Scan("Movie"), col("genre") == "Comedy")
        result = evaluate(Difference(Scan("Movie"), comedies, on=("movie_id",)), db)
        assert [row.as_dict(result.schema)["title"] for row in result] == ["Alpha"]


class TestAggregates:
    def test_count(self, db):
        query = count_query("c", Scan("Movie"), attribute="title")
        assert scalar_result(query, db) == 3

    def test_count_with_predicate(self, db):
        query = count_query("c", Scan("Movie"), attribute="title", predicate=(col("genre") == "Comedy"))
        assert scalar_result(query, db) == 2

    def test_sum(self, db):
        query = sum_query("s", Scan("Movie"), "gross")
        assert scalar_result(query, db) == pytest.approx(23.0)

    def test_avg(self, db):
        query = aggregate_query("a", AggregateFunction.AVG, Scan("Movie"), "gross")
        assert scalar_result(query, db) == pytest.approx(23.0 / 3)

    def test_max_min(self, db):
        assert scalar_result(aggregate_query("m", AggregateFunction.MAX, Scan("Movie"), "gross"), db) == 10.0
        assert scalar_result(aggregate_query("m", AggregateFunction.MIN, Scan("Movie"), "gross"), db) == 5.0

    def test_aggregate_lineage_covers_all_inputs(self, db):
        result = execute(sum_query("s", Scan("Movie"), "gross"), db)
        assert result[0].lineage == frozenset({"Movie:0", "Movie:1", "Movie:2"})

    def test_group_by(self, db):
        aggregate = Aggregate(Scan("Movie"), AggregateFunction.COUNT, "title", group_by=("year",), alias="n")
        result = evaluate(aggregate, db)
        counts = {row.as_dict(result.schema)["year"]: row.as_dict(result.schema)["n"] for row in result}
        assert counts == {1999: 2.0, 2001: 1.0}

    def test_string_numbers_are_coerced(self):
        db = Database("strings")
        db.add_records("T", [{"v": "1.5"}, {"v": "2.5"}])
        assert scalar_result(sum_query("s", Scan("T"), "v"), db) == pytest.approx(4.0)

    def test_sum_over_empty_returns_null(self, db):
        query = sum_query("s", Scan("Movie"), "gross", predicate=(col("year") == 1900))
        assert scalar_result(query, db) is None

    def test_count_over_empty_is_zero(self, db):
        query = count_query("c", Scan("Movie"), attribute="title", predicate=(col("year") == 1900))
        assert scalar_result(query, db) == 0

    def test_aggregate_requires_attribute(self):
        with pytest.raises(ExecutionError):
            Aggregate(Scan("Movie"), AggregateFunction.SUM, None)

    def test_non_numeric_aggregate_raises(self, db):
        query = sum_query("s", Scan("Movie"), "title")
        with pytest.raises(ExecutionError):
            scalar_result(query, db)


class TestQueryHelpers:
    def test_where_none_is_identity(self):
        node = Scan("Movie")
        assert where(node, None) is node

    def test_query_properties(self, db):
        query = sum_query("s", Scan("Movie"), "gross", predicate=(col("year") == 1999))
        assert query.is_aggregate
        assert query.aggregate_function is AggregateFunction.SUM
        assert query.aggregate_attribute == "gross"
        assert query.referenced_relations() == {"Movie"}

    def test_projection_query_output_attributes(self, db):
        query = projection_query("p", Scan("Movie"), ["title"])
        assert not query.is_aggregate
        assert query.output_attributes == ("title",)

    def test_scalar_result_rejects_non_scalar(self, db):
        query = projection_query("p", Scan("Movie"), ["title"])
        with pytest.raises(ExecutionError):
            scalar_result(query, db)

    def test_requires_one_to_one(self):
        assert AggregateFunction.AVG.requires_one_to_one
        assert AggregateFunction.MAX.requires_one_to_one
        assert not AggregateFunction.SUM.requires_one_to_one
        assert not AggregateFunction.COUNT.requires_one_to_one

    def test_unknown_node_type(self, db):
        class Strange(Query):  # pragma: no cover - definition only
            pass

        with pytest.raises(ExecutionError):
            evaluate(object(), db)  # type: ignore[arg-type]


class TestAggregateCombineCoercion:
    """Regression: COUNT must count non-NULLs without coercing values.

    The old implementation appended un-coerced values into the numeric
    ``cleaned`` list and relied on ``len`` ignoring their types -- it worked
    by accident and would have broken any future branch touching the values.
    """

    def test_count_over_mixed_types_counts_non_nulls(self):
        values = ["Drama", None, 3, "4.5", None, object()]
        assert AggregateFunction.COUNT.combine(values) == 4.0

    def test_count_over_all_nulls_is_zero(self):
        assert AggregateFunction.COUNT.combine([None, None]) == 0.0

    def test_numeric_aggregates_coerce_numeric_strings(self):
        assert AggregateFunction.SUM.combine(["2", 3, "4.5"]) == 9.5
        assert AggregateFunction.MAX.combine(["2", "10"]) == 10.0

    def test_numeric_aggregates_reject_non_numeric_values(self):
        for function in (AggregateFunction.SUM, AggregateFunction.AVG,
                         AggregateFunction.MAX, AggregateFunction.MIN):
            with pytest.raises(ExecutionError):
                function.combine(["Drama", 3])

    def test_count_query_over_mixed_type_column(self):
        db = Database("mixed")
        db.add_records(
            "T",
            [
                {"k": "a", "v": "12"},
                {"k": "b", "v": "oops"},
                {"k": "c", "v": None},
                {"k": "d", "v": "3"},
            ],
        )
        count = count_query("c", Scan("T"), attribute="v")
        assert scalar_result(count, db) == 3.0
        total = sum_query("s", Scan("T"), "v")
        with pytest.raises(ExecutionError):
            scalar_result(total, db)

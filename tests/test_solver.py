"""Unit tests for the MILP modeling layer and solver backends."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver.backends import BnBSolverBackend, HighsSolver, SolverError
from repro.solver.branch_and_bound import BranchAndBoundSolver
from repro.solver.linearize import add_binary_product, add_equality_indicator, add_product_with_binary
from repro.solver.lp import LPStatus, solve_lp_relaxation
from repro.solver.model import (
    ConstraintSense,
    LinearExpression,
    MILPModel,
    ObjectiveSense,
    VariableType,
    linear_sum,
)


class TestLinearExpression:
    def test_arithmetic(self):
        model = MILPModel()
        x = model.add_continuous("x")
        y = model.add_continuous("y")
        expr = 2 * x + y - 3
        assert expr.coefficients == {0: 2.0, 1: 1.0}
        assert expr.constant == -3.0

    def test_subtraction_and_negation(self):
        model = MILPModel()
        x = model.add_continuous("x")
        expr = 5 - 2 * x
        assert expr.coefficients == {0: -2.0}
        assert expr.constant == 5.0
        assert (-expr).constant == -5.0

    def test_value_evaluation(self):
        model = MILPModel()
        x = model.add_continuous("x")
        y = model.add_continuous("y")
        expr = 3 * x - y + 1
        assert expr.value([2.0, 4.0]) == pytest.approx(3.0)

    def test_linear_sum(self):
        model = MILPModel()
        xs = [model.add_binary(f"b{i}") for i in range(3)]
        expr = linear_sum(xs)
        assert expr.value([1, 0, 1]) == 2

    def test_scaling_by_non_number_raises(self):
        model = MILPModel()
        x = model.add_continuous("x")
        with pytest.raises(TypeError):
            (x + 1) * "nope"

    @given(st.floats(-5, 5), st.floats(-5, 5), st.floats(-5, 5))
    @settings(max_examples=30)
    def test_distributivity(self, a, b, c):
        model = MILPModel()
        x = model.add_continuous("x")
        left = (a * x + b) * c
        right = (a * c) * x + b * c
        assert left.value([1.7]) == pytest.approx(right.value([1.7]), abs=1e-9)


class TestModel:
    def test_variable_types_and_bounds(self):
        model = MILPModel()
        b = model.add_binary("b")
        i = model.add_integer("i", 0, 5)
        c = model.add_continuous("c", -1, 1)
        assert b.vartype is VariableType.BINARY and b.upper == 1.0
        assert i.vartype.is_integral
        assert c.lower == -1

    def test_duplicate_names_rejected(self):
        model = MILPModel()
        model.add_binary("x")
        with pytest.raises(ValueError):
            model.add_binary("x")

    def test_invalid_bounds(self):
        model = MILPModel()
        with pytest.raises(ValueError):
            model.add_continuous("x", lower=2, upper=1)

    def test_constraint_satisfaction(self):
        model = MILPModel()
        x = model.add_continuous("x")
        constraint = model.add_constraint(x + 1, ConstraintSense.LESS_EQUAL, 3)
        assert constraint.satisfied_by([2.0])
        assert not constraint.satisfied_by([2.5])

    def test_is_feasible_checks_integrality(self):
        model = MILPModel()
        model.add_binary("x")
        assert model.is_feasible([1.0])
        assert not model.is_feasible([0.5])
        assert not model.is_feasible([2.0])

    def test_to_arrays_shapes(self):
        model = MILPModel()
        x = model.add_binary("x")
        y = model.add_continuous("y", 0, 10)
        model.add_constraint(x + y, ConstraintSense.LESS_EQUAL, 5)
        model.add_constraint(y - x, ConstraintSense.GREATER_EQUAL, 1)
        model.add_constraint(x + 2 * y, ConstraintSense.EQUAL, 4)
        model.set_objective(x + y, ObjectiveSense.MAXIMIZE)
        arrays = model.to_arrays()
        assert arrays["A_ub"].shape == (2, 2)
        assert arrays["A_eq"].shape == (1, 2)
        assert list(arrays["integrality"]) == [1, 0]

    def test_objective_value(self):
        model = MILPModel()
        x = model.add_continuous("x")
        model.set_objective(2 * x + 1)
        assert model.objective_value([3.0]) == 7.0


def knapsack_model() -> MILPModel:
    """max 10a + 6b + 4c  s.t. a+b+c <= 2, binaries."""
    model = MILPModel("knapsack")
    a = model.add_binary("a")
    b = model.add_binary("b")
    c = model.add_binary("c")
    model.add_constraint(a + b + c, ConstraintSense.LESS_EQUAL, 2)
    model.set_objective(10 * a + 6 * b + 4 * c, ObjectiveSense.MAXIMIZE)
    return model


def mixed_model() -> MILPModel:
    """A small mixed problem with an integer and a continuous variable."""
    model = MILPModel("mixed")
    x = model.add_integer("x", 0, 10)
    y = model.add_continuous("y", 0, 10)
    model.add_constraint(2 * x + y, ConstraintSense.LESS_EQUAL, 11)
    model.add_constraint(y - x, ConstraintSense.LESS_EQUAL, 2)
    model.set_objective(3 * x + 2 * y, ObjectiveSense.MAXIMIZE)
    return model


class TestLPRelaxation:
    def test_relaxation_bounds_milp(self):
        arrays = knapsack_model().to_arrays()
        result = solve_lp_relaxation(arrays)
        assert result.is_optimal
        assert result.objective >= 16.0 - 1e-6

    def test_extra_bounds_tighten(self):
        arrays = knapsack_model().to_arrays()
        result = solve_lp_relaxation(arrays, extra_bounds={0: (0.0, 0.0)})
        assert result.objective == pytest.approx(10.0)

    def test_conflicting_extra_bounds_infeasible(self):
        arrays = knapsack_model().to_arrays()
        result = solve_lp_relaxation(arrays, extra_bounds={0: (2.0, 5.0)})
        assert result.status is LPStatus.INFEASIBLE

    def test_infeasible_model(self):
        model = MILPModel()
        x = model.add_continuous("x", 0, 1)
        model.add_constraint(x + 0, ConstraintSense.GREATER_EQUAL, 2)
        model.set_objective(x, ObjectiveSense.MAXIMIZE)
        assert solve_lp_relaxation(model.to_arrays()).status is LPStatus.INFEASIBLE


class TestBackends:
    @pytest.mark.parametrize("solver", [HighsSolver(), BnBSolverBackend()])
    def test_knapsack(self, solver):
        solution = solver.solve(knapsack_model())
        assert solution.objective == pytest.approx(16.0, abs=1e-6)
        assert solution.binary("a") and solution.binary("b") and not solution.binary("c")

    @pytest.mark.parametrize("solver", [HighsSolver(), BnBSolverBackend()])
    def test_mixed_model_agreement(self, solver):
        # Optimum: x = 3, y = 5 (2x + y = 11, y - x = 2), objective 3*3 + 2*5 = 19.
        solution = solver.solve(mixed_model())
        assert solution.objective == pytest.approx(19.0, abs=1e-5)
        assert solution.value("x") == pytest.approx(3.0, abs=1e-5)
        assert solution.value("y") == pytest.approx(5.0, abs=1e-4)

    def test_minimization(self):
        model = MILPModel()
        x = model.add_integer("x", 0, 10)
        model.add_constraint(x + 0, ConstraintSense.GREATER_EQUAL, 2.5)
        model.set_objective(x + 0, ObjectiveSense.MINIMIZE)
        assert HighsSolver().solve(model).objective == pytest.approx(3.0)

    def test_infeasible_raises(self):
        model = MILPModel()
        x = model.add_binary("x")
        model.add_constraint(x + 0, ConstraintSense.GREATER_EQUAL, 2)
        model.set_objective(x, ObjectiveSense.MAXIMIZE)
        with pytest.raises(SolverError):
            HighsSolver().solve(model)
        with pytest.raises(SolverError):
            BnBSolverBackend().solve(model)

    def test_empty_model(self):
        model = MILPModel()
        assert HighsSolver().solve(model).objective == 0.0

    def test_branch_and_bound_stats(self):
        solver = BranchAndBoundSolver()
        values, objective = solver.solve(knapsack_model())
        assert objective == pytest.approx(16.0, abs=1e-6)
        assert solver.stats.lp_solves >= 1
        assert solver.stats.incumbent_updates >= 1

    @given(
        weights=st.lists(st.integers(1, 12), min_size=3, max_size=7),
        values=st.lists(st.integers(1, 20), min_size=3, max_size=7),
        capacity=st.integers(5, 30),
    )
    @settings(max_examples=15, deadline=None)
    def test_backends_agree_on_random_knapsacks(self, weights, values, capacity):
        size = min(len(weights), len(values))
        model = MILPModel("random")
        items = [model.add_binary(f"x{i}") for i in range(size)]
        model.add_constraint(
            linear_sum(weights[i] * items[i] for i in range(size)),
            ConstraintSense.LESS_EQUAL,
            capacity,
        )
        model.set_objective(
            linear_sum(values[i] * items[i] for i in range(size)), ObjectiveSense.MAXIMIZE
        )
        highs = HighsSolver().solve(model).objective
        model2 = MILPModel("random2")
        items2 = [model2.add_binary(f"x{i}") for i in range(size)]
        model2.add_constraint(
            linear_sum(weights[i] * items2[i] for i in range(size)),
            ConstraintSense.LESS_EQUAL,
            capacity,
        )
        model2.set_objective(
            linear_sum(values[i] * items2[i] for i in range(size)), ObjectiveSense.MAXIMIZE
        )
        bnb = BnBSolverBackend().solve(model2).objective
        assert highs == pytest.approx(bnb, abs=1e-6)


class TestLinearization:
    def test_product_with_binary(self):
        model = MILPModel()
        b = model.add_binary("b")
        f = model.add_continuous("f", 0, 10)
        product = add_product_with_binary(model, "p", b, f, 0, 10)
        model.add_constraint(f + 0, ConstraintSense.EQUAL, 7)
        model.add_constraint(b + 0, ConstraintSense.EQUAL, 1)
        model.set_objective(product, ObjectiveSense.MINIMIZE)
        solution = HighsSolver().solve(model)
        assert solution.value("p") == pytest.approx(7.0)

    def test_product_with_binary_zero_when_off(self):
        model = MILPModel()
        b = model.add_binary("b")
        f = model.add_continuous("f", 0, 10)
        product = add_product_with_binary(model, "p", b, f, 0, 10)
        model.add_constraint(f + 0, ConstraintSense.EQUAL, 7)
        model.add_constraint(b + 0, ConstraintSense.EQUAL, 0)
        model.set_objective(product, ObjectiveSense.MAXIMIZE)
        assert HighsSolver().solve(model).value("p") == pytest.approx(0.0)

    def test_invalid_range(self):
        model = MILPModel()
        b = model.add_binary("b")
        with pytest.raises(ValueError):
            add_product_with_binary(model, "p", b, b, 5, 1)

    def test_binary_product_truth_table(self):
        for left_value, right_value in [(0, 0), (0, 1), (1, 0), (1, 1)]:
            model = MILPModel()
            x = model.add_binary("x")
            y = model.add_binary("y")
            w = add_binary_product(model, "w", x, y)
            model.add_constraint(x + 0, ConstraintSense.EQUAL, left_value)
            model.add_constraint(y + 0, ConstraintSense.EQUAL, right_value)
            # Push w upward; constraints must cap it at x*y.
            model.set_objective(w + 0, ObjectiveSense.MAXIMIZE)
            solution = HighsSolver().solve(model)
            assert round(solution.value("w")) == left_value * right_value

    def test_equality_indicator_forces_value(self):
        model = MILPModel()
        y = model.add_binary("y")
        f = model.add_continuous("f", 0, 10)
        add_equality_indicator(model, y, f, 4.0, big_m=20.0)
        model.add_constraint(y + 0, ConstraintSense.EQUAL, 1)
        model.set_objective(f + 0, ObjectiveSense.MAXIMIZE)
        assert HighsSolver().solve(model).value("f") == pytest.approx(4.0)

    def test_equality_indicator_released_when_off(self):
        model = MILPModel()
        y = model.add_binary("y")
        f = model.add_continuous("f", 0, 10)
        add_equality_indicator(model, y, f, 4.0, big_m=20.0)
        model.add_constraint(y + 0, ConstraintSense.EQUAL, 0)
        model.set_objective(f + 0, ObjectiveSense.MAXIMIZE)
        assert HighsSolver().solve(model).value("f") == pytest.approx(10.0)

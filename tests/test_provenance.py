"""Unit tests for provenance relations (Definition 2.3)."""

import pytest

from repro.relational.executor import Database
from repro.relational.expressions import col
from repro.relational.provenance import provenance_relation
from repro.relational.query import (
    AggregateFunction,
    Join,
    Scan,
    aggregate_query,
    count_query,
    projection_query,
    sum_query,
)


@pytest.fixture()
def db() -> Database:
    database = Database("prov")
    database.add_records(
        "Stats",
        [
            {"program": "CS", "bach": 2, "univ": "A"},
            {"program": "EE", "bach": 1, "univ": "A"},
            {"program": "Art", "bach": 3, "univ": "B"},
        ],
    )
    return database


class TestImpacts:
    def test_count_impacts_are_one(self, db):
        query = count_query("q", Scan("Stats"), attribute="program")
        provenance = provenance_relation(query, db)
        assert [t.impact for t in provenance] == [1.0, 1.0, 1.0]

    def test_sum_impacts_equal_attribute(self, db):
        query = sum_query("q", Scan("Stats"), "bach")
        provenance = provenance_relation(query, db)
        assert [t.impact for t in provenance] == [2.0, 1.0, 3.0]

    def test_projection_impacts_are_one(self, db):
        query = projection_query("q", Scan("Stats"), ["program"])
        provenance = provenance_relation(query, db)
        assert all(t.impact == 1.0 for t in provenance)

    def test_avg_impacts_equal_attribute(self, db):
        query = aggregate_query("q", AggregateFunction.AVG, Scan("Stats"), "bach")
        provenance = provenance_relation(query, db)
        assert provenance.total_impact() == 6.0

    def test_null_impact_is_zero(self):
        database = Database("nulls")
        database.add_records("T", [{"v": 3}, {"v": None}])
        provenance = provenance_relation(sum_query("q", Scan("T"), "v"), database)
        assert [t.impact for t in provenance] == [3.0, 0.0]


class TestFiltering:
    def test_selection_restricts_provenance(self, db):
        query = sum_query("q", Scan("Stats"), "bach", predicate=(col("univ") == "A"))
        provenance = provenance_relation(query, db)
        assert len(provenance) == 2
        assert provenance.total_impact() == 3.0

    def test_provenance_matches_query_result(self, db):
        from repro.relational.executor import scalar_result

        query = sum_query("q", Scan("Stats"), "bach", predicate=(col("univ") == "A"))
        assert provenance_relation(query, db).total_impact() == scalar_result(query, db)


class TestStructure:
    def test_keys_are_unique_and_labelled(self, db):
        query = count_query("Q7", Scan("Stats"), attribute="program")
        provenance = provenance_relation(query, db)
        keys = [t.key for t in provenance]
        assert len(set(keys)) == len(keys)
        assert all(key.startswith("P[Q7]") for key in keys)

    def test_lineage_points_to_base_rows(self, db):
        query = count_query("q", Scan("Stats"), attribute="program")
        provenance = provenance_relation(query, db)
        assert provenance[0].lineage == frozenset({"Stats:0"})

    def test_join_provenance_merges_lineage(self, db):
        db.add_records("Univ", [{"univ": "A", "state": "MA"}, {"univ": "B", "state": "OH"}])
        query = sum_query(
            "q", Join(Scan("Stats"), Scan("Univ"), on=(("univ", "univ"),)), "bach"
        )
        provenance = provenance_relation(query, db)
        assert len(provenance) == 3
        assert any("Univ:0" in t.lineage for t in provenance)

    def test_by_key_and_values(self, db):
        query = count_query("q", Scan("Stats"), attribute="program")
        provenance = provenance_relation(query, db)
        key = provenance[1].key
        assert provenance.by_key()[key].value("program") == "EE"
        assert provenance.values("program") == ["CS", "EE", "Art"]

    def test_with_impact_copies(self, db):
        query = count_query("q", Scan("Stats"), attribute="program")
        original = provenance_relation(query, db)[0]
        changed = original.with_impact(5.0)
        assert changed.impact == 5.0
        assert original.impact == 1.0

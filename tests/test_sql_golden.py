"""Golden suite: the paper's workloads expressed as SQL strings.

Every query that the dataset generators hand-build (academic, IMDb views,
synthetic, Figure 1) has a canonical SQL form in
:mod:`repro.datasets.sql_catalog`; these tests assert the SQL lowers to a
fingerprint-identical AST and that ``to_sql`` round trips the hand-built
trees -- which is the PR's acceptance criterion.
"""

from __future__ import annotations

import pytest

from repro import parse_query
from repro.datasets.imdb import generate_imdb_workload
from repro.datasets.sql_catalog import (
    academic_sql,
    catalog_self_check,
    figure1_databases,
    figure1_sql,
    imdb_sql,
    synthetic_sql,
)


def test_catalog_self_check_passes():
    summary = catalog_self_check()
    assert "match their hand-built ASTs" in summary


class TestFigure1Golden:
    def test_sql_fingerprints_match_fixtures(self, figure1_db1, figure1_db2, figure1_queries):
        q1, q2 = figure1_queries
        sqls = figure1_sql()
        assert parse_query(sqls["Q1"], figure1_db1, name="Q1").fingerprint() == q1.fingerprint()
        assert parse_query(sqls["Q2"], figure1_db2, name="Q2").fingerprint() == q2.fingerprint()

    def test_sql_executes_to_the_disagreement(self, figure1_db1, figure1_db2):
        from repro.relational.executor import scalar_result

        sqls = figure1_sql()
        left = parse_query(sqls["Q1"], figure1_db1, name="Q1")
        right = parse_query(sqls["Q2"], figure1_db2, name="Q2")
        assert scalar_result(left, figure1_db1) == 7.0
        assert scalar_result(right, figure1_db2) == 6.0


class TestAcademicGolden:
    def test_small_pair_queries_have_sql_forms(self, small_academic_pair):
        pair = small_academic_pair
        sqls = academic_sql("UMass-Amherst")
        left = parse_query(sqls["Q1"], pair.db_left, name=pair.query_left.name)
        assert left.fingerprint() == pair.query_left.fingerprint()
        right = parse_query(sqls["Q2"], pair.db_right, name=pair.query_right.name)
        assert right.fingerprint() == pair.query_right.fingerprint()

    def test_handbuilt_queries_print_and_reparse(self, small_academic_pair):
        pair = small_academic_pair
        for query, db in (
            (pair.query_left, pair.db_left),
            (pair.query_right, pair.db_right),
        ):
            printed = query.to_sql()
            assert parse_query(printed, db, name=query.name).fingerprint() == query.fingerprint()


class TestSyntheticGolden:
    def test_sql_fingerprints_match(self, small_synthetic_pair):
        pair = small_synthetic_pair
        sqls = synthetic_sql()
        assert (
            parse_query(sqls["Q1"], pair.db_left, name="Q1").fingerprint()
            == pair.query_left.fingerprint()
        )
        assert (
            parse_query(sqls["Q2"], pair.db_right, name="Q2").fingerprint()
            == pair.query_right.fingerprint()
        )


@pytest.fixture(scope="module")
def imdb_workload():
    return generate_imdb_workload()


class TestIMDbGolden:
    @pytest.mark.parametrize("template", [f"Q{i}" for i in range(1, 11)])
    def test_template_sql_matches_handbuilt(self, imdb_workload, template):
        param = "Drama" if template == "Q10" else imdb_workload.years_with_movies()[0]
        pair = imdb_workload.pair(template, param)
        sqls = imdb_sql(template, param)
        left = parse_query(sqls["v1"], imdb_workload.db_view1, name=pair.query_left.name)
        assert left.fingerprint() == pair.query_left.fingerprint()
        right = parse_query(sqls["v2"], imdb_workload.db_view2, name=pair.query_right.name)
        assert right.fingerprint() == pair.query_right.fingerprint()

    @pytest.mark.parametrize("template", ["Q1", "Q5", "Q10"])
    def test_handbuilt_templates_round_trip_through_to_sql(self, imdb_workload, template):
        param = "Drama" if template == "Q10" else imdb_workload.years_with_movies()[0]
        pair = imdb_workload.pair(template, param)
        for query, db in (
            (pair.query_left, imdb_workload.db_view1),
            (pair.query_right, imdb_workload.db_view2),
        ):
            printed = query.to_sql()
            reparsed = parse_query(printed, db, name=query.name)
            assert reparsed.fingerprint() == query.fingerprint(), printed

    def test_sql_and_handbuilt_execute_identically(self, imdb_workload):
        from repro.relational.executor import execute

        year = imdb_workload.years_with_movies()[0]
        pair = imdb_workload.pair("Q3", year)
        sqls = imdb_sql("Q3", year)
        for sql, query, db in (
            (sqls["v1"], pair.query_left, imdb_workload.db_view1),
            (sqls["v2"], pair.query_right, imdb_workload.db_view2),
        ):
            parsed = parse_query(sql, db, name=query.name)
            assert [row.values for row in execute(parsed, db)] == [
                row.values for row in execute(query, db)
            ]


def test_academic_sql_escapes_quotes_in_university_names():
    sqls = academic_sql("St. John's")
    query = parse_query(sqls["Q2"], None, name="Q2")
    predicate = query.root.child.predicate
    assert predicate.value == "St. John's"


def test_imdb_sql_escapes_quotes_in_genre_params():
    sqls = imdb_sql("Q10", "Rock'n'Roll")
    assert parse_query(sqls["v1"], None, name="Q").root is not None


def test_figure1_databases_helper_is_consistent_with_fixtures(figure1_db1):
    db1, db2, matches = figure1_databases()
    assert db1.fingerprint() == figure1_db1.fingerprint()
    assert "Major" in db2.relation("D2").schema
    assert matches.matches

"""Unit tests for Stage 3 summarization."""

import pytest

from repro.core.canonical import canonicalize
from repro.core.explanations import ExplanationSet, ProvenanceExplanation
from repro.core.summarize import PatternSummarizer, SummaryPattern
from repro.graphs.bipartite import Side
from repro.matching.attribute_match import matching
from repro.relational.executor import Database
from repro.relational.provenance import provenance_relation
from repro.relational.query import Scan, count_query


@pytest.fixture()
def degree_canonicals():
    """A listing where all explained majors share Degree = 'Associate degree'."""
    db = Database("d")
    records = []
    for index in range(8):
        records.append({"Major": f"Assoc Major {index}", "Degree": "Associate degree"})
    for index in range(12):
        records.append({"Major": f"Bachelor Major {index}", "Degree": "B.S."})
    db.add_records("Major", records)
    query = count_query("q", Scan("Major"), attribute="Major")
    provenance = provenance_relation(query, db)
    canonical = canonicalize(provenance, matching(("Major", "Program")), Side.LEFT, label="T1")
    right = canonicalize(provenance, matching(("Major", "Program")), Side.LEFT, label="T2")
    return canonical, right


class TestPatternSummarizer:
    def test_common_attribute_is_summarized(self, degree_canonicals):
        canonical, right = degree_canonicals
        targets = [t.key for t in canonical if t.value("Major").startswith("Assoc")]
        explanations = ExplanationSet(
            provenance=[ProvenanceExplanation(Side.LEFT, key) for key in targets]
        )
        summary = PatternSummarizer().summarize(explanations, canonical, right)
        assert summary.patterns, "expected at least one pattern"
        best = summary.patterns[0]
        assert ("Degree", "Associate degree") in best.conditions
        assert best.covered_targets == len(targets)
        assert summary.size < len(targets)

    def test_no_explanations_empty_summary(self, degree_canonicals):
        canonical, right = degree_canonicals
        summary = PatternSummarizer().summarize(ExplanationSet(), canonical, right)
        assert summary.size == 0
        assert "no explanations" in summary.describe()

    def test_low_precision_patterns_rejected(self, degree_canonicals):
        canonical, right = degree_canonicals
        # Explain only 2 of the 12 B.S. majors: the Degree=B.S. pattern would have
        # precision 2/12 and must be rejected, leaving residual singletons.
        targets = [t.key for t in canonical if t.value("Major").startswith("Bachelor")][:2]
        explanations = ExplanationSet(
            provenance=[ProvenanceExplanation(Side.LEFT, key) for key in targets]
        )
        summary = PatternSummarizer(min_precision=0.9).summarize(explanations, canonical, right)
        degree_patterns = [
            p for p in summary.patterns if ("Degree", "B.S.") in p.conditions and len(p.conditions) == 1
        ]
        assert not degree_patterns
        assert len(summary.residual_keys) >= 1

    def test_pattern_match_and_describe(self):
        pattern = SummaryPattern(Side.LEFT, (("Degree", "B.S."),), 3, 1)
        assert pattern.matches({"Degree": "B.S.", "x": 1})
        assert not pattern.matches({"Degree": "B.A."})
        assert pattern.precision == pytest.approx(0.75)
        assert "Degree" in pattern.describe()

    def test_summary_size_counts_patterns_and_residuals(self, degree_canonicals):
        canonical, right = degree_canonicals
        targets = [t.key for t in canonical if t.value("Major").startswith("Assoc")]
        lone_target = [t.key for t in canonical if t.value("Major") == "Bachelor Major 0"]
        explanations = ExplanationSet(
            provenance=[ProvenanceExplanation(Side.LEFT, key) for key in targets + lone_target]
        )
        summary = PatternSummarizer().summarize(explanations, canonical, right)
        assert summary.size == len(summary.patterns) + len(summary.residual_keys)
        assert summary.size <= len(targets) + 1

    def test_max_patterns_respected(self, degree_canonicals):
        canonical, right = degree_canonicals
        targets = [t.key for t in canonical]
        explanations = ExplanationSet(
            provenance=[ProvenanceExplanation(Side.LEFT, key) for key in targets]
        )
        summary = PatternSummarizer(max_patterns=1).summarize(explanations, canonical, right)
        assert len(summary.patterns) <= 1

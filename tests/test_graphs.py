"""Unit tests for the graph substrate (Section 4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.bipartite import GraphNode, MatchGraph, Side
from repro.graphs.coarsen import contract, heavy_edge_matching, prepartition
from repro.graphs.components import connected_components
from repro.graphs.partitioner import GraphPartitioner, WeightedGraph
from repro.graphs.refine import cut_weight, refine_partition
from repro.graphs.smart_partition import SmartPartitioner
from repro.graphs.weighting import WeightingParams, adjust_weight
from repro.matching.tuple_matching import TupleMapping, TupleMatch


def sample_graph() -> MatchGraph:
    mapping = TupleMapping(
        [
            TupleMatch("l0", "r0", 0.95),
            TupleMatch("l1", "r0", 0.3),
            TupleMatch("l1", "r1", 0.92),
            TupleMatch("l2", "r2", 0.05),
        ]
    )
    return MatchGraph(["l0", "l1", "l2", "l3"], ["r0", "r1", "r2", "r3"], mapping)


class TestMatchGraph:
    def test_counts(self):
        graph = sample_graph()
        assert graph.num_nodes == 8
        assert graph.num_edges == 4

    def test_neighbors_and_degree(self):
        graph = sample_graph()
        node = GraphNode(Side.LEFT, "l1")
        assert {n.key for n in graph.neighbors(node)} == {"r0", "r1"}
        assert graph.degree(node) == 2
        assert graph.degree(GraphNode(Side.RIGHT, "r3")) == 0

    def test_subgraph(self):
        graph = sample_graph().subgraph({"l0", "l1"}, {"r0"})
        assert graph.num_edges == 2
        assert set(graph.left_keys) == {"l0", "l1"}

    def test_to_mapping_round_trip(self):
        graph = sample_graph()
        assert graph.to_mapping().pairs() == {("l0", "r0"), ("l1", "r0"), ("l1", "r1"), ("l2", "r2")}

    def test_add_edge_creates_missing_nodes(self):
        graph = MatchGraph([], [])
        graph.add_edge("a", "b", 0.5)
        assert graph.num_nodes == 2


class TestComponents:
    def test_connected_components(self):
        components = connected_components(sample_graph())
        sizes = sorted(len(left) + len(right) for left, right in components)
        # {l0,l1,r0,r1}, {l2,r2}, and two isolated singletons.
        assert sizes == [1, 1, 2, 4]

    def test_all_nodes_covered_once(self):
        graph = sample_graph()
        components = connected_components(graph)
        left_total = sum(len(left) for left, _ in components)
        right_total = sum(len(right) for _, right in components)
        assert left_total == len(graph.left_keys)
        assert right_total == len(graph.right_keys)


class TestWeighting:
    def test_adjustment_regimes(self):
        params = WeightingParams(theta_low=0.1, theta_high=0.9, reward=100.0)
        assert adjust_weight(0.95, params) == pytest.approx(95.0)
        assert adjust_weight(0.05, params) == pytest.approx(0.0005)
        assert adjust_weight(0.5, params) == 0.5

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            WeightingParams(theta_low=0.9, theta_high=0.1)
        with pytest.raises(ValueError):
            WeightingParams(reward=0.5)


class TestPrepartition:
    def test_high_probability_edges_merge(self):
        coarse = prepartition(sample_graph(), WeightingParams())
        # l0-r0 (0.95) merge; l1-r1 (0.92) merge; but l1-r0 (0.3) keeps them apart.
        merged_sizes = sorted(s.size for s in coarse.supernodes)
        assert max(merged_sizes) == 2
        assert coarse.num_nodes == 6
        # The 0.3 edge now connects two supernodes.
        assert coarse.num_edges >= 1

    def test_internal_edges_removed(self):
        coarse = prepartition(sample_graph(), WeightingParams())
        for (a, b), _ in coarse.edges.items():
            assert a != b

    def test_linear_weights_adjusted(self):
        coarse = prepartition(sample_graph(), WeightingParams())
        weights = sorted(coarse.edges.values())
        # The 0.05 edge is penalized to 0.0005.
        assert weights[0] == pytest.approx(0.0005)


class TestCoarsening:
    def test_heavy_edge_matching_respects_size(self):
        adjacency = [{1: 5.0}, {0: 5.0, 2: 1.0}, {1: 1.0}]
        sizes = [3.0, 3.0, 1.0]
        coarse_of = heavy_edge_matching(adjacency, sizes, max_merged_size=4.0)
        # Nodes 0 and 1 cannot merge (size 6 > 4).
        assert coarse_of[0] != coarse_of[1]

    def test_contract_accumulates(self):
        adjacency = [{1: 2.0, 2: 1.0}, {0: 2.0, 2: 3.0}, {0: 1.0, 1: 3.0}]
        sizes = [1.0, 1.0, 1.0]
        coarse_adj, coarse_sizes = contract(adjacency, sizes, [0, 0, 1])
        assert coarse_sizes == [2.0, 1.0]
        assert coarse_adj[0][1] == pytest.approx(4.0)


class TestPartitioner:
    def make_graph(self, num_nodes=60, cluster=10) -> WeightedGraph:
        edges = {}
        for start in range(0, num_nodes, cluster):
            for i in range(start, start + cluster - 1):
                edges[(i, i + 1)] = 10.0
        # weak links between clusters
        for start in range(cluster - 1, num_nodes - 1, cluster):
            edges[(start, start + 1)] = 0.1
        return WeightedGraph.from_edges(num_nodes, edges)

    def test_partition_respects_size_bound(self):
        graph = self.make_graph()
        partition = GraphPartitioner(coarsen_threshold=10).partition(graph, 6, 12)
        assert partition.max_part_size <= 12

    def test_partition_covers_all_nodes(self):
        graph = self.make_graph()
        partition = GraphPartitioner().partition(graph, 6, 12)
        assert sorted(n for members in partition.members() for n in members) == list(range(60))

    def test_partition_prefers_weak_edges(self):
        graph = self.make_graph()
        partition = GraphPartitioner().partition(graph, 6, 12)
        # Perfect partitioning cuts only the six 0.1-weight bridges (total 0.5);
        # allow some slack but far less than cutting any strong edge.
        assert partition.cut < 10.0

    def test_single_partition(self):
        graph = self.make_graph(10, 5)
        partition = GraphPartitioner().partition(graph, 1, 100)
        assert set(partition.assignment) == {0}

    def test_refine_never_worsens_cut(self):
        graph = self.make_graph(30, 5)
        assignment = [i % 3 for i in range(30)]
        before = cut_weight(graph.adjacency, assignment)
        refined = refine_partition(graph.adjacency, graph.sizes, assignment, 3, 15)
        after = cut_weight(graph.adjacency, refined)
        assert after <= before

    def test_weighted_graph_validation(self):
        with pytest.raises(ValueError):
            WeightedGraph([{}, {}], [1.0])


class TestSmartPartitioner:
    def test_partitions_cover_all_tuples_disjointly(self):
        graph = sample_graph()
        result = SmartPartitioner(batch_size=4).partition(graph)
        left_seen = [key for p in result for key in p.left_keys]
        right_seen = [key for p in result for key in p.right_keys]
        assert sorted(left_seen) == sorted(graph.left_keys)
        assert sorted(right_seen) == sorted(graph.right_keys)
        assert len(left_seen) == len(set(left_seen))

    def test_small_graph_single_partition(self):
        graph = sample_graph()
        result = SmartPartitioner(batch_size=100).partition(graph)
        assert len(result) == 1

    def test_num_partitions_formula(self):
        graph = sample_graph()
        assert SmartPartitioner(batch_size=3).num_partitions(graph) == 3

    def test_by_connected_components(self):
        result = SmartPartitioner.by_connected_components(sample_graph())
        assert len(result) == 4

    def test_partition_sizes_bounded(self):
        mapping = TupleMapping(
            [TupleMatch(f"l{i}", f"r{i}", 0.5) for i in range(40)]
        )
        graph = MatchGraph([f"l{i}" for i in range(40)], [f"r{i}" for i in range(40)], mapping)
        result = SmartPartitioner(batch_size=20).partition(graph)
        assert len(result) >= 3
        assert max(p.size for p in result) <= 25  # small tolerance over the batch size

    def test_prepartitioning_keeps_high_probability_pairs_together(self):
        mapping = TupleMapping(
            [TupleMatch(f"l{i}", f"r{i}", 0.99) for i in range(30)]
            + [TupleMatch(f"l{i}", f"r{(i + 1) % 30}", 0.05) for i in range(30)]
        )
        graph = MatchGraph([f"l{i}" for i in range(30)], [f"r{i}" for i in range(30)], mapping)
        result = SmartPartitioner(batch_size=12).partition(graph)
        partition_of = {}
        for partition in result:
            for key in partition.left_keys:
                partition_of[("L", key)] = partition.index
            for key in partition.right_keys:
                partition_of[("R", key)] = partition.index
        for i in range(30):
            assert partition_of[("L", f"l{i}")] == partition_of[("R", f"r{i}")]

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            SmartPartitioner(batch_size=1)

    @given(st.integers(2, 6), st.integers(10, 40))
    @settings(max_examples=10, deadline=None)
    def test_random_graphs_fully_covered(self, batch, n):
        mapping = TupleMapping(
            [TupleMatch(f"l{i}", f"r{(i * 7) % n}", 0.1 + 0.8 * ((i * 13) % 10) / 10) for i in range(n)]
        )
        graph = MatchGraph([f"l{i}" for i in range(n)], [f"r{i}" for i in range(n)], mapping)
        result = SmartPartitioner(batch_size=batch * 5).partition(graph)
        assert sorted(k for p in result for k in p.left_keys) == sorted(graph.left_keys)
        assert sorted(k for p in result for k in p.right_keys) == sorted(graph.right_keys)

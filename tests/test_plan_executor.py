"""Planned execution must be fingerprint-identical to the naive interpreter.

Fingerprints (:meth:`Relation.fingerprint`) cover schema, row values, row
*order* and per-row lineage sets, so every assertion here checks the full
contract Stage 1 depends on -- including why-provenance.  Coverage spans the
dataset catalog queries (Figure 1, academic, synthetic, IMDb view templates)
and a property-test sweep over the SQL fuzzer's random queries.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.plan import plan_node, plan_query
from repro.relational.executor import Database, ExecutionError, execute
from repro.relational.expressions import col
from repro.relational.provenance import provenance_relation
from repro.relational.query import (
    Aggregate,
    AggregateFunction,
    Scan,
    Select,
    Union,
    count_query,
    sum_query,
)
from repro.sql import parse_query
from repro.sql.fuzz import random_query_sql, toy_database


def _assert_planned_equivalent(query, db):
    naive = execute(query, db, planner="naive")
    planned = execute(query, db, planner="optimized")
    assert naive.fingerprint() == planned.fingerprint(), query.name


def _assert_provenance_equivalent(query, db):
    naive = provenance_relation(query, db, planner="naive")
    planned = provenance_relation(query, db, planner="optimized")
    assert [(t.key, t.values, t.impact, t.lineage) for t in naive] == [
        (t.key, t.values, t.impact, t.lineage) for t in planned
    ], query.name


class TestCatalogEquivalence:
    def test_figure1(self, figure1_db1, figure1_db2, figure1_queries):
        q1, q2 = figure1_queries
        for query, db in ((q1, figure1_db1), (q2, figure1_db2)):
            _assert_planned_equivalent(query, db)
            _assert_provenance_equivalent(query, db)

    def test_academic(self):
        from repro.datasets.academic import generate_academic_pair

        pair = generate_academic_pair()
        for query, db in (
            (pair.query_left, pair.db_left),
            (pair.query_right, pair.db_right),
        ):
            _assert_planned_equivalent(query, db)
            _assert_provenance_equivalent(query, db)

    def test_synthetic(self):
        from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_pair

        pair = generate_synthetic_pair(SyntheticConfig(num_tuples=80, seed=3))
        for query, db in (
            (pair.query_left, pair.db_left),
            (pair.query_right, pair.db_right),
        ):
            _assert_planned_equivalent(query, db)
            _assert_provenance_equivalent(query, db)

    @pytest.mark.parametrize("template", ["Q1", "Q3", "Q5", "Q9", "Q10"])
    def test_imdb_templates(self, template):
        from repro.datasets.imdb import generate_imdb_workload

        workload = generate_imdb_workload()
        param = "Drama" if template == "Q10" else workload.years_with_movies()[0]
        pair = workload.pair(template, param)
        for query, db in (
            (pair.query_left, pair.db_left),
            (pair.query_right, pair.db_right),
        ):
            _assert_planned_equivalent(query, db)
            _assert_provenance_equivalent(query, db)


class TestFuzzEquivalence:
    """Satellite: property-test the planner with the SQL fuzzer's queries."""

    ROUNDS = 80

    def test_random_queries_are_fingerprint_identical(self):
        db = toy_database()
        for round_index in range(self.ROUNDS):
            rng = random.Random(4000 + round_index)
            sql = random_query_sql(rng, db)
            query = parse_query(sql, db, name=f"F{round_index}")
            naive = execute(query, db, planner="naive")
            planned = execute(query, db, planner="optimized")
            assert naive.fingerprint() == planned.fingerprint(), sql

    def test_fuzz_provenance_lineage_identical(self):
        db = toy_database()
        for round_index in range(20):
            rng = random.Random(6000 + round_index)
            sql = random_query_sql(rng, db)
            query = parse_query(sql, db, name=f"P{round_index}")
            _assert_provenance_equivalent(query, db)


class TestPlanSurface:
    @pytest.fixture()
    def db(self) -> Database:
        database = Database("plan")
        database.add_records(
            "T",
            [
                {"k": 1, "v": 10.0, "tag": "a"},
                {"k": 2, "v": 20.0, "tag": "b"},
                {"k": 2, "v": 5.0, "tag": None},
            ],
        )
        return database

    def test_execute_with_stats_counts_rows(self, db):
        plan = plan_node(Select(Scan("T"), col("k") == 2), db)
        relation, stats = plan.execute_with_stats()
        assert stats.rows_out == len(relation) == 2
        assert set(stats.operators) == {op.op_id for op in plan.operators}

    def test_explain_run_annotates_rows_and_timings(self, db):
        query = sum_query("s", Scan("T"), "v", predicate=(col("k") == 2))
        explanation = query.explain_plan(db, run=True)
        payload = explanation.to_dict()
        json.dumps(payload)  # JSON-safe end to end
        assert payload["planner"] == "optimized"
        assert payload["rows_out"] == 1
        assert payload["plan"]["operator"] == "AggregateExec"
        assert payload["plan"]["rows"] == 1
        assert "seconds" in payload["plan"]
        text = explanation.describe()
        assert "AggregateExec" in text and "rows=1" in text

    def test_explain_without_run_has_estimates_only(self, db):
        query = count_query("c", Scan("T"), attribute="k")
        payload = query.explain_plan(db, run=False).to_dict()
        assert "rows_out" not in payload
        assert payload["plan"]["estimated_rows"] == 1

    def test_shared_subplan_executes_once(self, db):
        branch = Select(Scan("T"), col("k") == 2)
        plan = plan_node(Union((branch, branch)), db)
        assert plan.shared_subplans == 1
        relation, stats = plan.execute_with_stats()
        assert len(relation) == 4
        shared = [op for op in plan.operators if op.shared]
        assert shared
        assert any(
            stats.operators[op.op_id].get("reused") for op in shared
        ), "the second consumer must reuse the memoized result"

    def test_distinct_projections_get_their_own_stats_slots(self, db):
        # Regression: the ProjectExec under a DistinctExec must be registered
        # like any other operator -- each one gets a distinct op_id, its own
        # row counter and an estimate (not a shared op_id=-1 slot).
        from repro.relational.query import Join, Project

        tree = Join(
            Project(Scan("T"), ("k",), distinct=True),
            Project(Scan("T"), ("k", "tag"), distinct=True),
            on=(("k", "k"),),
        )
        plan = plan_node(tree, db)
        ids = [op.op_id for op in plan.operators]
        assert ids == sorted(set(ids)) and -1 not in ids
        projections = [op for op in plan.operators if op.name == "ProjectExec"]
        assert len(projections) == 2
        assert all(op.estimated_rows is not None for op in projections)
        relation, stats = plan.execute_with_stats()
        by_id = {op.op_id: op for op in plan.operators}
        for op_id, op_stats in stats.operators.items():
            if by_id[op_id].name == "ProjectExec":
                assert op_stats["rows"] == 3  # each projection emits its own 3 rows

    def test_plan_is_reusable_across_executions(self, db):
        plan = plan_node(Aggregate(Scan("T"), AggregateFunction.COUNT, "k"), db)
        assert plan.execute().fingerprint() == plan.execute().fingerprint()

    def test_unknown_planner_rejected(self, db):
        query = count_query("c", Scan("T"), attribute="k")
        with pytest.raises(ExecutionError):
            execute(query, db, planner="turbo")

    def test_empty_aggregate_null_row_matches_interpreter(self, db):
        query = sum_query("s", Scan("T"), "v", predicate=(col("k") == 99))
        _assert_planned_equivalent(query, db)
        assert execute(query, db, planner="optimized")[0].values == (None,)


class TestDatabaseAddRegression:
    """Satellite: Database.add must not rename the caller's relation."""

    def test_add_under_second_name_does_not_mutate(self):
        from repro.relational.relation import Relation

        db = Database("reg")
        relation = Relation.from_records([{"a": 1}, {"a": 2}], name="orig")
        before = relation.fingerprint()
        db.add(relation, "alias")
        assert relation.name == "orig"
        assert relation.fingerprint() == before
        assert db.relation("alias").name == "alias"
        # Rows (and their lineage) are shared, not copied.
        assert db.relation("alias").rows == relation.rows

    def test_registering_same_relation_under_two_names(self):
        from repro.relational.relation import Relation

        db = Database("reg")
        relation = Relation.from_records([{"a": 1}], name="first")
        db.add(relation)
        db.add(relation, "second")
        assert db.relation("first").name == "first"
        assert db.relation("first") is relation
        assert db.relation("second").name == "second"
        assert relation.name == "first"

"""Additional coverage: configuration plumbing, name pools, and IMDb templates."""

import pytest

from repro import Explain3D, Explain3DConfig, Priors
from repro.core.partitioning import PartitionedSolver, SolveConfig
from repro.datasets import names as name_pools
from repro.datasets.imdb import IMDbConfig, generate_imdb_workload
from repro.graphs.weighting import WeightingParams


class TestConfigPlumbing:
    def test_solve_config_mirrors_facade_config(self):
        config = Explain3DConfig(
            partitioning="smart",
            batch_size=123,
            weighting=WeightingParams(reward=50.0),
            use_prepartitioning=False,
        )
        solve_config = config.solve_config()
        assert solve_config.partitioning == "smart"
        assert solve_config.batch_size == 123
        assert solve_config.weighting.reward == 50.0
        assert solve_config.use_prepartitioning is False

    def test_expected_partitions(self, figure1_problem):
        solver = PartitionedSolver(figure1_problem, SolveConfig(batch_size=5))
        assert solver.expected_partitions() == 3

    def test_facade_accepts_custom_priors(self, figure1_db1, figure1_db2, figure1_queries):
        from repro import matching

        q1, q2 = figure1_queries
        engine = Explain3D(Explain3DConfig(partitioning="none", priors=Priors(0.8, 0.8)))
        report = engine.explain(
            q1, figure1_db1, q2, figure1_db2, attribute_matches=matching(("Program", "Major"))
        )
        assert report.problem.priors == Priors(0.8, 0.8)


class TestNamePools:
    def test_pool_is_unique_and_deterministic(self):
        pool = name_pools.program_name_pool(300)
        assert len(pool) == 300
        assert len(set(pool)) == 300
        assert pool == name_pools.program_name_pool(300)

    def test_pool_starts_with_plain_fields(self):
        pool = name_pools.program_name_pool(50)
        assert pool[: len(name_pools.BASE_FIELDS[:50])] == name_pools.BASE_FIELDS[:50]

    def test_pool_too_large_raises(self):
        with pytest.raises(ValueError):
            name_pools.program_name_pool(10_000_000)


class TestDatasetPairOptions:
    def test_uncalibrated_mapping_uses_similarity(self, small_academic_pair):
        problem, _ = small_academic_pair.build_problem(calibrate_with_gold=False)
        for match in problem.mapping:
            assert match.probability == pytest.approx(
                min(max(match.similarity, 1e-3), 1 - 1e-3)
            )

    def test_min_similarity_override(self, small_academic_pair):
        loose, _ = small_academic_pair.build_problem(min_similarity=0.1)
        strict, _ = small_academic_pair.build_problem(min_similarity=0.6)
        assert len(strict.mapping) < len(loose.mapping)


class TestRemainingIMDbTemplates:
    @pytest.fixture(scope="class")
    def workload(self):
        return generate_imdb_workload(IMDbConfig(num_movies=100, num_people=120, seed=31))

    @pytest.mark.parametrize("template", ["Q2", "Q4", "Q6", "Q8", "Q9"])
    def test_templates_produce_comparable_problems(self, workload, template):
        param = 1960 if template == "Q2" else workload.years_with_movies(minimum=2)[0]
        pair = workload.pair(template, param)
        problem, gold = pair.build_problem()
        assert problem.attribute_matches.comparable
        # The two sides always describe overlapping sets of movies/people.
        assert len(problem.canonical_left) + len(problem.canonical_right) >= 0
        assert gold is not None

    def test_q1_short_movies(self, workload):
        year = workload.years_with_movies(minimum=2)[0]
        pair = workload.pair("Q1", year)
        problem, _ = pair.build_problem()
        # Person-centric matching: left groups by (firstname, lastname).
        assert problem.canonical_left.attributes == ("firstname", "lastname")
        assert problem.canonical_right.attributes == ("name",)

"""Equivalence tests for the performance subsystem.

The vectorized matching kernel and the parallel partitioned solver are pure
optimizations: they must produce results identical to the scalar / sequential
reference paths.  These tests pin that contract:

* blocked + batched candidate generation yields exactly the same
  ``CandidateMatch`` list as unblocked scoring on mixed string/numeric/NULL
  data;
* the batch similarity kernel is bit-identical to the scalar
  ``combined_similarity``;
* ``workers=N`` parallel solving produces the same merged objective and the
  same explanation identities as ``workers=1`` across all partitioning modes;
* the cached ``Priors`` constants and the vectorized branch-and-bound helpers
  match their recomputed / scalar counterparts.
"""

from __future__ import annotations

import math
import os

import numpy as np
import pytest

from repro.core.canonical import CanonicalRelation, CanonicalTuple
from repro.core.partitioning import (
    PartitionedSolver,
    SolveConfig,
    _restrict_by_partition,
)
from repro.core.scoring import MatchLogProbability, Priors, _clamp
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_pair
from repro.graphs.bipartite import Side
from repro.graphs.smart_partition import TuplePartition
from repro.matching.attribute_match import matching
from repro.matching.blocking import TokenBlocker, all_pairs
from repro.matching.features import TupleFeatureCache, batch_similarity, pair_similarity
from repro.matching.similarity import combined_similarity
from repro.matching.tuple_matching import TupleMapping, TupleMatch, generate_candidates
from repro.solver.branch_and_bound import BranchAndBoundSolver


class _Entity:
    def __init__(self, key, values):
        self.key = key
        self.values = values


ATTRIBUTE_PAIRS = [("name", "name"), ("year", "year"), ("note", "note")]

MIXED_LEFT = [
    _Entity("l0", {"name": "Computer Science", "year": 1999, "note": None}),
    _Entity("l1", {"name": "History", "year": "1999", "note": "x"}),
    _Entity("l2", {"name": None, "year": 5.5, "note": ""}),
    _Entity("l3", {"name": "7", "year": 7, "note": "alpha beta"}),
    _Entity("l4", {"name": "zeta kappa", "year": None, "note": None}),
    _Entity("l5", {"name": True, "year": True, "note": "gamma"}),
    _Entity("l6", {"name": "science club", "year": 2001.5, "note": "beta"}),
]

MIXED_RIGHT = [
    _Entity("r0", {"name": "Computer Engineering", "year": 2000, "note": "y"}),
    _Entity("r1", {"name": "Art History", "year": 1999, "note": None}),
    _Entity("r2", {"name": "", "year": 6, "note": None}),
    _Entity("r3", {"name": "seven 7", "year": "7", "note": "beta gamma"}),
    _Entity("r4", {"name": None, "year": None, "note": ""}),
    _Entity("r5", {"name": "true story", "year": False, "note": "gamma"}),
]


class TestVectorizedKernel:
    def test_batch_similarity_bit_identical_to_scalar(self):
        left = TupleFeatureCache.from_tuples(MIXED_LEFT, [p[0] for p in ATTRIBUTE_PAIRS])
        right = TupleFeatureCache.from_tuples(MIXED_RIGHT, [p[1] for p in ATTRIBUTE_PAIRS])
        ii, jj = zip(*all_pairs(MIXED_LEFT, MIXED_RIGHT))
        batched = batch_similarity(left, right, ATTRIBUTE_PAIRS, ii, jj)
        for k, (i, j) in enumerate(zip(ii, jj)):
            scalar = combined_similarity(
                MIXED_LEFT[i].values, MIXED_RIGHT[j].values, ATTRIBUTE_PAIRS
            )
            assert batched[k] == scalar, (i, j)
            assert pair_similarity(left, right, i, j, ATTRIBUTE_PAIRS) == scalar, (i, j)

    def test_blocker_covers_every_nonzero_similarity_pair(self):
        blocker = TokenBlocker(ATTRIBUTE_PAIRS)
        blocked = set(
            blocker.candidate_pairs(
                [t.values for t in MIXED_LEFT], [t.values for t in MIXED_RIGHT]
            )
        )
        for i, j in all_pairs(MIXED_LEFT, MIXED_RIGHT):
            similarity = combined_similarity(
                MIXED_LEFT[i].values, MIXED_RIGHT[j].values, ATTRIBUTE_PAIRS
            )
            if similarity > 0.0:
                assert (i, j) in blocked, (i, j, similarity)

    @pytest.mark.parametrize("min_similarity", [0.0, 0.25])
    def test_blocked_candidates_equal_all_pairs(self, min_similarity):
        attribute_matches = matching(("name", "name"), ("year", "year"), ("note", "note"))
        blocked = generate_candidates(
            MIXED_LEFT,
            MIXED_RIGHT,
            attribute_matches,
            min_similarity=min_similarity,
            use_blocking=True,
            block_threshold=0,
        )
        unblocked = generate_candidates(
            MIXED_LEFT,
            MIXED_RIGHT,
            attribute_matches,
            min_similarity=min_similarity,
            use_blocking=False,
        )
        # Same candidates, same similarities, same (row-major) order.
        assert blocked == unblocked

    def test_blocked_candidates_equal_all_pairs_on_synthetic_workload(self):
        pair = generate_synthetic_pair(
            SyntheticConfig(num_tuples=80, difference_ratio=0.2, vocabulary_size=200)
        )
        problem, _ = pair.build_problem()
        blocked = generate_candidates(
            problem.canonical_left.tuples,
            problem.canonical_right.tuples,
            problem.attribute_matches,
            use_blocking=True,
            block_threshold=0,
        )
        unblocked = generate_candidates(
            problem.canonical_left.tuples,
            problem.canonical_right.tuples,
            problem.attribute_matches,
            use_blocking=False,
        )
        assert blocked == unblocked
        assert len(blocked) > 0


def _identity_sets(explanations):
    return (
        set(explanations.provenance_identities()),
        set(explanations.value_identities()),
        set(explanations.evidence_pairs()),
    )


class TestParallelSolveEquivalence:
    @pytest.fixture(scope="class")
    def problem(self):
        pair = generate_synthetic_pair(
            SyntheticConfig(num_tuples=90, difference_ratio=0.25, vocabulary_size=1000)
        )
        problem, _ = pair.build_problem()
        return problem

    @pytest.mark.parametrize("mode", ["none", "components", "smart"])
    def test_parallel_threads_match_sequential(self, problem, mode):
        sequential = PartitionedSolver(
            problem, SolveConfig(partitioning=mode, batch_size=30, workers=1)
        )
        parallel = PartitionedSolver(
            problem,
            SolveConfig(partitioning=mode, batch_size=30, workers=4, executor="thread"),
        )
        merged_sequential = sequential.solve()
        merged_parallel = parallel.solve()
        assert merged_parallel.objective == merged_sequential.objective
        assert _identity_sets(merged_parallel) == _identity_sets(merged_sequential)
        assert sequential.stats.num_partitions == parallel.stats.num_partitions
        if mode != "none":
            assert parallel.stats.num_partitions > 1
            assert parallel.stats.workers_used > 1

    def test_parallel_processes_match_sequential(self, problem):
        sequential = PartitionedSolver(
            problem, SolveConfig(partitioning="smart", batch_size=30, workers=1)
        )
        parallel = PartitionedSolver(
            problem,
            SolveConfig(partitioning="smart", batch_size=30, workers=2, executor="process"),
        )
        merged_sequential = sequential.solve()
        merged_parallel = parallel.solve()
        assert merged_parallel.objective == merged_sequential.objective
        assert _identity_sets(merged_parallel) == _identity_sets(merged_sequential)

    def test_default_workers_resolve_to_cpu_count(self):
        assert SolveConfig().resolved_workers() == (os.cpu_count() or 1)
        assert SolveConfig(workers=3).resolved_workers() == 3
        with pytest.raises(ValueError):
            SolveConfig(workers=0).resolved_workers()

    def test_unknown_executor_rejected(self, problem):
        solver = PartitionedSolver(problem, SolveConfig(executor="fiber"))
        with pytest.raises(ValueError):
            solver.solve()

    def test_solver_without_clone_falls_back_to_sequential(self, problem):
        from repro.solver.backends import HighsSolver

        class OpaqueSolver:
            # Implements only the MILPSolver protocol (no clone()): may be
            # stateful, so it must never be shared across concurrent workers.
            def __init__(self):
                self._inner = HighsSolver()

            def solve(self, model):
                return self._inner.solve(model)

        parallel = PartitionedSolver(
            problem,
            SolveConfig(partitioning="smart", batch_size=30, workers=4, solver=OpaqueSolver()),
        )
        merged = parallel.solve()
        assert parallel.stats.workers_used == 1
        reference = PartitionedSolver(
            problem, SolveConfig(partitioning="smart", batch_size=30, workers=1)
        ).solve()
        assert merged.objective == reference.objective


class TestSinglePassRestriction:
    def _relation(self, side, label, keys):
        tuples = [
            CanonicalTuple(key=key, side=side, values={"a": key}, impact=float(i))
            for i, key in enumerate(keys)
        ]
        return CanonicalRelation(side, ("a",), tuples, label=label)

    def test_buckets_match_per_partition_filtering(self):
        left = self._relation(Side.LEFT, "T1", ["l0", "l1", "l2", "l3"])
        right = self._relation(Side.RIGHT, "T2", ["r0", "r1", "r2"])
        mapping = TupleMapping(
            [
                TupleMatch("l0", "r0", 0.9),
                TupleMatch("l1", "r0", 0.8),
                TupleMatch("l2", "r1", 0.7),
                TupleMatch("l3", "r2", 0.6),
                TupleMatch("l0", "r2", 0.5),  # cut across partitions
            ]
        )
        partitions = [
            TuplePartition(0, frozenset({"l0", "l1"}), frozenset({"r0"})),
            TuplePartition(1, frozenset({"l2", "l3"}), frozenset({"r1", "r2"})),
        ]

        class _Problem:
            canonical_left = left
            canonical_right = right

        _Problem.mapping = mapping
        lefts, rights, mappings = _restrict_by_partition(_Problem, partitions)

        for position, partition in enumerate(partitions):
            expected_left = [t.key for t in left.tuples if t.key in partition.left_keys]
            expected_right = [t.key for t in right.tuples if t.key in partition.right_keys]
            expected_matches = [
                m.pair
                for m in mapping
                if m.left_key in partition.left_keys and m.right_key in partition.right_keys
            ]
            assert [t.key for t in lefts[position].tuples] == expected_left
            assert [t.key for t in rights[position].tuples] == expected_right
            assert [m.pair for m in mappings[position]] == expected_matches
        # The cut match belongs to no partition.
        assert all(("l0", "r2") not in m.pairs() for m in mappings)


class TestScoringCaches:
    def test_priors_constants_match_recomputation(self):
        priors = Priors(alpha=0.9, beta=0.7)
        assert priors.removed == math.log(_clamp(1.0 - 0.9))
        assert priors.kept_unchanged == math.log(_clamp(0.9)) + math.log(_clamp(0.7))
        assert priors.kept_changed == math.log(_clamp(0.9)) + math.log(_clamp(1.0 - 0.7))

    def test_match_log_probability_memoized_and_correct(self):
        terms = MatchLogProbability.of(0.8)
        assert terms.selected == math.log(0.8)
        assert terms.rejected == math.log(1.0 - 0.8)
        assert MatchLogProbability.of(0.8) is terms  # cached instance

    def test_tuple_mapping_probability_index(self):
        mapping = TupleMapping([TupleMatch("a", "x", 0.9), TupleMatch("b", "y", 0.4)])
        assert mapping.probability("a", "x") == 0.9
        assert mapping.probability("a", "y") is None
        view = mapping.pairs()
        assert isinstance(view, frozenset)
        assert view is mapping.pairs()  # cached between mutations
        mapping.add(TupleMatch("c", "z", 0.5))
        assert ("c", "z") in mapping.pairs()


class TestBranchAndBoundVectorization:
    def _reference_most_fractional(self, solver, values, integral_indices):
        best_index = None
        best_distance = solver.integrality_tolerance
        for index in integral_indices:
            value = values[index]
            distance = abs(value - round(value))
            if distance > best_distance:
                best_distance = distance
                best_index = index
        return best_index

    def test_most_fractional_matches_scalar_reference(self):
        solver = BranchAndBoundSolver()
        rng = np.random.default_rng(7)
        for _ in range(25):
            values = rng.uniform(-2.0, 2.0, size=12)
            integral = sorted(rng.choice(12, size=6, replace=False).tolist())
            assert solver._most_fractional(values, integral) == self._reference_most_fractional(
                solver, values, integral
            )
        # All-integral relaxation: no branching variable.
        integral_values = np.array([1.0, 2.0, -3.0, 0.0])
        assert solver._most_fractional(integral_values, [0, 1, 2, 3]) is None
        assert solver._most_fractional(integral_values, []) is None

    def test_round_solution_matches_scalar_reference(self):
        solver = BranchAndBoundSolver()
        values = np.array([0.2, 1.5, 2.5, -0.49, 3.0])
        integral = [1, 2, 3]
        rounded = solver._round_solution(values, integral)
        expected = np.array(values, dtype=float)
        for index in integral:
            expected[index] = round(expected[index])
        assert np.array_equal(rounded, expected)
        # Non-integral positions untouched.
        assert rounded[0] == values[0] and rounded[4] == values[4]

"""Shared fixtures: the running example of Figure 1 and small generated pairs."""

from __future__ import annotations

import pytest

from repro import (
    Database,
    Priors,
    Scan,
    TupleMapping,
    TupleMatch,
    col,
    count_query,
    matching,
)
from repro.core.problem import build_problem
from repro.datasets.academic import AcademicConfig, generate_academic_pair
from repro.datasets.sql_catalog import figure1_databases
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_pair


@pytest.fixture()
def figure1_db1() -> Database:
    """Dataset D1 of Figure 1: one row per (program, degree)."""
    return figure1_databases()[0]


@pytest.fixture()
def figure1_db2() -> Database:
    """Dataset D2 of Figure 1: majors per university."""
    return figure1_databases()[1]


@pytest.fixture()
def figure1_queries():
    """Q1 and Q2 of Figure 1."""
    q1 = count_query("Q1", Scan("D1"), attribute="Program")
    q2 = count_query("Q2", Scan("D2"), predicate=(col("Univ") == "A"), attribute="Major")
    return q1, q2


@pytest.fixture()
def figure1_mapping() -> TupleMapping:
    """The initial probabilistic tuple mapping of Example 2 (canonical keys).

    Canonical tuples are ordered by first appearance: T1:0=Accounting, T1:1=CS,
    T1:2=ECE, T1:3=EE, T1:4=Management, T1:5=Design and similarly for T2 (with
    CSE at T2:1).
    """
    return TupleMapping(
        [
            TupleMatch("T1:0", "T2:0", 0.95),
            TupleMatch("T1:1", "T2:1", 0.9),
            TupleMatch("T1:2", "T2:2", 0.95),
            TupleMatch("T1:3", "T2:3", 0.95),
            TupleMatch("T1:4", "T2:4", 0.95),
            TupleMatch("T1:5", "T2:5", 0.95),
        ]
    )


@pytest.fixture()
def figure1_problem(figure1_db1, figure1_db2, figure1_queries, figure1_mapping):
    """The fully assembled EXP-3D problem for Q1 vs Q2 of Figure 1."""
    q1, q2 = figure1_queries
    return build_problem(
        q1,
        figure1_db1,
        q2,
        figure1_db2,
        attribute_matches=matching(("Program", "Major")),
        tuple_mapping=figure1_mapping,
        priors=Priors(0.9, 0.9),
    )


@pytest.fixture(scope="session")
def small_academic_pair():
    """A small academic dataset pair used by integration tests."""
    config = AcademicConfig(
        name="academic_small",
        matched_programs=30,
        many_to_one_programs=3,
        left_only_majors=6,
        right_only_programs=4,
        confusable_pairs=3,
        other_university_programs=10,
        seed=3,
    )
    return generate_academic_pair(config)


@pytest.fixture(scope="session")
def small_academic_problem(small_academic_pair):
    return small_academic_pair.build_problem()


@pytest.fixture(scope="session")
def small_synthetic_pair():
    return generate_synthetic_pair(
        SyntheticConfig(num_tuples=120, difference_ratio=0.2, vocabulary_size=300, seed=5)
    )

"""Golden before/after tests for each logical optimizer rewrite in isolation.

Every rule's output tree is also executed with the *naive* interpreter and
compared against the input tree's result -- the optimizer's contract is that
rewrites stay inside the interpreter's semantics (rows, order, lineage).
"""

from __future__ import annotations

import pytest

from repro.plan import infer_schema, optimize, plan_node
from repro.plan.physical import HashJoinExec, NestedLoopJoinExec, ProjectExec
from repro.relational.executor import Database, evaluate
from repro.relational.expressions import And, AttributeComparison, Comparison, IsNull, col
from repro.relational.query import (
    Aggregate,
    AggregateFunction,
    Difference,
    Join,
    Project,
    Scan,
    Select,
    Union,
)


@pytest.fixture()
def db() -> Database:
    database = Database("opt")
    database.add_records(
        "Movie",
        [
            {"m_id": 1, "title": "Alpha", "year": 1999, "gross": 10.0, "city": "Boston"},
            {"m_id": 2, "title": "Beta", "year": 1999, "gross": 5.0, "city": "Austin"},
            {"m_id": 3, "title": "Gamma", "year": 2001, "gross": 8.0, "city": None},
        ],
    )
    database.add_records(
        "Info",
        [
            {"m_id": 1, "kind": "genre", "city": "Boston"},
            {"m_id": 2, "kind": "genre", "city": "Austin"},
            {"m_id": None, "kind": "budget", "city": "Austin"},
        ],
    )
    return database


def _assert_exact(original, optimized, db):
    """The rewritten tree is naive-executable and fingerprint-identical."""
    assert evaluate(original, db).fingerprint() == evaluate(optimized, db).fingerprint()


class TestSelectRules:
    def test_merge_selects(self, db):
        tree = Select(Select(Scan("Movie"), col("year") == 1999), col("gross") > 6)
        optimized, log = optimize(tree, db)
        assert isinstance(optimized, Select)
        assert isinstance(optimized.child, Scan)
        assert isinstance(optimized.predicate, And)
        assert "merge_selects" in log.applied
        _assert_exact(tree, optimized, db)

    def test_pushdown_through_project(self, db):
        tree = Select(
            Project(Scan("Movie"), ("title", "year")), col("year") == 1999
        )
        optimized, log = optimize(tree, db)
        assert optimized == Project(
            Select(Scan("Movie"), Comparison("year", "=", 1999)),
            ("title", "year"),
        )
        assert any(entry.startswith("pushdown_select") for entry in log.applied)
        _assert_exact(tree, optimized, db)

    def test_no_pushdown_below_projection_missing_attribute(self, db):
        # ``gross`` is projected away: above the projection the comparison
        # sees NULL (false), below it would see real values -- not exact.
        tree = Select(Project(Scan("Movie"), ("title",)), col("gross") > 6)
        optimized, log = optimize(tree, db)
        assert optimized == tree
        assert log.applied == []
        _assert_exact(tree, optimized, db)

    def test_pushdown_through_union(self, db):
        member = Project(Scan("Movie"), ("title", "year"))
        tree = Select(Union((member, member)), col("year") == 1999)
        optimized, _ = optimize(tree, db)
        assert isinstance(optimized, Union)
        for pushed in optimized.inputs:
            assert isinstance(pushed, Project)  # and pushed further down
        _assert_exact(tree, optimized, db)

    def test_no_pushdown_for_opaque_callable_predicate(self, db):
        opaque = lambda record: record["year"] == 1999  # noqa: E731
        tree = Select(Project(Scan("Movie"), ("title", "year")), opaque)
        optimized, log = optimize(tree, db)
        assert optimized == tree
        assert log.applied == []


class TestJoinRules:
    def test_pushdown_into_join_sides(self, db):
        join = Join(Scan("Movie"), Scan("Info"), on=(("m_id", "m_id"),))
        # `city_r` is Info's renamed column; the conjunct must be pushed to
        # the right child under its original name `city`.
        tree = Select(join, (col("year") == 1999) & (col("city_r") == "Austin"))
        optimized, log = optimize(tree, db)
        assert isinstance(optimized, Join)
        assert optimized.left == Select(Scan("Movie"), Comparison("year", "=", 1999))
        assert optimized.right == Select(Scan("Info"), Comparison("city", "=", "Austin"))
        assert log.applied.count("pushdown_select(join-left)") == 1
        assert log.applied.count("pushdown_select(join-right)") == 1
        _assert_exact(tree, optimized, db)

    def test_equi_key_extraction_from_where(self, db):
        tree = Select(
            Join(Scan("Movie"), Scan("Info")),
            AttributeComparison("m_id", "=", "m_id_r"),
        )
        optimized, log = optimize(tree, db)
        # The promoted first key gets an IS NOT NULL guard (the interpreter's
        # first on-pair matches NULL = NULL, the original condition did not),
        # which the next pushdown pass then sinks onto the left input.
        assert optimized == Join(
            Select(Scan("Movie"), IsNull("m_id", negate=True)),
            Scan("Info"),
            on=(("m_id", "m_id"),),
        )
        assert "extract_equi_keys(from-where)" in log.applied
        _assert_exact(tree, optimized, db)

    def test_equi_key_extraction_from_condition(self, db):
        tree = Join(
            Scan("Movie"),
            Scan("Info"),
            on=(("m_id", "m_id"),),
            condition=AttributeComparison("city", "=", "city_r"),
        )
        optimized, _ = optimize(tree, db)
        # Appending to a non-empty key list needs no guard: non-first pairs
        # are null-rejecting in the interpreter, matching the condition.
        assert isinstance(optimized, Join)
        assert optimized.on == (("m_id", "m_id"), ("city", "city"))
        assert optimized.condition is None
        _assert_exact(tree, optimized, db)

    def test_non_equi_condition_is_left_alone(self, db):
        tree = Join(
            Scan("Movie"),
            Scan("Info"),
            condition=AttributeComparison("m_id", "<", "m_id_r"),
        )
        optimized, log = optimize(tree, db)
        assert optimized == tree
        assert log.applied == []
        # ... and the physical plan falls back to a nested loop.
        plan = plan_node(tree, db)
        assert isinstance(plan.root, NestedLoopJoinExec)
        _assert_exact(tree, optimized, db)

    def test_extracted_keys_lower_to_hash_join(self, db):
        tree = Select(
            Join(Scan("Movie"), Scan("Info")),
            AttributeComparison("m_id", "=", "m_id_r"),
        )
        plan = plan_node(tree, db)
        joins = [op for op in plan.operators if isinstance(op, HashJoinExec)]
        assert len(joins) == 1
        assert plan.execute().fingerprint() == evaluate(tree, db).fingerprint()


class TestProjectionPruning:
    def test_aggregate_over_join_prunes_scans(self, db):
        tree = Aggregate(
            Join(Scan("Movie"), Scan("Info"), on=(("m_id", "m_id"),)),
            AggregateFunction.SUM,
            "gross",
        )
        optimized, log = optimize(tree, db)
        join = optimized.child
        assert isinstance(join.left, Project)
        assert join.left.attributes == ("m_id", "gross")
        assert not join.left.distinct
        assert isinstance(join.right, Project)
        assert join.right.attributes == ("m_id",)
        assert any(entry.startswith("prune_projections") for entry in log.applied)
        _assert_exact(tree, optimized, db)

    def test_difference_right_side_prunes_to_keys(self, db):
        tree = Difference(Scan("Movie"), Select(Scan("Movie"), col("year") == 1999), on=("m_id",))
        optimized, _ = optimize(tree, db)
        assert isinstance(optimized.right, Project)
        assert optimized.right.attributes == ("m_id",)
        # The left side keeps the full schema: it *is* the output.
        assert infer_schema(optimized, db).names == infer_schema(tree, db).names
        _assert_exact(tree, optimized, db)

    def test_no_pruning_when_every_column_is_needed(self, db):
        # A bare join at the root: the full concatenated row is the output,
        # so pruning has nothing to drop.
        tree = Join(Scan("Movie"), Scan("Info"), on=(("m_id", "m_id"),))
        optimized, log = optimize(tree, db)
        assert optimized == tree
        assert log.applied == []

    def test_pruning_never_changes_rename_disambiguation(self, db):
        # `city` exists on both sides and the aggregate reads the *renamed*
        # right copy; dropping the left `city` would rename `city_r` back to
        # `city` -- the optimizer must keep the tree rename-stable.
        tree = Aggregate(
            Join(Scan("Movie"), Scan("Info"), on=(("m_id", "m_id"),)),
            AggregateFunction.COUNT,
            "city_r",
        )
        optimized, _ = optimize(tree, db)
        assert "city_r" in infer_schema(optimized.child, db)
        _assert_exact(tree, optimized, db)


class TestPhysicalGoldens:
    def test_build_side_follows_estimates(self, db):
        big = Database("big")
        big.add_records("L", [{"k": i, "pad": i} for i in range(50)])
        big.add_records("R", [{"k": i % 5} for i in range(5)])
        plan = plan_node(Join(Scan("L"), Scan("R"), on=(("k", "k"),)), big)
        assert isinstance(plan.root, HashJoinExec)
        assert not plan.root.build_left  # right side is smaller: build right
        swapped = plan_node(Join(Scan("R"), Scan("L"), on=(("k", "k"),)), big)
        assert swapped.root.build_left  # now the left side is smaller

    def test_common_subplan_is_shared(self, db):
        branch = Select(Scan("Movie"), col("year") == 1999)
        tree = Union((branch, branch))
        plan = plan_node(tree, db)
        assert plan.shared_subplans >= 1
        assert any(op.shared for op in plan.operators)
        assert plan.execute().fingerprint() == evaluate(tree, db).fingerprint()

    def test_distinct_projection_lowered_with_distinct_exec(self, db):
        tree = Project(Scan("Movie"), ("year",), distinct=True)
        plan = plan_node(tree, db)
        assert plan.root.name == "DistinctExec"
        assert isinstance(plan.root.children[0], ProjectExec)
        assert plan.execute().fingerprint() == evaluate(tree, db).fingerprint()

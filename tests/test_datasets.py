"""Tests for the dataset generators and their gold standards."""

import pytest

from repro.datasets.academic import AcademicConfig, generate_academic_pair, osu_config, umass_config
from repro.datasets.corruption import CorruptionConfig, inject_errors
from repro.datasets.gold import build_gold_from_entities
from repro.datasets.imdb import IMDbConfig, generate_imdb_workload
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_pair
from repro.relational.executor import scalar_result


class TestCorruption:
    def test_rate_zero_changes_nothing(self):
        records = [{"a": 1, "b": "hello world"} for _ in range(20)]
        corrupted, report = inject_errors(records, CorruptionConfig(rate=0.0))
        assert corrupted == records
        assert report.count == 0

    def test_rate_one_changes_everything(self):
        records = [{"a": 10} for _ in range(20)]
        corrupted, report = inject_errors(records, CorruptionConfig(rate=1.0, attributes=("a",)))
        assert report.count == 20
        assert all(row["a"] != 10 for row in corrupted)

    def test_originals_not_mutated(self):
        records = [{"a": 10}]
        inject_errors(records, CorruptionConfig(rate=1.0, attributes=("a",)))
        assert records[0]["a"] == 10

    def test_report_records_cells(self):
        records = [{"a": 10, "b": "x y"} for _ in range(10)]
        _, report = inject_errors(records, CorruptionConfig(rate=1.0, attributes=("a", "b")))
        assert report.rows() <= set(range(10))
        assert all(len(cell) == 4 for cell in report.cells)

    def test_string_corruption_changes_value(self):
        records = [{"s": "alpha beta gamma"} for _ in range(5)]
        corrupted, report = inject_errors(records, CorruptionConfig(rate=1.0, attributes=("s",)))
        assert report.count == 5
        assert all(row["s"] != "alpha beta gamma" for row in corrupted)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            CorruptionConfig(rate=1.5)


class TestAcademicGenerator:
    def test_umass_sizes_match_figure4(self):
        pair = generate_academic_pair(umass_config())
        problem, gold = pair.build_problem()
        # Figure 4 reports |P| = 113/81 and |T| = 95/81 for UMass vs NCES.
        assert len(problem.provenance_right) == 81
        assert len(problem.canonical_right) == 81
        assert len(problem.canonical_left) == 95
        assert 105 <= len(problem.provenance_left) <= 135
        assert gold.num_explanations > 0

    def test_osu_sizes_match_figure4(self):
        pair = generate_academic_pair(osu_config())
        problem, _ = pair.build_problem()
        assert len(problem.canonical_left) == 206
        assert len(problem.canonical_right) in (152, 153)

    def test_queries_disagree(self):
        pair = generate_academic_pair(umass_config())
        left = scalar_result(pair.query_left, pair.db_left)
        right = scalar_result(pair.query_right, pair.db_right)
        assert left != right

    def test_deterministic(self):
        first = generate_academic_pair(umass_config())
        second = generate_academic_pair(umass_config())
        assert first.db_left.relation("Major").as_dicts() == second.db_left.relation("Major").as_dicts()
        assert first.db_right.relation("Stats").as_dicts() == second.db_right.relation("Stats").as_dicts()

    def test_gold_consistency_with_impacts(self, small_academic_pair):
        problem, gold = small_academic_pair.build_problem()
        # Every gold evidence pair refers to existing canonical tuples.
        left_keys = set(problem.canonical_left.keys())
        right_keys = set(problem.canonical_right.keys())
        for left_key, right_key in gold.evidence_pairs:
            assert left_key in left_keys and right_key in right_keys
        # Provenance gold never overlaps with matched tuples.
        matched_left = {pair[0] for pair in gold.evidence_pairs}
        for side, key in gold.provenance:
            if side == "L":
                assert key not in matched_left

    def test_other_universities_filtered_out(self):
        pair = generate_academic_pair(umass_config())
        problem, _ = pair.build_problem()
        # The right provenance only contains the target university's programs.
        assert len(problem.provenance_right) < len(pair.db_right.relation("Stats"))

    def test_custom_config_scales(self):
        config = AcademicConfig(
            name="tiny", matched_programs=10, many_to_one_programs=1,
            left_only_majors=2, right_only_programs=2, confusable_pairs=1,
            other_university_programs=5, seed=1,
        )
        problem, gold = generate_academic_pair(config).build_problem()
        assert len(problem.canonical_left) == 13
        assert len(problem.canonical_right) == 12
        assert gold.num_explanations >= 2


class TestSyntheticGenerator:
    def test_gold_counts_track_difference_ratio(self):
        config = SyntheticConfig(num_tuples=200, difference_ratio=0.2, vocabulary_size=400, seed=9)
        pair = generate_synthetic_pair(config)
        problem, gold = pair.build_problem()
        dropped = int(round(config.num_tuples * config.difference_ratio))
        assert len(gold.provenance) == dropped
        # Corrupted tuples form value-explanation components (two identities each).
        assert len(gold.value) >= dropped

    def test_zero_difference_ratio_agrees(self):
        config = SyntheticConfig(num_tuples=50, difference_ratio=0.0, vocabulary_size=200, seed=2)
        pair = generate_synthetic_pair(config)
        left = scalar_result(pair.query_left, pair.db_left)
        right = scalar_result(pair.query_right, pair.db_right)
        assert left == right

    def test_vocabulary_size_controls_match_density(self):
        small_vocab = generate_synthetic_pair(
            SyntheticConfig(num_tuples=100, difference_ratio=0.2, vocabulary_size=30, seed=3)
        )
        large_vocab = generate_synthetic_pair(
            SyntheticConfig(num_tuples=100, difference_ratio=0.2, vocabulary_size=2000, seed=3)
        )
        dense, _ = small_vocab.build_problem()
        sparse, _ = large_vocab.build_problem()
        assert len(dense.mapping) > len(sparse.mapping)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            SyntheticConfig(num_tuples=0)
        with pytest.raises(ValueError):
            SyntheticConfig(difference_ratio=1.0)
        with pytest.raises(ValueError):
            SyntheticConfig(vocabulary_size=3)

    def test_deterministic(self):
        config = SyntheticConfig(num_tuples=50, seed=11)
        assert (
            generate_synthetic_pair(config).db_left.relation("Table").as_dicts()
            == generate_synthetic_pair(config).db_left.relation("Table").as_dicts()
        )


class TestIMDbGenerator:
    @pytest.fixture(scope="class")
    def workload(self):
        return generate_imdb_workload(IMDbConfig(num_movies=120, num_people=150, seed=23))

    def test_views_have_expected_relations(self, workload):
        assert {"Movie", "Actor", "Director", "MovieActor", "MovieDirector"} <= set(
            workload.db_view1.relations()
        )
        assert {"Movie", "MovieInfo", "Person", "MoviePerson"} <= set(workload.db_view2.relations())

    def test_view1_loses_genres(self, workload):
        """Migration loss: view 1 stores one genre per movie, view 2 stores all."""
        view1_genres = len(workload.db_view1.relation("Movie"))
        view2_genre_rows = sum(
            1 for row in workload.db_view2.relation("MovieInfo").as_dicts() if row["info_type"] == "genre"
        )
        assert view2_genre_rows > view1_genres

    def test_years_with_movies(self, workload):
        years = workload.years_with_movies(minimum=2)
        assert years
        assert all(workload.config.year_range[0] <= year <= workload.config.year_range[1] for year in years)

    def test_unknown_template_rejected(self, workload):
        with pytest.raises(ValueError):
            workload.pair("Q99", 2000)

    @pytest.mark.parametrize("template", ["Q3", "Q5", "Q7"])
    def test_movie_templates_build_and_have_gold(self, workload, template):
        # Pick a year for which the template has provenance on both sides
        # (sparse templates like "comedies in <year>" can be empty for some years).
        for year in workload.years_with_movies(minimum=3):
            pair = workload.pair(template, year)
            problem, gold = pair.build_problem()
            if len(problem.canonical_left) and len(problem.canonical_right):
                break
        assert len(problem.canonical_left) > 0
        assert len(problem.canonical_right) > 0
        assert len(gold.evidence_pairs) > 0

    def test_person_template_builds(self, workload):
        pair = workload.pair("Q10", "Comedy")
        problem, gold = pair.build_problem()
        assert len(problem.canonical_left) > 0
        assert gold.evidence_pairs

    def test_gold_pairs_share_entities(self, workload):
        year = workload.years_with_movies(minimum=3)[1]
        pair = workload.pair("Q3", year)
        problem, gold = pair.build_problem()
        # Rebuilding the gold from the same entity maps is deterministic.
        again = build_gold_from_entities(
            problem.canonical_left,
            problem.canonical_right,
            pair.entity_ids_left,
            pair.entity_ids_right,
        )
        assert again.evidence_pairs == gold.evidence_pairs
        assert again.provenance == gold.provenance

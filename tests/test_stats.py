"""The ANALYZE subsystem: statistics collection, caching and the cost model."""

from __future__ import annotations

import json

import pytest

from repro.relational.executor import Database
from repro.relational.expressions import Comparison, IsNull, Membership, col
from repro.relational.query import (
    Aggregate,
    AggregateFunction,
    Join,
    Project,
    Scan,
    Select,
    count_query,
)
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, DataType, Schema
from repro.stats import (
    CostModel,
    DatabaseStats,
    StatsCatalog,
    analyze_database,
    analyze_relation,
    equi_depth_histogram,
)
from repro.plan import estimate_rows, plan_query


def _db(rows: int = 40) -> Database:
    db = Database("stats_test")
    db.add_records(
        "T",
        [
            {
                "k": index % 10,
                "v": float(index),
                "tag": ("a" if index % 2 else "b") if index % 5 else None,
            }
            for index in range(rows)
        ],
    )
    db.add_records("D", [{"k": index, "name": f"n{index}"} for index in range(10)])
    return db


class TestAnalyzeRelation:
    def test_row_and_column_counters(self):
        db = _db()
        stats = analyze_relation(db.relation("T"))
        assert stats.row_count == 40
        k = stats.column("k")
        assert k.distinct == 10
        assert k.null_count == 0
        assert (k.min_value, k.max_value) == (0, 9)
        tag = stats.column("tag")
        assert tag.null_count == 8
        assert tag.null_fraction == pytest.approx(0.2)
        assert tag.distinct == 2

    def test_histogram_is_equi_depth(self):
        histogram = equi_depth_histogram(list(range(100)), buckets=4)
        assert len(histogram.bounds) == 5
        assert histogram.bounds[0] == 0 and histogram.bounds[-1] == 99
        # The median boundary splits the mass in half.
        assert histogram.fraction_below(histogram.bounds[2], inclusive=True) == (
            pytest.approx(0.5, abs=0.2)
        )
        assert histogram.fraction_below(-1, inclusive=True) == 0.0
        assert histogram.fraction_below(1000, inclusive=True) == 1.0

    def test_histogram_incomparable_value_returns_none(self):
        histogram = equi_depth_histogram(list(range(10)))
        assert histogram.fraction_below("zzz", inclusive=True) is None

    def test_zero_distinct_all_null_column(self):
        """An all-NULL column: no histogram, full null fraction, no crash."""
        relation = Relation.from_records(
            [{"x": None, "y": 1}, {"x": None, "y": 2}],
            Schema([Attribute("x", DataType.STRING), Attribute("y", DataType.INTEGER)]),
            name="N",
        )
        stats = analyze_relation(relation)
        x = stats.column("x")
        assert x.distinct == 0
        assert x.null_fraction == 1.0
        assert x.histogram is None
        json.dumps(stats.to_dict())  # JSON-safe end to end

    def test_empty_relation(self):
        relation = Relation(Schema([Attribute("x", DataType.INTEGER)]), [], name="E")
        stats = analyze_relation(relation)
        assert stats.row_count == 0
        assert stats.column("x").null_fraction == 0.0
        assert stats.column("x").histogram is None


class TestStatsCatalog:
    def test_caches_by_content_fingerprint(self):
        db = _db()
        catalog = StatsCatalog()
        first = catalog.relation_stats(db.relation("T"))
        second = catalog.relation_stats(db.relation("T"))
        assert first is second
        assert (catalog.hits, catalog.misses) == (1, 1)
        # Identical content registered under another database still hits.
        other = Database("other")
        other.add(db.relation("T"))
        catalog.relation_stats(other.relation("T"))
        assert catalog.hits == 2

    def test_analyze_database_via_catalog(self):
        db = _db()
        catalog = StatsCatalog(buckets=4)
        stats = analyze_database(db, catalog=catalog)
        assert stats.buckets == 4
        assert set(stats.relations()) == {"T", "D"}


class TestDatabaseAnalyze:
    def test_analyze_attaches_statistics(self):
        db = _db()
        assert db.statistics is None
        stats = db.analyze()
        assert db.statistics is stats
        assert stats.relation("T").row_count == 40

    def test_add_invalidates_stale_entry(self):
        db = _db()
        db.analyze()
        db.add_records("T", [{"k": 1, "v": 1.0, "tag": "x"}])
        assert db.statistics.relation("T") is None  # stale entry dropped
        assert db.statistics.relation("D") is not None

    def test_fingerprint_tracks_content(self):
        db = _db()
        first = db.analyze().fingerprint()
        assert db.analyze().fingerprint() == first
        db.add_records("X", [{"a": 1}])
        assert db.analyze().fingerprint() != first
        json.dumps(db.statistics.to_dict())


class TestCostModel:
    def test_scan_estimates_are_exact_with_stats(self):
        db = _db()
        db.analyze()
        assert CostModel(db).estimated_rows(Scan("T")) == 40

    def test_heuristics_without_stats_match_pr4_planner(self):
        db = _db()
        cost = CostModel(db)
        assert not cost.has_statistics
        assert cost.estimated_rows(Scan("T")) == 40
        assert cost.estimated_rows(Select(Scan("T"), col("k") == 1)) == 13  # 40 * 0.33
        join = Join(Scan("T"), Scan("D"), on=(("k", "k"),))
        assert cost.estimated_rows(join) == 40  # max(left, right)
        assert cost.estimated_rows(Aggregate(Scan("T"), AggregateFunction.COUNT)) == 1

    def test_equality_selectivity_uses_distinct_counts(self):
        db = _db()
        db.analyze()
        cost = CostModel(db)
        estimate = cost.estimated_rows(Select(Scan("T"), col("k") == 3))
        assert estimate == 4  # 40 rows / 10 distinct values

    def test_range_selectivity_uses_histograms(self):
        db = _db()
        db.analyze()
        cost = CostModel(db)
        low = cost.estimated_rows(Select(Scan("T"), Comparison("v", "<", 4.0)))
        high = cost.estimated_rows(Select(Scan("T"), Comparison("v", "<", 36.0)))
        assert low < high
        assert 0 < low < 12
        assert 28 < high <= 40

    def test_null_fraction_drives_is_null(self):
        db = _db()
        db.analyze()
        cost = CostModel(db)
        null_rows = cost.estimated_rows(Select(Scan("T"), IsNull("tag")))
        assert null_rows == 8
        not_null = cost.estimated_rows(Select(Scan("T"), IsNull("tag", negate=True)))
        assert not_null == 32

    def test_membership_selectivity(self):
        db = _db()
        db.analyze()
        cost = CostModel(db)
        profiles = cost.profiles(Scan("T"))
        selectivity = cost.predicate_selectivity(Membership("k", (1, 2)), profiles)
        assert selectivity == pytest.approx(0.2)

    def test_join_estimate_uses_ndv(self):
        db = _db()
        db.analyze()
        cost = CostModel(db)
        join = Join(Scan("T"), Scan("D"), on=(("k", "k"),))
        # 40 * 10 / max(10, 10) = 40
        assert cost.estimated_rows(join) == 40

    def test_distinct_projection_bounded_by_ndv(self):
        db = _db()
        db.analyze()
        cost = CostModel(db)
        assert cost.estimated_rows(Project(Scan("T"), ("k",), distinct=True)) == 10

    def test_public_estimate_rows_picks_up_statistics(self):
        db = _db()
        before = estimate_rows(Select(Scan("T"), col("k") == 3), db)
        db.analyze()
        after = estimate_rows(Select(Scan("T"), col("k") == 3), db)
        assert (before, after) == (13, 4)


class TestExplainQError:
    def test_q_error_reported_per_operator(self):
        db = _db()
        db.analyze()
        query = count_query("c", Scan("T"), predicate=(col("k") == 3), attribute="k")
        payload = query.explain_plan(db, run=True).to_dict()
        assert payload["cost_model"] == "statistics"

        def walk(node):
            yield node
            for child in node.get("children", ()):
                yield from walk(child)

        nodes = list(walk(payload["plan"]))
        assert all("q_error" in node for node in nodes)
        scan = next(node for node in nodes if node["operator"] == "ScanExec")
        assert scan["q_error"] == 1.0  # scans estimate exactly with stats
        text = query.explain_plan(db, run=True).describe()
        assert "q=" in text and "cost model: statistics" in text

    def test_heuristic_plans_say_so(self):
        db = _db()
        query = count_query("c", Scan("T"), attribute="k")
        payload = query.explain_plan(db, run=False).to_dict()
        assert payload["cost_model"] == "heuristic"

"""Unit tests for repro.relational.expressions."""

import pytest

from repro.relational.errors import ExecutionError
from repro.relational.expressions import (
    And,
    AttributeComparison,
    Comparison,
    Contains,
    IsNull,
    Membership,
    Not,
    Or,
    TruePredicate,
    col,
)


RECORD = {"name": "Computer Science", "year": 1999, "gross": None, "country": "USA"}


class TestComparison:
    def test_equality(self):
        assert Comparison("country", "=", "USA")(RECORD)
        assert not Comparison("country", "=", "UK")(RECORD)

    def test_inequality_operators(self):
        assert Comparison("year", ">", 1990)(RECORD)
        assert Comparison("year", "<=", 1999)(RECORD)
        assert not Comparison("year", "<", 1999)(RECORD)
        assert Comparison("year", "!=", 2000)(RECORD)

    def test_null_comparisons_are_false(self):
        assert not Comparison("gross", ">", 0)(RECORD)
        assert not Comparison("missing", "=", 1)(RECORD)

    def test_unsupported_operator(self):
        with pytest.raises(ExecutionError):
            Comparison("year", "~", 1)(RECORD)

    def test_type_mismatch_raises(self):
        with pytest.raises(ExecutionError):
            Comparison("name", "<", 5)(RECORD)

    def test_attributes(self):
        assert Comparison("year", "=", 1999).attributes() == {"year"}


class TestCombinators:
    def test_and(self):
        predicate = And(Comparison("year", "=", 1999), Comparison("country", "=", "USA"))
        assert predicate(RECORD)

    def test_and_short_circuit_false(self):
        predicate = And(Comparison("year", "=", 1998), Comparison("country", "=", "USA"))
        assert not predicate(RECORD)

    def test_or(self):
        predicate = Or(Comparison("year", "=", 1998), Comparison("country", "=", "USA"))
        assert predicate(RECORD)

    def test_not(self):
        assert Not(Comparison("year", "=", 1998))(RECORD)

    def test_operator_overloads(self):
        predicate = (col("year") == 1999) & ~(col("country") == "UK")
        assert predicate(RECORD)
        predicate = (col("year") == 1998) | (col("country") == "USA")
        assert predicate(RECORD)

    def test_attributes_union(self):
        predicate = And(Comparison("a", "=", 1), Or(Comparison("b", "=", 2), Comparison("c", "=", 3)))
        assert predicate.attributes() == {"a", "b", "c"}

    def test_true_predicate(self):
        assert TruePredicate()({})


class TestSpecialPredicates:
    def test_membership(self):
        assert Membership("country", ("USA", "UK"))(RECORD)
        assert not Membership("country", ("France",))(RECORD)
        assert not Membership("gross", (None, 1))(RECORD)

    def test_contains_case_insensitive(self):
        assert Contains("name", "computer")(RECORD)
        assert not Contains("name", "biology")(RECORD)

    def test_contains_case_sensitive(self):
        assert not Contains("name", "computer", case_sensitive=True)(RECORD)

    def test_contains_null(self):
        assert not Contains("gross", "x")(RECORD)

    def test_is_null(self):
        assert IsNull("gross")(RECORD)
        assert not IsNull("year")(RECORD)
        assert IsNull("year", negate=True)(RECORD)

    def test_attribute_comparison(self):
        record = {"a": 5, "b": 5, "c": 7}
        assert AttributeComparison("a", "=", "b")(record)
        assert not AttributeComparison("a", "=", "c")(record)
        assert AttributeComparison("c", ">", "a")(record)


class TestColBuilder:
    def test_col_comparisons(self):
        assert (col("year") >= 1999)(RECORD)
        assert (col("year") <= 1999)(RECORD)
        assert (col("year") > 1998)(RECORD)
        assert (col("year") < 2000)(RECORD)
        assert (col("year") != 1998)(RECORD)

    def test_col_isin_and_contains(self):
        assert col("country").isin(["USA"])(RECORD)
        assert col("name").contains("science")(RECORD)

    def test_col_null_helpers(self):
        assert col("gross").is_null()(RECORD)
        assert col("year").not_null()(RECORD)

    def test_col_equals_column(self):
        predicate = col("a").equals_column(col("b"))
        assert predicate({"a": 1, "b": 1})
        assert not predicate({"a": 1, "b": 2})

"""The live-update subsystem: deltas, incremental ANALYZE, delta-aware caches.

Four layers under test, mirroring :mod:`repro.live`'s design:

* rolling relation fingerprints (bit-identical to a from-scratch rehash);
* typed :class:`Delta` emission and copy-on-write batch application;
* incremental statistics merging against the full-rescan oracle;
* the service's ``ingest`` path -- eviction vs. rewiring of cached
  artifacts, idempotent delta ids, conflict detection -- with byte-identity
  to a cold rebuild as the end-to-end contract.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.live import (
    Delta,
    DeltaConflictError,
    DeltaError,
    RowChange,
    apply_changes,
    apply_changes_copy,
    delta_affects,
    is_monotone,
    validate_change_specs,
)
from repro.relational.errors import UnknownRelationError
from repro.relational.executor import Database
from repro.relational.expressions import col
from repro.relational.query import Difference, Query, Scan, count_query
from repro.relational.relation import Relation
from repro.service.cache import ArtifactCache
from repro.service.engine import ExplainRequest, ExplainService
from repro.stats.statistics import (
    DRIFT_THRESHOLD,
    KMVSketch,
    StatsCatalog,
    analyze_relation,
    merge_relation_stats,
)


def _relation(name: str = "T") -> Relation:
    return Relation.from_records(
        [
            {"Program": "Accounting", "Score": 10},
            {"Program": "CS", "Score": 20},
            {"Program": "CS", "Score": None},
            {"Program": "Design", "Score": 40},
        ],
        name=name,
    )


# ---------------------------------------------------------------------------
# Rolling fingerprints
# ---------------------------------------------------------------------------

class TestRollingFingerprint:
    def test_append_rolls_and_matches_from_scratch(self):
        relation = _relation()
        relation.insert({"Program": "EE", "Score": 50})
        rebuilt = Relation(relation.schema, relation.rows, name=relation.name)
        assert relation.fingerprint() == rebuilt.fingerprint()

    def test_mid_table_mutation_rebuilds_identically(self):
        relation = _relation()
        relation.update(1, {"Score": 99})
        relation.delete(0)
        rebuilt = Relation(relation.schema, relation.rows, name=relation.name)
        assert relation.fingerprint() == rebuilt.fingerprint()

    def test_fingerprint_is_memoized_between_mutations(self):
        # Satellite: fingerprint() must not rehash per call.  The memo is
        # the very same string object until a mutation invalidates it.
        relation = _relation()
        first = relation.fingerprint()
        assert relation.fingerprint() is first
        relation.insert({"Program": "EE", "Score": 50})
        second = relation.fingerprint()
        assert second != first
        assert relation.fingerprint() is second

    def test_copy_clones_rolling_state(self):
        relation = _relation()
        relation.fingerprint()
        clone = relation.copy()
        clone.insert({"Program": "EE", "Score": 50})
        # The clone diverges; the original's memo is untouched.
        assert clone.fingerprint() != relation.fingerprint()
        rebuilt = Relation(clone.schema, clone.rows, name=clone.name)
        assert clone.fingerprint() == rebuilt.fingerprint()

    def test_delete_insert_never_aliases_an_old_row_id(self):
        relation = _relation()
        relation.delete(3)
        delta = relation.insert({"Program": "Design", "Score": 40})
        (change,) = delta.changes
        assert change.row_id == "T:4"  # monotonic counter, not len(rows)


# ---------------------------------------------------------------------------
# Delta emission and application
# ---------------------------------------------------------------------------

class TestDeltaEmission:
    def test_insert_update_delete_carry_before_and_after(self):
        relation = _relation()
        inserted = relation.insert({"Program": "EE", "Score": 50})
        assert inserted.counts() == {"insert": 1, "update": 0, "delete": 0}
        (change,) = inserted.changes
        assert change.before is None and change.after == ("EE", 50)

        updated = relation.update("T:0", {"Score": 11})
        (change,) = updated.changes
        assert change.before == ("Accounting", 10)
        assert change.after == ("Accounting", 11)
        assert updated.base_fingerprint == inserted.new_fingerprint

        deleted = relation.delete("T:1")
        (change,) = deleted.changes
        assert change.op == "delete" and change.after is None
        assert deleted.new_fingerprint == relation.fingerprint()

    def test_noop_update_is_rejected(self):
        relation = _relation()
        with pytest.raises(DeltaError):
            relation.update(0, {"Score": 10})

    def test_delta_id_is_deterministic_and_content_addressed(self):
        specs = [{"op": "insert", "record": {"Program": "EE", "Score": 50}}]
        _, first = apply_changes_copy(_relation(), specs)
        _, second = apply_changes_copy(_relation(), specs)
        assert first.delta_id == second.delta_id
        _, other = apply_changes_copy(
            _relation(), [{"op": "insert", "record": {"Program": "EE", "Score": 51}}]
        )
        assert other.delta_id != first.delta_id

    def test_merge_refuses_cross_relation_batches(self):
        a = _relation("A").insert({"Program": "X", "Score": 1})
        b = _relation("B").insert({"Program": "X", "Score": 1})
        with pytest.raises(DeltaError):
            Delta.merge([a, b])
        with pytest.raises(DeltaError):
            Delta.merge([])

    def test_deletes_only_and_id_sets(self):
        relation = _relation()
        delta = apply_changes(
            relation, [{"op": "delete", "row": 0}, {"op": "delete", "row": 0}]
        )
        assert delta.deletes_only
        assert delta.deleted_ids() == frozenset({"T:0", "T:1"})
        assert delta.touched_ids() == delta.deleted_ids()


class TestChangeSpecs:
    def test_shape_errors_carry_json_pointer_paths(self):
        with pytest.raises(DeltaError) as excinfo:
            validate_change_specs([])
        assert excinfo.value.path == "/changes"
        with pytest.raises(DeltaError) as excinfo:
            validate_change_specs([{"op": "upsert"}])
        assert excinfo.value.path == "/changes/0/op"
        with pytest.raises(DeltaError) as excinfo:
            validate_change_specs([{"op": "insert"}])
        assert excinfo.value.path == "/changes/0/record"
        with pytest.raises(DeltaError) as excinfo:
            validate_change_specs([{"op": "delete"}])
        assert excinfo.value.path == "/changes/0/row_id"

    def test_row_id_and_position_addressing_are_equivalent(self):
        by_position = _relation()
        by_id = _relation()
        apply_changes(by_position, [{"op": "update", "row": 2, "record": {"Score": 30}}])
        apply_changes(by_id, [{"op": "update", "row_id": "T:2", "record": {"Score": 30}}])
        assert by_position.fingerprint() == by_id.fingerprint()

    def test_unknown_column_and_bad_row_surface_as_errors(self):
        relation = _relation()
        with pytest.raises(Exception):
            apply_changes(relation, [{"op": "insert", "record": {"Nope": 1}}])
        with pytest.raises(DeltaError):
            apply_changes(relation, [{"op": "delete", "row": 99}])


class TestCopyOnWrite:
    def test_input_relation_is_never_touched(self):
        relation = _relation()
        base_fp = relation.fingerprint()
        new_relation, delta = apply_changes_copy(
            relation,
            [
                {"op": "insert", "record": {"Program": "EE", "Score": 50}},
                {"op": "delete", "row": 0},
            ],
        )
        assert relation.fingerprint() == base_fp == delta.base_fingerprint
        assert len(relation) == 4 and len(new_relation) == 4
        assert new_relation.fingerprint() == delta.new_fingerprint != base_fp

    def test_mid_batch_failure_leaves_input_intact(self):
        relation = _relation()
        base_fp = relation.fingerprint()
        with pytest.raises(DeltaError):
            apply_changes_copy(
                relation,
                [
                    {"op": "insert", "record": {"Program": "EE", "Score": 50}},
                    {"op": "delete", "row": 99},  # fails after the insert
                ],
            )
        assert relation.fingerprint() == base_fp
        assert len(relation) == 4

    def test_expect_fingerprint_conflict(self):
        relation = _relation()
        with pytest.raises(DeltaConflictError):
            apply_changes(
                relation,
                [{"op": "delete", "row": 0}],
                expect_fingerprint="stale" * 16,
            )
        assert len(relation) == 4  # checked before anything mutates


# ---------------------------------------------------------------------------
# Affectedness rules
# ---------------------------------------------------------------------------

def _provenance_stub(*lineages):
    return SimpleNamespace(
        tuples=[SimpleNamespace(lineage=frozenset(ids)) for ids in lineages]
    )


class TestDeltaAffects:
    def _delete_delta(self, relation_name: str, *row_ids: str) -> Delta:
        changes = [
            RowChange.make("delete", row_id, before=("x",), after=None)
            for row_id in row_ids
        ]
        return Delta.make(relation_name, "base" * 16, "new0" * 16, changes)

    def test_unreferenced_relation_never_affects(self):
        query = count_query("Q", Scan("T"), attribute="Program")
        delta = self._delete_delta("Other", "Other:0")
        assert not delta_affects(query, delta, None)

    def test_inserts_are_conservatively_affected(self):
        query = count_query("Q", Scan("T"), attribute="Program")
        change = RowChange.make("insert", "T:9", before=None, after=("x",))
        delta = Delta.make("T", "base" * 16, "new0" * 16, [change])
        assert delta_affects(query, delta, _provenance_stub({"T:0"}))

    def test_delete_outside_all_lineages_rewires(self):
        query = count_query("Q", Scan("T"), attribute="Program")
        delta = self._delete_delta("T", "T:7")
        assert not delta_affects(query, delta, _provenance_stub({"T:0"}, {"T:1"}))
        assert delta_affects(query, delta, _provenance_stub({"T:0", "T:7"}))

    def test_missing_provenance_is_conservative(self):
        query = count_query("Q", Scan("T"), attribute="Program")
        assert delta_affects(query, self._delete_delta("T", "T:7"), None)

    def test_difference_tree_is_non_monotone(self):
        root = Difference(Scan("T"), Scan("U"), on=("Program",))
        query = Query("Q", root)
        assert not is_monotone(root)
        delta = self._delete_delta("U", "U:0")
        # Deleting a right-side row can *grow* an anti-join's output.
        assert delta_affects(query, delta, _provenance_stub({"T:0"}))


# ---------------------------------------------------------------------------
# Incremental ANALYZE
# ---------------------------------------------------------------------------

class TestIncrementalStats:
    def test_insert_only_merge_matches_rescan_exactly(self):
        relation = _relation()
        base = analyze_relation(relation)
        new_relation, delta = apply_changes_copy(
            relation,
            [
                {"op": "insert", "record": {"Program": "EE", "Score": 50}},
                {"op": "insert", "record": {"Program": "EE", "Score": None}},
            ],
        )
        merged = merge_relation_stats(base, delta)
        rescan = analyze_relation(new_relation)
        assert merged.row_count == rescan.row_count == 6
        for merged_col, rescan_col in zip(merged.columns, rescan.columns):
            assert merged_col.null_count == rescan_col.null_count
            assert merged_col.distinct == rescan_col.distinct
            assert merged_col.min_value == rescan_col.min_value
            assert merged_col.max_value == rescan_col.max_value
        assert merged.fingerprint == delta.new_fingerprint

    def test_deletes_keep_counts_exact_and_ndv_bounded(self):
        relation = _relation()
        base = analyze_relation(relation)
        new_relation, delta = apply_changes_copy(
            relation, [{"op": "delete", "row": 2}]  # the null-Score row
        )
        merged = merge_relation_stats(base, delta)
        rescan = analyze_relation(new_relation)
        assert merged.row_count == rescan.row_count == 3
        score = {c.name: c for c in merged.columns}["Score"]
        assert score.null_count == 0
        assert score.distinct >= {c.name: c for c in rescan.columns}["Score"].distinct
        assert score.distinct <= merged.row_count

    def test_drift_accumulates_across_merges(self):
        relation = _relation()
        stats = analyze_relation(relation)
        assert stats.drift == 0.0
        new_relation, delta = apply_changes_copy(relation, [{"op": "delete", "row": 0}])
        merged = merge_relation_stats(stats, delta)
        assert merged.drift == pytest.approx(0.25)
        assert merged.to_dict()["drift"] == 0.25

    def test_catalog_merges_below_threshold_and_rescans_past_it(self):
        relation = Relation.from_records(
            [{"Program": "P", "Score": i} for i in range(20)], name="T"
        )
        catalog = StatsCatalog()
        catalog.relation_stats(relation)

        small, small_delta = apply_changes_copy(
            relation, [{"op": "insert", "record": {"Program": "Q", "Score": 99}}]
        )
        _, mode = catalog.apply_delta(small_delta, small)
        assert mode == "incremental"

        churned, churn_delta = apply_changes_copy(
            small, [{"op": "delete", "row": 0} for _ in range(8)]
        )
        _, mode = catalog.apply_delta(churn_delta, churned)
        assert mode == "rescan"  # 8/21 changed rows > DRIFT_THRESHOLD
        assert DRIFT_THRESHOLD == 0.2

    def test_catalog_without_base_entry_rescans(self):
        relation = _relation()
        new_relation, delta = apply_changes_copy(relation, [{"op": "delete", "row": 0}])
        catalog = StatsCatalog()  # never saw the base content
        stats, mode = catalog.apply_delta(delta, new_relation)
        assert mode == "rescan"
        assert stats.row_count == 3

    def test_kmv_sketch_merge_is_a_set_union(self):
        left = KMVSketch.of(["a", "b", "c"])
        right = KMVSketch.of(["c", "d"])
        merged = left.merge(right)
        assert merged.estimate() == 4
        assert KMVSketch.of([]).estimate() == 0


# ---------------------------------------------------------------------------
# Cache invalidation primitives
# ---------------------------------------------------------------------------

class TestCacheInvalidateAndRewire:
    def test_invalidate_tombstones_the_spill(self, tmp_path):
        cache = ArtifactCache("live", max_entries=8, spill_dir=tmp_path,
                              write_through=True)
        cache.put("k1", "v1")
        assert cache.invalidate("k1")
        assert cache.get("k1") is None
        assert not (tmp_path / "live-k1.pkl").exists()
        assert (tmp_path / "live-k1.pkl.tomb").exists()
        assert cache.stats.invalidations == 1

    def test_tombstone_blocks_sibling_resurrection(self, tmp_path):
        # Two caches over one shared spill dir (the fleet tier): after one
        # invalidates, the other's write-through must not resurrect the key.
        writer = ArtifactCache("live", max_entries=8, spill_dir=tmp_path,
                               write_through=True)
        sibling = ArtifactCache("live", max_entries=8, spill_dir=tmp_path,
                                write_through=True)
        writer.put("k1", "v1")
        writer.invalidate("k1")
        sibling.put("k1", "v1")  # write-through refused by the tombstone
        assert not (tmp_path / "live-k1.pkl").exists()
        fresh = ArtifactCache("live", max_entries=8, spill_dir=tmp_path)
        assert fresh.get("k1") is None

    def test_rewire_moves_memory_and_disk_and_clears_tombstones(self, tmp_path):
        cache = ArtifactCache("live", max_entries=8, spill_dir=tmp_path,
                              write_through=True)
        cache.put("old", {"answer": 42})
        cache.invalidate("new")  # a stale tombstone at the target address
        assert cache.rewire("old", "new")
        assert cache.get("new") == {"answer": 42}
        assert cache.get("old") is None
        assert (tmp_path / "live-new.pkl").exists()
        assert not (tmp_path / "live-new.pkl.tomb").exists()
        assert cache.stats.rewires == 1

    def test_clear_sweeps_tombstones(self, tmp_path):
        cache = ArtifactCache("live", max_entries=8, spill_dir=tmp_path,
                              write_through=True)
        cache.put("k1", "v1")
        cache.invalidate("k1")
        cache.clear()
        assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# Database registry regressions (stats invalidation)
# ---------------------------------------------------------------------------

class TestDatabaseStatsInvalidation:
    def _analyzed_db(self) -> Database:
        db = Database("db")
        db.add(_relation("T"))
        db.add(_relation("U"))
        db.analyze()
        assert set(db.statistics.relations()) == {"T", "U"}
        return db

    def test_add_replacement_drops_stats_for_the_name(self):
        db = self._analyzed_db()
        db.add(Relation.from_records([{"Program": "X", "Score": 1}], name="T"))
        assert "T" not in db.statistics.relations()
        assert "U" in db.statistics.relations()

    def test_remove_drops_stats_with_the_relation(self):
        db = self._analyzed_db()
        db.remove("T")
        assert "T" not in db.statistics.relations()
        with pytest.raises(UnknownRelationError):
            db.remove("T")

    def test_rename_drops_stats_for_both_names(self):
        # Regression: copy-on-rename changes lineage ids, so stats held
        # under *either* name describe content that no longer exists.
        db = self._analyzed_db()
        db.analyze()  # (re)analyze so both entries are present
        db.rename_relation("T", "U2")
        db.add(_relation("U2"))  # content differing from the renamed one
        assert "T" not in db.statistics.relations()
        assert "U2" not in db.statistics.relations()

    def test_rename_onto_analyzed_name_invalidates_it(self):
        db = self._analyzed_db()
        db.remove("U")
        db.analyze()
        db.add(_relation("U"))
        db.analyze()
        db.rename_relation("T", "U")  # clobbers the analyzed entry for U
        assert "U" not in db.statistics.relations()

    def test_with_relation_drops_only_the_replaced_entry(self):
        db = self._analyzed_db()
        replacement = _relation("T").copy()
        replacement.insert({"Program": "EE", "Score": 50})
        clone = db.with_relation("T", replacement)
        assert "T" not in clone.statistics.relations()
        assert "U" in clone.statistics.relations()
        # The original database's statistics are untouched (copy-on-write).
        assert set(db.statistics.relations()) == {"T", "U"}


# ---------------------------------------------------------------------------
# The service ingest path
# ---------------------------------------------------------------------------

@pytest.fixture()
def live_service(figure1_db1, figure1_db2):
    service = ExplainService()
    service.register_database(figure1_db1, "D1")
    service.register_database(figure1_db2, "D2")
    return service


@pytest.fixture()
def live_request(figure1_queries):
    from repro import matching

    q1, q2 = figure1_queries
    return ExplainRequest(
        query_left=q1,
        database_left="D1",
        query_right=q2,
        database_right="D2",
        attribute_matches=matching(("Program", "Major")),
    )


def _canon(service: ExplainService, request: ExplainRequest) -> str:
    from repro.fleet.__main__ import canonical_report

    return canonical_report(service.explain(request).report.to_dict())


class TestServiceIngest:
    def test_unaffected_delete_rewires_everything(self, live_service, live_request):
        live_service.explain(live_request)
        # D2 row 6 is ("B", "Art"): Q2 filters Univ = 'A', so this row is in
        # no provenance lineage -- every artifact survives under its new key.
        summary = live_service.ingest("D2", "D2", [{"op": "delete", "row": 6}])
        assert summary["applied"] is True
        assert summary["changes"] == {"insert": 0, "update": 0, "delete": 1}
        assert summary["caches"]["evicted"] == 0
        assert summary["caches"]["rewired"] > 0
        result = live_service.explain(live_request)
        assert result.cached_report  # the report itself was rewired

    def test_affecting_insert_evicts_and_matches_cold_rebuild(
        self, live_service, live_request, figure1_db2
    ):
        from repro.datasets.sql_catalog import figure1_databases

        pre = _canon(live_service, live_request)
        specs = [{"op": "insert", "record": {"Program": "Math", "Degree": "B.S."}}]
        summary = live_service.ingest("D1", "D1", specs)
        assert summary["caches"]["evicted"] > 0
        post = _canon(live_service, live_request)
        assert post != pre

        cold_db1, cold_db2, _ = figure1_databases()
        apply_changes(cold_db1.relation("D1"), specs)
        cold = ExplainService()
        cold.register_database(cold_db1, "D1")
        cold.register_database(cold_db2, "D2")
        assert _canon(cold, live_request) == post

    def test_duplicate_delta_id_is_deduplicated(self, live_service):
        specs = [{"op": "insert", "record": {"Program": "Math", "Degree": "B.S."}}]
        first = live_service.ingest("D1", "D1", specs, delta_id="batch-1")
        again = live_service.ingest("D1", "D1", specs, delta_id="batch-1")
        assert first["applied"] is True
        assert again["applied"] is False and again["deduplicated"] is True
        assert again["fingerprint"] == first["fingerprint"]
        assert live_service.stats()["ingests_applied"] == 1

    def test_stale_expect_fingerprint_conflicts(self, live_service):
        current = live_service.databases()["D1"]
        live_service.ingest(
            "D1", "D1",
            [{"op": "insert", "record": {"Program": "Math", "Degree": "B.S."}}],
        )
        with pytest.raises(DeltaConflictError):
            live_service.ingest(
                "D1", "D1", [{"op": "delete", "row": 0}],
                expect_fingerprint=current,
            )

    def test_unknown_relation_is_a_delta_error(self, live_service):
        with pytest.raises(DeltaError):
            live_service.ingest("D1", "Nope", [{"op": "delete", "row": 0}])

    def test_incremental_stats_mode_after_analyze(self, live_service, live_request):
        live_service.analyze("D1")
        summary = live_service.ingest(
            "D1", "D1",
            [{"op": "insert", "record": {"Program": "Math", "Degree": "B.S."}}],
        )
        assert summary["stats"] == "incremental"
        # Planner answers over merged stats stay identical to a cold rebuild
        # (asserted via the explain path; analyze() here just refreshes).
        payload = live_service.analyze("D1")
        assert payload["relations"]["D1"]["row_count"] == 8

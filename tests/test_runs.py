"""Tests for the run-diff workload: loader, aligner, variants, bridge, spec."""

import json

import pytest

from repro.datasets.variants import (
    RUN_SCHEMA,
    VariantsConfig,
    VariantRuns,
    generate_variant_runs,
)
from repro.relational.relation import Relation
from repro.relational.schema import DataType
from repro.runs import (
    AUTO,
    DUPLICATE_KEY,
    MISSING_IN_A,
    MISSING_IN_B,
    VALUE_MISMATCH,
    RunError,
    align_runs,
    align_runs_reference,
    build_run_problem,
    compile_runs_payload,
    load_run,
    load_sidecar,
    schema_from_spec,
    sidecar_path,
)
from repro.runs.fuzz import fuzz_aligner


# ---------------------------------------------------------------------------
# Loader
# ---------------------------------------------------------------------------

class TestLoader:
    def test_ndjson_inference(self, tmp_path):
        path = tmp_path / "run.ndjson"
        path.write_text('{"id": 1, "v": 1}\n{"id": 2, "v": 2.5}\n')
        run = load_run(path)
        assert run.name == "run"
        assert not run.declared
        assert run.relation.schema.dtype("v") is DataType.FLOAT

    def test_sidecar_schema_and_key(self, tmp_path):
        path = tmp_path / "run.ndjson"
        path.write_text('{"id": 1, "v": "7"}\n')
        sidecar_path(path).write_text(json.dumps({
            "columns": [{"name": "id", "type": "int"},
                        {"name": "v", "type": "string"}],
            "key": "id",
        }))
        run = load_run(path)
        assert run.declared and run.key == ("id",)
        assert run.relation.column("v") == ["7"]

    def test_explicit_key_overrides_sidecar(self, tmp_path):
        path = tmp_path / "run.ndjson"
        path.write_text('{"id": 1, "v": 2}\n')
        sidecar_path(path).write_text(json.dumps({
            "columns": [{"name": "id", "type": "int"},
                        {"name": "v", "type": "int"}],
            "key": "id",
        }))
        assert load_run(path, key="v").key == ("v",)

    def test_csv_runs_load_with_textual_inference(self, tmp_path):
        path = tmp_path / "run.csv"
        path.write_text("id,v\n1,a\n2,\n")
        run = load_run(path)
        assert run.relation.schema.dtype("id") is DataType.INTEGER
        assert run.relation.column("v") == ["a", None]

    def test_unsupported_extension_rejected(self, tmp_path):
        with pytest.raises(RunError, match="extension"):
            load_run(tmp_path / "run.parquet")

    def test_coercion_failure_names_row_and_column(self, tmp_path):
        path = tmp_path / "run.ndjson"
        path.write_text('{"id": 1, "tax": 2.0}\n{"id": 2, "tax": "oops"}\n')
        sidecar_path(path).write_text(json.dumps({
            "columns": [{"name": "id", "type": "int"},
                        {"name": "tax", "type": "float"}],
        }))
        with pytest.raises(RunError) as excinfo:
            load_run(path)
        assert excinfo.value.path == "/rows/1/tax"

    def test_missing_sidecar_is_fine(self, tmp_path):
        path = tmp_path / "run.ndjson"
        path.write_text('{"id": 1}\n')
        assert load_sidecar(path) is None

    def test_schema_spec_pointer_errors(self):
        with pytest.raises(RunError) as excinfo:
            schema_from_spec({"columns": [{"name": "id", "type": "decimal"}]})
        assert excinfo.value.path == "/columns/0/type"
        with pytest.raises(RunError) as excinfo:
            schema_from_spec({
                "columns": [{"name": "id", "type": "int"}],
                "key": ["id", "nope"],
            })
        assert excinfo.value.path == "/key/1"


# ---------------------------------------------------------------------------
# Aligner
# ---------------------------------------------------------------------------

def relation(name, records):
    return Relation.from_records(records, name=name)


class TestAligner:
    def test_classifies_every_kind(self):
        left = relation("L", [
            {"id": 1, "v": 1.0},   # agrees
            {"id": 2, "v": 2.0},   # value mismatch
            {"id": 3, "v": 3.0},   # missing in B
            {"id": 5, "v": 5.0},   # duplicated key (left)
            {"id": 5, "v": 5.5},
        ])
        right = relation("R", [
            {"id": 1, "v": 1.0},
            {"id": 2, "v": 9.0},
            {"id": 4, "v": 4.0},   # missing in A
            {"id": 5, "v": 5.0},
        ])
        alignment = align_runs(left, right, ("id",))
        assert alignment.counts() == {
            DUPLICATE_KEY: 1,
            VALUE_MISMATCH: 1,
            MISSING_IN_B: 1,
            MISSING_IN_A: 1,
        }
        assert alignment.matched == 2 and alignment.agreeing == 1
        mismatch = next(d for d in alignment.disagreements if d.kind == VALUE_MISMATCH)
        assert mismatch.key == (2,) and mismatch.columns == ("v",)

    def test_duplicate_keys_are_excluded_from_pairing(self):
        left = relation("L", [{"id": 1, "v": 1}, {"id": 1, "v": 2}])
        right = relation("R", [{"id": 1, "v": 1}])
        alignment = align_runs(left, right, ("id",))
        assert alignment.counts() == {DUPLICATE_KEY: 1}
        assert alignment.matched == 0

    def test_float_tolerance(self):
        left = relation("L", [{"id": 1, "v": 1.0}])
        right = relation("R", [{"id": 1, "v": 1.005}])
        assert not align_runs(left, right, ("id",)).agree()
        assert align_runs(left, right, ("id",), float_tolerance=0.01).agree()

    def test_null_only_equals_null(self):
        left = relation("L", [{"id": 1, "v": None}, {"id": 2, "v": 0.0}])
        right = relation("R", [{"id": 1, "v": 0.0}, {"id": 2, "v": None}])
        alignment = align_runs(left, right, ("id",), float_tolerance=100.0)
        assert alignment.counts() == {VALUE_MISMATCH: 2}

    def test_compare_restricts_columns(self):
        left = relation("L", [{"id": 1, "a": 1, "b": 1}])
        right = relation("R", [{"id": 1, "a": 2, "b": 1}])
        assert align_runs(left, right, ("id",), compare=("b",)).agree()
        assert not align_runs(left, right, ("id",), compare=("a",)).agree()

    def test_deterministic_ordering(self):
        # Duplicates first (left then right), then left-order, then right-order.
        left = relation("L", [{"id": 3, "v": 1}, {"id": 1, "v": 1}, {"id": 1, "v": 2}])
        right = relation("R", [{"id": 9, "v": 1}, {"id": 3, "v": 2}, {"id": 8, "v": 1}])
        kinds = [(d.kind, d.key) for d in align_runs(left, right, ("id",)).disagreements]
        assert kinds == [
            (DUPLICATE_KEY, (1,)),
            (VALUE_MISMATCH, (3,)),
            (MISSING_IN_A, (9,)),
            (MISSING_IN_A, (8,)),
        ]

    def test_missing_key_column_rejected(self):
        left = relation("L", [{"id": 1}])
        right = relation("R", [{"other": 1}])
        with pytest.raises(RunError, match="key column"):
            align_runs(left, right, ("id",))

    def test_reference_aligner_is_identical(self):
        left = relation("L", [{"id": i, "v": i % 3} for i in range(20)])
        right = relation("R", [{"id": i, "v": i % 4} for i in range(3, 23)])
        fast = align_runs(left, right, ("id",))
        oracle = align_runs_reference(left, right, ("id",))
        assert fast.canonical() == oracle.canonical()
        assert fast.fingerprint() == oracle.fingerprint()

    def test_short_fuzz_against_oracle(self):
        assert fuzz_aligner(10, seed=11) > 0


# ---------------------------------------------------------------------------
# Variants scenario
# ---------------------------------------------------------------------------

class TestVariants:
    def test_generation_is_deterministic(self):
        config = VariantsConfig(num_rows=40, seed=5)
        assert generate_variant_runs(config).runs == generate_variant_runs(config).runs

    def test_gold_matches_the_aligner(self):
        scenario = generate_variant_runs(VariantsConfig(num_rows=50, stale_stride=7))
        reference = scenario.relation("single_thread")
        for variant in ("vectorized", "shared_state", "async_event_loop"):
            alignment = align_runs(reference, scenario.relation(variant), scenario.key)
            got = {
                kind: {tuple(d.key) for d in alignment.disagreements if d.kind == kind}
                for kind in (VALUE_MISMATCH, MISSING_IN_B)
            }
            assert got == scenario.expected_kinds(variant), variant

    def test_each_bug_has_its_signature(self):
        scenario = generate_variant_runs(VariantsConfig(num_rows=50, stale_stride=7))
        assert scenario.divergent_ids["vectorized"]
        assert scenario.divergent_ids["shared_state"]
        assert scenario.missing_ids["async_event_loop"]
        assert not scenario.divergent_ids["single_thread"]
        assert not scenario.missing_ids["single_thread"]

    def test_write_round_trips_through_the_loader(self, tmp_path):
        scenario = generate_variant_runs(VariantsConfig(num_rows=20, stale_stride=7))
        paths = scenario.write(tmp_path)
        run = load_run(paths["vectorized"])
        assert run.declared and run.key == ("id",)
        assert run.relation.schema == RUN_SCHEMA
        assert run.relation.as_dicts() == scenario.runs["vectorized"]


# ---------------------------------------------------------------------------
# Bridge
# ---------------------------------------------------------------------------

class TestBridge:
    def small_pair(self):
        left = relation("run_a", [
            {"id": 1, "tag": "x", "v": 1.0},
            {"id": 2, "tag": "y", "v": 2.0},
        ])
        right = relation("run_b", [
            {"id": 1, "tag": "x", "v": 1.0},
            {"id": 2, "tag": "y", "v": 5.0},
        ])
        return left, right

    def test_auto_compare_prefers_the_diverging_column(self):
        left = relation("A", [{"id": 1, "same": 1.0, "diff": 1.0}])
        right = relation("B", [{"id": 1, "same": 1.0, "diff": 2.0}])
        problem = build_run_problem(left, right, key=("id",))
        assert problem.compare == "diff"

    def test_no_numeric_column_falls_back_to_count(self):
        left = relation("A", [{"id": 1, "tag": "x"}])
        right = relation("B", [{"id": 1, "tag": "x"}, {"id": 2, "tag": "y"}])
        problem = build_run_problem(left, right, key=("id",))
        assert problem.compare is None
        assert problem.query_specs()[0]["kind"] == "count"

    def test_same_named_runs_are_suffixed(self):
        left = relation("run", [{"id": 1, "v": 1.0}])
        right = relation("run", [{"id": 1, "v": 2.0}])
        problem = build_run_problem(left, right, key=("id",))
        assert problem.database_left.name == "run_a"
        assert problem.database_right.name == "run_b"

    def test_missing_key_is_an_error(self):
        left, right = self.small_pair()
        with pytest.raises(RunError, match="key"):
            build_run_problem(left, right)

    def test_explicit_compare_validated(self):
        left, right = self.small_pair()
        with pytest.raises(RunError, match="not a shared non-key column"):
            build_run_problem(left, right, key=("id",), compare="nope")
        with pytest.raises(RunError, match="not numeric"):
            build_run_problem(left, right, key=("id",), compare="tag")

    def test_payload_and_registrations_are_loss_free(self):
        left, right = self.small_pair()
        problem = build_run_problem(left, right, key=("id",))
        payload = problem.to_payload()
        assert payload["database_left"] == "run_a"
        assert payload["query_left"] == {
            "name": "QA", "kind": "sum", "relation": "run_a", "attribute": "v",
        }
        assert ["id", "id"] in payload["attribute_matches"]
        registrations = problem.registrations()
        assert registrations[0]["dtypes"]["run_a"] == {
            "id": "integer", "tag": "string", "v": "float",
        }

    def test_direct_explain_finds_the_divergence(self):
        left, right = self.small_pair()
        report = build_run_problem(left, right, key=("id",)).explain()
        assert report.problem.result_left == 3.0
        assert report.problem.result_right == 6.0
        assert report.explanations


# ---------------------------------------------------------------------------
# The {"runs": ...} spec
# ---------------------------------------------------------------------------

class TestRunsSpec:
    def payload(self, **overrides):
        spec = {
            "left": {"name": "a", "records": [{"id": 1, "v": 1.0}]},
            "right": {"name": "b", "records": [{"id": 1, "v": 2.0}]},
            "key": "id",
        }
        spec.update(overrides)
        return {"runs": spec}

    def test_compiles_to_a_plain_explain_payload(self):
        compiled = compile_runs_payload(self.payload())
        assert compiled.problem.compare == "v"
        assert compiled.explain_payload["database_left"] == "a"
        assert len(compiled.registrations) == 2
        assert compiled.registrations[1]["dtypes"]["b"]["v"] == "float"

    def test_passthrough_keys_survive(self):
        payload = self.payload()
        payload["deadline_seconds"] = 5
        assert compile_runs_payload(payload).explain_payload["deadline_seconds"] == 5

    def test_path_sides_load_run_files(self, tmp_path):
        scenario = generate_variant_runs(VariantsConfig(num_rows=20, stale_stride=7))
        paths = scenario.write(tmp_path)
        compiled = compile_runs_payload({"runs": {
            "left": {"path": str(paths["single_thread"])},
            "right": {"path": str(paths["shared_state"])},
        }})
        assert compiled.problem.key == ("id",)  # from the sidecars

    @pytest.mark.parametrize("mutate, pointer", [
        (lambda p: p.pop("runs"), "/runs"),
        (lambda p: p["runs"].pop("right"), "/runs/right"),
        (lambda p: p["runs"].update(extra=1), "/runs/extra"),
        (lambda p: p.update(database_left="x"), "/database_left"),
        (lambda p: p["runs"]["left"].pop("name"), "/runs/left/name"),
        (lambda p: p["runs"]["left"].update(records=[]), "/runs/left/records"),
        (lambda p: p["runs"]["left"].update(records=[1]), "/runs/left/records/0"),
        (lambda p: p["runs"]["left"].update(bogus=1), "/runs/left/bogus"),
        (lambda p: p["runs"].update(key="nope"), "/runs"),
    ])
    def test_malformed_specs_carry_json_pointers(self, mutate, pointer):
        payload = self.payload()
        mutate(payload)
        with pytest.raises(RunError) as excinfo:
            compile_runs_payload(payload)
        assert excinfo.value.path == pointer

    def test_side_needs_exactly_one_source(self, tmp_path):
        payload = self.payload()
        payload["runs"]["left"]["path"] = str(tmp_path / "x.ndjson")
        with pytest.raises(RunError) as excinfo:
            compile_runs_payload(payload)
        assert excinfo.value.path == "/runs/left"

    def test_bad_row_in_inline_records_is_pointed_at(self):
        payload = self.payload()
        payload["runs"]["left"]["records"] = [{"id": 1, "v": 1.0},
                                              {"id": 2, "v": "oops"}]
        with pytest.raises(RunError) as excinfo:
            compile_runs_payload(payload)
        assert excinfo.value.path == "/runs/left/rows/1/v"


# ---------------------------------------------------------------------------
# Non-finite floats (NaN / +-inf) in run values
# ---------------------------------------------------------------------------

class TestNonFiniteValues:
    """Regression: runs agreeing on NaN or the same infinity must NOT be
    classified as value_mismatch (``abs(nan - nan) <= tol`` is False and
    ``inf - inf`` is NaN, so the pre-fix tolerance check fabricated
    disagreements between identical runs)."""

    def test_nan_agrees_with_nan(self):
        rows = [
            {"id": 1, "v": float("nan")},
            {"id": 2, "v": float("inf")},
            {"id": 3, "v": float("-inf")},
            {"id": 4, "v": 1.5},
        ]
        left = relation("L", rows)
        right = relation("R", [dict(row) for row in rows])
        alignment = align_runs(left, right, ("id",))
        assert alignment.agree(), alignment.counts()
        assert alignment.counts() == {}

    def test_nan_vs_finite_is_a_mismatch(self):
        left = relation("L", [{"id": 1, "v": float("nan")}])
        right = relation("R", [{"id": 1, "v": 1.0}])
        alignment = align_runs(left, right, ("id",), float_tolerance=1e9)
        assert alignment.counts() == {VALUE_MISMATCH: 1}

    def test_opposite_infinities_are_a_mismatch(self):
        left = relation("L", [{"id": 1, "v": float("inf")}])
        right = relation("R", [{"id": 1, "v": float("-inf")}])
        alignment = align_runs(left, right, ("id",), float_tolerance=1e9)
        assert alignment.counts() == {VALUE_MISMATCH: 1}

    def test_inf_vs_finite_ignores_tolerance(self):
        left = relation("L", [{"id": 1, "v": float("inf")}])
        right = relation("R", [{"id": 1, "v": 1e300}])
        alignment = align_runs(left, right, ("id",), float_tolerance=float("inf"))
        assert alignment.counts() == {VALUE_MISMATCH: 1}

    def test_nan_vs_null_is_a_mismatch(self):
        left = relation("L", [{"id": 1, "v": float("nan")}])
        right = relation("R", [{"id": 1, "v": None}])
        alignment = align_runs(left, right, ("id",))
        assert alignment.counts() == {VALUE_MISMATCH: 1}

    def test_oracle_stays_byte_consistent_on_non_finite(self):
        rows_left = [
            {"id": 1, "v": float("nan")},
            {"id": 2, "v": float("inf")},
            {"id": 3, "v": 2.0},
        ]
        rows_right = [
            {"id": 1, "v": float("nan")},
            {"id": 2, "v": float("-inf")},
            {"id": 3, "v": float("nan")},
        ]
        left = relation("L", rows_left)
        right = relation("R", rows_right)
        fast = align_runs(left, right, ("id",))
        reference = align_runs_reference(left, right, ("id",))
        assert fast.canonical() == reference.canonical()
        assert fast.fingerprint() == reference.fingerprint()
        assert fast.counts() == {VALUE_MISMATCH: 2}

    def test_fuzz_generator_emits_non_finite_scores(self):
        import math
        import random

        from repro.runs.fuzz import random_run_pair

        rng = random.Random(11)
        saw_non_finite = False
        for _ in range(40):
            left, right, _ = random_run_pair(rng)
            for rel in (left, right):
                for value in rel.column("score"):
                    if value is not None and not math.isfinite(value):
                        saw_non_finite = True
        assert saw_non_finite

    def test_end_to_end_nan_rows_through_bridge_and_pipeline(self):
        # Two runs agreeing on a NaN-valued column but diverging on a finite
        # one: the bridge must auto-pick the *finite* diverging column (the
        # NaN column agrees now), and the full pipeline must explain the
        # divergence instead of drowning in fabricated NaN mismatches.
        left = relation("runL", [
            {"id": 1, "ratio": float("nan"), "v": 1.0},
            {"id": 2, "ratio": float("inf"), "v": 2.0},
        ])
        right = relation("runR", [
            {"id": 1, "ratio": float("nan"), "v": 1.0},
            {"id": 2, "ratio": float("inf"), "v": 5.0},
        ])
        alignment = align_runs(left, right, ("id",))
        mismatch_columns = {
            column
            for d in alignment.disagreements
            if d.kind == VALUE_MISMATCH
            for column in d.columns
        }
        assert mismatch_columns == {"v"}  # no spurious NaN/inf mismatches
        problem = build_run_problem(left, right, key=("id",))
        assert problem.compare == "v"
        report = problem.explain()
        assert report.problem.result_left == 3.0
        assert report.problem.result_right == 6.0
        assert report.explanations

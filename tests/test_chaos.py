"""Chaos suite: every injected fault must yield a fallback or a typed error.

The contract under test is the reliability core's: for every named fault site
in :data:`repro.reliability.faults.KNOWN_SITES`, an injected failure either

* degrades to a **fingerprint-identical** answer (cache misses, planner
  fallback, heuristic cost model) -- asserted by comparing against the
  fault-free run -- or
* surfaces as a **typed, structured error** (deadline, cancellation, solver
  fault, open breaker),

and *never* hangs or silently changes an answer.  Deadlines are asserted to
return within budget plus one checkpoint interval; degraded reports are
asserted to carry explicit ``degraded`` markers and to never enter the
report cache.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import Explain3DConfig, Priors, matching
from repro.core.partitioning import PartitionedSolver, SolveConfig
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_pair
from repro.reliability import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    FaultInjector,
    InjectedFault,
    OperationCancelled,
    RetryOutcome,
    RetryPolicy,
    retry_call,
)
from repro.reliability.faults import FAULTS, KNOWN_SITES, inject
from repro.service import (
    ArtifactCache,
    ExplainRequest,
    ExplainService,
    JobQueue,
    JobState,
    ServiceConfig,
)


@pytest.fixture(autouse=True)
def _clean_faults():
    """No fault armed in one test may leak into another (global injector)."""
    FAULTS.reset()
    yield
    FAULTS.reset()


def _reports_equal(a, b) -> bool:
    return (
        a.explanations.explanation_identities() == b.explanations.explanation_identities()
        and a.explanations.evidence_pairs() == b.explanations.evidence_pairs()
        and abs(a.explanations.objective - b.explanations.objective) < 1e-9
        and {p.describe() for p in a.summary.patterns} == {p.describe() for p in b.summary.patterns}
    )


@pytest.fixture()
def figure1_service(figure1_db1, figure1_db2):
    service = ExplainService()
    service.register_database(figure1_db1, "D1")
    service.register_database(figure1_db2, "D2")
    return service


@pytest.fixture()
def figure1_request(figure1_queries, figure1_mapping):
    q1, q2 = figure1_queries
    return ExplainRequest(
        query_left=q1,
        database_left="D1",
        query_right=q2,
        database_right="D2",
        attribute_matches=matching(("Program", "Major")),
        tuple_mapping=figure1_mapping,
        config=Explain3DConfig(partitioning="none", priors=Priors(0.9, 0.9)),
    )


@pytest.fixture(scope="module")
def partitioned_problem():
    """A problem that smart-partitions into several independent MILPs."""
    pair = generate_synthetic_pair(
        SyntheticConfig(num_tuples=40, difference_ratio=0.25, seed=7)
    )
    problem, _ = pair.build_problem()
    return problem


@pytest.fixture()
def synthetic_service():
    """A service + request pair over the multi-partition synthetic dataset."""
    pair = generate_synthetic_pair(
        SyntheticConfig(num_tuples=40, difference_ratio=0.25, seed=7)
    )
    service = ExplainService()
    service.register_database(pair.db_left, "SL")
    service.register_database(pair.db_right, "SR")
    request = ExplainRequest(
        query_left=pair.query_left,
        database_left="SL",
        query_right=pair.query_right,
        database_right="SR",
        attribute_matches=pair.attribute_matches,
        config=Explain3DConfig(partitioning="smart", batch_size=10, workers=1),
    )
    return service, request


# ---------------------------------------------------------------------------
# Primitives
# ---------------------------------------------------------------------------

class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline.unbounded()
        deadline.check("anywhere")
        assert not deadline.bounded
        assert deadline.remaining() is None

    def test_expiry_raises_typed_error_with_site(self):
        deadline = Deadline.after(0.005)
        time.sleep(0.01)
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("solve.partition")
        assert excinfo.value.site == "solve.partition"
        assert excinfo.value.elapsed >= excinfo.value.budget

    def test_cancellation_wins_over_expiry(self):
        event = threading.Event()
        event.set()
        deadline = Deadline.after(0.001, cancel_event=event)
        time.sleep(0.005)
        with pytest.raises(OperationCancelled) as excinfo:
            deadline.check("merge")
        assert excinfo.value.site == "merge"

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            Deadline.after(0.0)


class TestFaultInjector:
    def test_known_sites_registry_is_the_contract(self):
        # Every site this suite exercises must be declared, and vice versa.
        assert KNOWN_SITES == {
            "cache.spill_load": "identical",
            "cache.spill_write": "identical",
            "plan.lower": "identical",
            "stats.analyze": "identical",
            "runs.align": "identical",
            "solve.partition": "typed-error",
            "live.apply_delta": "typed-error",
        }

    def test_unarmed_check_is_a_noop(self):
        injector = FaultInjector()
        injector.check("cache.spill_load")  # must not raise

    def test_raise_mode_and_times_limit(self):
        injector = FaultInjector()
        injector.arm("plan.lower", "raise", times=2)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.check("plan.lower")
        injector.check("plan.lower")  # budget exhausted: no fault
        assert injector.fired("plan.lower") == 2

    def test_every_nth_hit_gives_deterministic_fault_rate(self):
        injector = FaultInjector()
        injector.arm("cache.spill_load", "raise", every=10)
        fired = 0
        for _ in range(30):
            try:
                injector.check("cache.spill_load")
            except InjectedFault:
                fired += 1
        assert fired == 3  # exactly 10%

    def test_configure_spec_string_and_env(self, monkeypatch):
        injector = FaultInjector()
        injector.configure("plan.lower=raise, solve.partition=delay:0.01")
        modes = {rule.site: rule.mode for rule in injector.rules()}
        assert modes == {"plan.lower": "raise", "solve.partition": "delay"}
        env_injector = FaultInjector()
        monkeypatch.setenv("REPRO_FAULTS", "cache.spill_write=corrupt")
        assert env_injector.load_env()
        assert env_injector.rules()[0].mode == "corrupt"

    def test_corrupt_mangles_payload(self):
        injector = FaultInjector()
        injector.arm("cache.spill_write", "corrupt")
        payload = b"x" * 64
        mangled = injector.corrupt("cache.spill_write", payload)
        assert mangled != payload and len(mangled) < len(payload)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().arm("plan.lower", "explode")


class TestCircuitBreaker:
    def test_opens_after_threshold_and_fails_fast(self):
        breaker = CircuitBreaker("db", failure_threshold=3, reset_seconds=30.0)
        for _ in range(3):
            breaker.acquire()
            breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.acquire()
        assert excinfo.value.key == "db"
        assert excinfo.value.retry_after > 0

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker("db", failure_threshold=2, reset_seconds=30.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_one_probe(self):
        breaker = CircuitBreaker("db", failure_threshold=1, reset_seconds=0.02)
        breaker.record_failure()
        assert breaker.state == "open"
        time.sleep(0.03)
        assert breaker.state == "half-open"
        breaker.acquire()  # the single probe
        with pytest.raises(CircuitOpenError):
            breaker.acquire()  # concurrent request still rejected
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.acquire()

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker("db", failure_threshold=1, reset_seconds=0.02)
        breaker.record_failure()
        time.sleep(0.03)
        breaker.acquire()
        breaker.record_failure()
        assert breaker.state == "open"


class TestRetry:
    def test_retries_transient_errors_with_backoff(self):
        sleeps: list[float] = []
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ConnectionError("transient")
            return "ok"

        policy = RetryPolicy(attempts=3, base_delay=0.1, multiplier=2.0, jitter=0.0)
        outcome = RetryOutcome()
        assert retry_call(flaky, policy, sleep=sleeps.append, outcome=outcome) == "ok"
        assert sleeps == [0.1, 0.2]  # exponential, no jitter
        assert outcome.retried == 2 and outcome.attempts == 3

    def test_non_retryable_errors_propagate_immediately(self):
        calls = []

        def wrong():
            calls.append(1)
            raise ValueError("a malformed request must never be retried")

        with pytest.raises(ValueError):
            retry_call(wrong, RetryPolicy(attempts=5), sleep=lambda _s: None)
        assert len(calls) == 1

    def test_exhausted_policy_raises_the_last_error(self):
        def always():
            raise TimeoutError("still down")

        with pytest.raises(TimeoutError):
            retry_call(always, RetryPolicy(attempts=2, jitter=0.0), sleep=lambda _s: None)

    def test_delay_is_capped_and_jittered(self):
        import random

        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=2.0, jitter=0.5)
        rng = random.Random(42)
        delay = policy.delay(5, rng)  # uncapped would be 10_000s
        assert 2.0 <= delay <= 3.0


# ---------------------------------------------------------------------------
# Crash-safe spill tier
# ---------------------------------------------------------------------------

class TestCrashSafeSpill:
    def _spilled(self, tmp_path):
        """A cache with one entry spilled to disk, and that spill's path."""
        cache = ArtifactCache("chaos", max_entries=1, spill_dir=tmp_path)
        cache.put("old", {"payload": list(range(50))})
        cache.put("new", "evicts-old")
        path = tmp_path / "chaos-old.pkl"
        assert path.exists()
        return cache, path

    def test_envelope_roundtrip(self, tmp_path):
        cache, _ = self._spilled(tmp_path)
        assert cache.get("old") == {"payload": list(range(50))}
        assert cache.stats.spill_loads == 1
        assert cache.stats.spill_errors == 0

    def test_truncated_spill_is_quarantined_miss(self, tmp_path):
        cache, path = self._spilled(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])  # torn write
        assert cache.get("old") is None
        assert cache.stats.spill_errors == 1
        assert not path.exists()
        assert path.with_suffix(".pkl.corrupt").exists()  # kept for post-mortems

    def test_garbage_file_is_quarantined_not_unpickled(self, tmp_path):
        cache, path = self._spilled(tmp_path)
        path.write_bytes(b"not a spill envelope at all")
        assert cache.get("old") is None
        assert cache.stats.spill_errors == 1
        assert path.with_suffix(".pkl.corrupt").exists()

    def test_flipped_payload_byte_fails_the_checksum(self, tmp_path):
        cache, path = self._spilled(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # bit rot in the pickle payload
        path.write_bytes(bytes(raw))
        assert cache.get("old") is None
        assert cache.stats.spill_errors == 1

    def test_injected_write_corruption_is_caught_at_load(self, tmp_path):
        cache = ArtifactCache("chaos", max_entries=1, spill_dir=tmp_path)
        with inject("cache.spill_write", "corrupt"):
            cache.put("old", "value")
            cache.put("new", "evicts-old")
        # The corrupt envelope was written; the load must reject it.
        assert cache.get("old") is None
        assert cache.stats.spill_errors >= 1

    def test_injected_write_failure_drops_the_entry(self, tmp_path):
        cache = ArtifactCache("chaos", max_entries=1, spill_dir=tmp_path)
        with inject("cache.spill_write", "raise"):
            cache.put("old", "value")
            cache.put("new", "evicts-old")
        assert cache.stats.spill_errors == 1
        assert cache.stats.spill_writes == 0
        assert list(tmp_path.glob("*.tmp")) == []  # no orphaned temp files
        assert cache.get("old") is None  # an ordinary miss, not an error

    def test_injected_load_failure_is_a_miss(self, tmp_path):
        cache, _ = self._spilled(tmp_path)
        with inject("cache.spill_load", "raise"):
            assert cache.get("old") is None
        assert cache.stats.spill_errors == 1

    def test_clear_removes_quarantined_and_temp_files(self, tmp_path):
        cache, path = self._spilled(tmp_path)
        path.write_bytes(b"junk")
        cache.get("old")  # quarantines
        cache.clear()
        assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# The degradation ladder through the service
# ---------------------------------------------------------------------------

class TestDegradationLadder:
    def test_planner_fault_falls_back_to_naive_interpreter(
        self, figure1_service, figure1_request, figure1_db1, figure1_db2
    ):
        # Fault-free reference run on a separate service instance.
        reference = ExplainService()
        reference.register_database(figure1_db1, "D1")
        reference.register_database(figure1_db2, "D2")
        baseline = reference.explain(figure1_request)

        with inject("plan.lower", "raise"):
            result = figure1_service.explain(figure1_request)
        rungs = {(r["site"], r["fallback"]) for r in result.degraded}
        assert ("plan.lower", "naive-interpreter") in rungs
        # The ladder guarantee: identical answers, only slower.
        assert _reports_equal(result.report, baseline.report)
        assert figure1_service.stats()["degradations"][
            "plan.lower:naive-interpreter"
        ] >= 1
        assert figure1_service.health()["status"] == "degraded"

    def test_planner_fault_preserves_scalar_query_results(
        self, figure1_service, figure1_request
    ):
        # Regression: result_left/result_right are computed through the
        # optimized planner; a planner fault must degrade them to the naive
        # interpreter, not silently erase them -- the problem is cached, so a
        # None would be served to every later (fault-free) request too.
        with inject("plan.lower", "raise"):
            degraded = figure1_service.explain(figure1_request)
        assert degraded.report.problem.result_left == 7.0
        assert degraded.report.problem.result_right == 6.0
        clean = figure1_service.explain(figure1_request)
        assert clean.report.problem.result_left == 7.0
        assert clean.report.problem.result_right == 6.0

    def test_degraded_reports_never_enter_the_report_cache(
        self, figure1_service, figure1_request
    ):
        with inject("plan.lower", "raise"):
            degraded = figure1_service.explain(figure1_request)
        assert degraded.degraded
        # The very next fault-free request must re-serve (and cache) the
        # clean run, not replay the degraded one.
        clean = figure1_service.explain(figure1_request)
        assert not clean.cached_report
        assert clean.degraded == []
        warm = figure1_service.explain(figure1_request)
        assert warm.cached_report

    def test_analyze_fault_degrades_to_heuristic_cost_model(
        self, figure1_service, figure1_request
    ):
        with inject("stats.analyze", "raise"):
            payload = figure1_service.analyze("D1")
        assert payload["degraded"][0]["fallback"] == "heuristic-cost-model"
        # No half-built statistics attached: the planner stays heuristic.
        assert getattr(figure1_service.database("D1"), "statistics", None) is None
        # Requests still serve correct answers on the heuristic model.
        result = figure1_service.explain(figure1_request)
        assert result.report.explanations is not None

    def test_solver_fault_is_a_typed_error_not_a_silent_answer(
        self, figure1_service, figure1_request
    ):
        with inject("solve.partition", "raise"):
            with pytest.raises(InjectedFault) as excinfo:
                figure1_service.explain(figure1_request)
        assert excinfo.value.site == "solve.partition"
        # An unexpected pipeline failure is a dependency-health signal.
        states = figure1_service.breakers.states()
        assert states["D1"]["total_failures"] == 1
        assert states["D2"]["total_failures"] == 1


class TestRunsAlignChaos:
    def test_aligner_fault_falls_back_to_reference_identically(self):
        from repro.relational.relation import Relation
        from repro.runs import align_runs

        left = Relation.from_records(
            [{"id": 1, "v": 1.0}, {"id": 2, "v": 2.0}, {"id": 3, "v": 3.0}],
            name="L",
        )
        right = Relation.from_records(
            [{"id": 1, "v": 1.0}, {"id": 2, "v": 9.0}, {"id": 4, "v": 4.0}],
            name="R",
        )
        baseline = align_runs(left, right, ("id",))
        assert baseline.degraded == []

        with inject("runs.align", "raise") as rule:
            degraded = align_runs(left, right, ("id",))
        # The "identical" contract: same canonical alignment, only via the
        # brute-force reference indexer, with the degradation recorded.
        assert degraded.canonical() == baseline.canonical()
        assert degraded.degraded == [
            {"site": "runs.align", "fallback": "reference-aligner"}
        ]
        assert rule.fired == 1


class TestServiceBreakers:
    def _failing_service(self, figure1_db1, figure1_db2, threshold=2):
        service = ExplainService(
            ServiceConfig(breaker_failures=threshold, breaker_reset_seconds=30.0)
        )
        service.register_database(figure1_db1, "D1")
        service.register_database(figure1_db2, "D2")
        return service

    def test_breaker_opens_and_rejects_fast(
        self, figure1_db1, figure1_db2, figure1_request
    ):
        service = self._failing_service(figure1_db1, figure1_db2)
        with inject("solve.partition", "raise"):
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    service.explain(figure1_request)
            started = time.perf_counter()
            with pytest.raises(CircuitOpenError):
                service.explain(figure1_request)
            assert time.perf_counter() - started < 0.1  # fail fast, no pipeline run
        assert service.health()["status"] == "degraded"
        assert service.breakers.states()["D1"]["state"] == "open"

    def test_deadline_expiry_does_not_trip_the_breaker(
        self, figure1_db1, figure1_db2, figure1_request
    ):
        from dataclasses import replace

        service = self._failing_service(figure1_db1, figure1_db2, threshold=1)
        with inject("solve.partition", "delay:0.05"):
            with pytest.raises(DeadlineExceeded):
                service.explain(replace(figure1_request, deadline_seconds=0.02))
        assert service.breakers.states()["D1"]["state"] == "closed"

    def test_unknown_database_keeps_priority_over_open_breaker(
        self, figure1_db1, figure1_db2, figure1_request
    ):
        from dataclasses import replace

        from repro.service import UnknownDatabaseError

        service = self._failing_service(figure1_db1, figure1_db2, threshold=1)
        with inject("solve.partition", "raise"):
            with pytest.raises(InjectedFault):
                service.explain(figure1_request)
        with pytest.raises(UnknownDatabaseError):
            service.explain(replace(figure1_request, database_left="nope"))


# ---------------------------------------------------------------------------
# Deadlines end to end
# ---------------------------------------------------------------------------

class TestDeadlinesEndToEnd:
    def test_partial_solve_returns_incumbent_with_gap(self, partitioned_problem):
        full = PartitionedSolver(
            partitioned_problem, SolveConfig(partitioning="smart", batch_size=10, workers=1)
        )
        exact = full.solve()
        assert full.stats.num_partitions > 2

        FAULTS.arm("solve.partition", "delay:0.02")
        deadline = Deadline.after(0.03)
        solver = PartitionedSolver(
            partitioned_problem,
            SolveConfig(partitioning="smart", batch_size=10, workers=1),
            deadline=deadline,
            allow_partial=True,
        )
        merged = solver.solve()
        FAULTS.reset()
        assert solver.stats.partial
        assert solver.stats.unsolved_partitions > 0
        assert solver.stats.optimality_gap > 0
        # The incumbent is feasible but no better than the exact optimum
        # (the objective is maximized).
        assert merged.objective <= exact.objective + 1e-9

    def test_deadline_error_mode_raises_within_one_checkpoint(
        self, synthetic_service
    ):
        from dataclasses import replace

        service, request = synthetic_service
        service.explain(request)  # prewarm stage 1 so the budget covers solving
        hurried = replace(
            request,
            config=replace(request.config, min_summary_precision=0.7),
            deadline_seconds=0.03,
            on_deadline="error",
        )
        FAULTS.arm("solve.partition", "delay:0.02")
        started = time.perf_counter()
        with pytest.raises(DeadlineExceeded):
            service.explain(hurried)
        elapsed = time.perf_counter() - started
        FAULTS.reset()
        # budget + one checkpoint interval (one delayed partition) + slack
        assert elapsed < 1.0

    def test_partial_mode_returns_marked_result_and_skips_cache(
        self, synthetic_service
    ):
        from dataclasses import replace

        service, request = synthetic_service
        service.explain(request)  # prewarm stage 1
        hurried = replace(
            request,
            config=replace(request.config, min_summary_precision=0.7),
            deadline_seconds=0.05,
            on_deadline="partial",
        )
        FAULTS.arm("solve.partition", "delay:0.02")
        result = service.explain(hurried)
        FAULTS.reset()
        rungs = {r["site"] for r in result.degraded}
        assert "solve.partition" in rungs
        solve_rung = next(r for r in result.degraded if r["site"] == "solve.partition")
        assert solve_rung["fallback"] == "partial-incumbent"
        assert solve_rung["unsolved_partitions"] > 0
        assert solve_rung["optimality_gap"] > 0
        assert result.report.stats.partial
        assert result.deadline["seconds"] == 0.05

        # A later unhurried request with the same key must get the full
        # answer, not the cached partial one.
        unhurried = replace(hurried, deadline_seconds=None, on_deadline="error")
        clean = service.explain(unhurried)
        assert clean.degraded == []
        assert not clean.report.stats.partial

    def test_cancellation_surfaces_as_typed_error(self, synthetic_service):
        from dataclasses import replace

        service, request = synthetic_service
        service.explain(request)
        event = threading.Event()
        event.set()  # cancelled before it even starts
        cancelled = replace(
            request,
            config=replace(request.config, min_summary_precision=0.7),
            cancel_event=event,
        )
        with pytest.raises(OperationCancelled):
            service.explain(cancelled)


# ---------------------------------------------------------------------------
# Cancel-while-running (the race the job queue must win)
# ---------------------------------------------------------------------------

class TestCancelWhileRunning:
    def test_running_job_settles_cancelled(self, synthetic_service):
        from dataclasses import replace

        service, request = synthetic_service
        service.explain(request)  # prewarm stage 1 so the job spends time solving
        slow = replace(
            request, config=replace(request.config, min_summary_precision=0.7)
        )
        queue = JobQueue(service.explain, max_workers=1)
        FAULTS.arm("solve.partition", "delay:0.1")
        try:
            job = queue.submit(slow)
            deadline = time.monotonic() + 5.0
            while job.state is not JobState.RUNNING:
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.005)
            time.sleep(0.02)  # let it get into the solve loop
            assert queue.cancel(job.id)
            assert job.cancel_requested
            assert job.wait(10.0)
            assert job.state is JobState.CANCELLED
            assert queue.stats.cancelled == 1
            assert queue.stats.failed == 0
        finally:
            FAULTS.reset()
            queue.shutdown(wait=False)

    def test_cancelled_running_job_does_not_poison_the_cache(
        self, synthetic_service
    ):
        from dataclasses import replace

        service, request = synthetic_service
        service.explain(request)
        slow = replace(
            request, config=replace(request.config, min_summary_precision=0.65)
        )
        queue = JobQueue(service.explain, max_workers=1)
        FAULTS.arm("solve.partition", "delay:0.1")
        try:
            job = queue.submit(slow)
            deadline = time.monotonic() + 5.0
            while job.state is not JobState.RUNNING:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            queue.cancel(job.id)
            assert job.wait(10.0)
        finally:
            FAULTS.reset()
            queue.shutdown(wait=False)
        # The same request afresh (no cancel event) must serve a clean,
        # complete answer.
        clean = service.explain(
            replace(slow, cancel_event=None)
        )
        assert clean.degraded == []
        assert not clean.report.stats.partial


# ---------------------------------------------------------------------------
# Live ingest under faults and under concurrent reads
# ---------------------------------------------------------------------------

class TestLiveIngestChaos:
    _SPECS = [{"op": "insert", "record": {"Program": "Math", "Degree": "B.S."}}]

    def test_injected_ingest_fault_is_typed_and_state_stays_pre_delta(
        self, figure1_service
    ):
        before = figure1_service.databases()["D1"]
        with inject("live.apply_delta", "raise"):
            with pytest.raises(InjectedFault) as excinfo:
                figure1_service.ingest("D1", "D1", self._SPECS)
        assert excinfo.value.site == "live.apply_delta"
        # The gate sits before any state change: fingerprint, counters and
        # the idempotency log are all pre-delta, so a retry applies cleanly.
        assert figure1_service.databases()["D1"] == before
        assert figure1_service.stats()["ingests_applied"] == 0
        summary = figure1_service.ingest("D1", "D1", self._SPECS)
        assert summary["applied"] is True
        assert figure1_service.databases()["D1"] == summary["fingerprint"] != before

    def test_concurrent_ingest_and_explain_is_pre_or_post_never_torn(
        self, figure1_request
    ):
        from repro.datasets.sql_catalog import figure1_databases
        from repro.fleet.__main__ import canonical_report
        from repro.live import apply_changes

        def fresh_service(mutate: bool = False) -> ExplainService:
            db1, db2, _ = figure1_databases()
            if mutate:
                apply_changes(db1.relation("D1"), self._SPECS)
            service = ExplainService()
            service.register_database(db1, "D1")
            service.register_database(db2, "D2")
            return service

        def canon(service: ExplainService) -> str:
            return canonical_report(service.explain(figure1_request).report.to_dict())

        pre = canon(fresh_service())
        post = canon(fresh_service(mutate=True))
        assert pre != post  # the delta visibly changes the answer

        service = fresh_service()
        assert canon(service) == pre  # warm every cache layer
        answers: list[str] = []
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    answers.append(canon(service))
                except BaseException as exc:  # noqa: BLE001 - collected for assert
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        FAULTS.arm("live.apply_delta", "delay:0.02")  # widen the swap window
        try:
            service.ingest("D1", "D1", self._SPECS)
        finally:
            FAULTS.reset()
        time.sleep(0.05)  # let readers observe the post-delta version
        stop.set()
        for thread in threads:
            thread.join(10.0)
        assert not errors
        # Every concurrent answer is the pre- or the post-delta report,
        # byte-identical to the matching cold rebuild -- never a torn mix.
        assert set(answers) <= {pre, post}
        assert canon(service) == post  # and the delta is durably visible


class TestJobRetry:
    def test_transient_runner_failures_are_retried(self):
        attempts = []

        def flaky(request):
            attempts.append(request)
            if len(attempts) < 3:
                raise ConnectionError("transient")
            return "served"

        queue = JobQueue(
            flaky,
            max_workers=1,
            retry_policy=RetryPolicy(attempts=3, base_delay=0.001, jitter=0.0),
        )
        job = queue.submit("r")
        assert job.wait(5.0)
        assert job.state is JobState.DONE
        assert job.result == "served"
        assert job.retries == 2
        assert job.status()["retries"] == 2
        queue.shutdown(wait=False)

    def test_typed_errors_are_not_retried(self):
        attempts = []

        def wrong(request):
            attempts.append(request)
            raise ValueError("bad spec")

        queue = JobQueue(
            wrong,
            max_workers=1,
            retry_policy=RetryPolicy(attempts=5, base_delay=0.001),
        )
        job = queue.submit("r")
        assert job.wait(5.0)
        assert job.state is JobState.FAILED
        assert len(attempts) == 1
        queue.shutdown(wait=False)

"""Edge cases for physical operators under cost-based planning, join-reorder
equivalence, EXPLAIN dedup accounting and fuzz reproducibility."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.relational.executor import Database, evaluate, execute
from repro.relational.expressions import col
from repro.relational.query import (
    Join,
    Scan,
    Select,
    Union,
    count_query,
)
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, DataType, Schema
from repro.plan import MultiJoinExec, NestedLoopJoinExec, plan_node, plan_query
from repro.sql import parse_query
from repro.sql.fuzz import (
    fuzz_round,
    stats_database,
    stats_fuzz_round,
    toy_database,
)


def _assert_equivalent(node, db, *, message: str = ""):
    """Planned (stats-off and stats-on) == naive, rows + order + lineage."""
    naive = evaluate(node, db)
    stats_were = db.statistics
    db.statistics = None
    try:
        off = plan_node(node, db).execute()
    finally:
        db.statistics = stats_were
    if db.statistics is None:
        db.analyze()
    on = plan_node(node, db).execute()
    assert off.fingerprint() == naive.fingerprint(), f"stats-off diverged {message}"
    assert on.fingerprint() == naive.fingerprint(), f"stats-on diverged {message}"
    return naive


def _relation(name: str, schema: Schema, rows: list[tuple]) -> Relation:
    relation = Relation(schema, name=name)
    for values in rows:
        relation.append(values)
    return relation


INT = DataType.INTEGER
STR = DataType.STRING


class TestJoinEdgeCases:
    """The classic places where cost-based join rewrites go wrong."""

    def _db(self, left_rows, right_rows) -> Database:
        db = Database("edge")
        db.add(
            _relation("L", Schema([Attribute("a", INT), Attribute("b", STR)]), left_rows)
        )
        db.add(
            _relation("R", Schema([Attribute("c", INT), Attribute("d", STR)]), right_rows)
        )
        return db

    def test_empty_build_side(self):
        db = self._db([(1, "x"), (2, "y")], [])
        node = Join(Scan("L"), Scan("R"), on=(("a", "c"),))
        assert len(_assert_equivalent(node, db)) == 0

    def test_empty_probe_side(self):
        db = self._db([], [(1, "x"), (2, "y")])
        node = Join(Scan("L"), Scan("R"), on=(("a", "c"),))
        assert len(_assert_equivalent(node, db)) == 0

    def test_both_sides_empty(self):
        db = self._db([], [])
        node = Join(Scan("L"), Scan("R"), on=(("a", "c"),))
        assert len(_assert_equivalent(node, db)) == 0

    def test_all_null_first_key_matches_null_to_null(self):
        """The interpreter's first on-pair uses dict equality: NULL = NULL
        *holds* -- every planner path must reproduce that quirk."""
        db = self._db([(None, "x"), (None, "y")], [(None, "p"), (1, "q")])
        node = Join(Scan("L"), Scan("R"), on=(("a", "c"),))
        result = _assert_equivalent(node, db)
        assert len(result) == 2  # 2 NULL left rows x the 1 NULL right row
        assert all(row.values[0] is None for row in result)

    def test_all_null_second_key_rejects(self):
        """Every on-pair after the first is null-rejecting."""
        db = Database("edge2")
        db.add(
            _relation(
                "L",
                Schema([Attribute("a", INT), Attribute("b", INT)]),
                [(1, None), (1, 2)],
            )
        )
        db.add(
            _relation(
                "R",
                Schema([Attribute("c", INT), Attribute("d", INT)]),
                [(1, None), (1, 2)],
            )
        )
        node = Join(Scan("L"), Scan("R"), on=(("a", "c"), ("b", "d")))
        result = _assert_equivalent(node, db)
        assert len(result) == 1  # only the (1, 2) x (1, 2) pair survives

    def test_single_row_build(self):
        db = self._db([(1, "x"), (2, "y"), (1, "z")], [(1, "only")])
        node = Join(Scan("L"), Scan("R"), on=(("a", "c"),))
        result = _assert_equivalent(node, db)
        assert len(result) == 2

    def test_duplicate_heavy_skewed_keys(self):
        left = [(1, f"l{i}") for i in range(25)] + [(2, "l-two")]
        right = [(1, f"r{i}") for i in range(25)] + [(3, "r-three")]
        db = self._db(left, right)
        node = Join(Scan("L"), Scan("R"), on=(("a", "c"),))
        result = _assert_equivalent(node, db)
        assert len(result) == 625

    def test_three_way_chain_with_empty_middle(self):
        db = Database("edge3")
        db.add(_relation("A", Schema([Attribute("x", INT)]), [(1,), (2,)]))
        db.add(
            _relation("B", Schema([Attribute("x2", INT), Attribute("y", INT)]), [])
        )
        db.add(_relation("C", Schema([Attribute("y2", INT)]), [(7,)]))
        node = Join(
            Join(Scan("A"), Scan("B"), on=(("x", "x2"),)),
            Scan("C"),
            on=(("y", "y2"),),
        )
        assert len(_assert_equivalent(node, db)) == 0


class TestMultiJoinReordering:
    def _chain_db(self) -> Database:
        db = Database("chain")
        db.add_records("A", [{"aid": i, "x": i % 5} for i in range(60)])
        db.add_records("B", [{"x2": i % 5, "y": i % 20} for i in range(60)])
        db.add_records("C", [{"y2": i, "w": f"w{i}"} for i in range(4)])
        return db

    def _chain(self) -> Join:
        return Join(
            Join(Scan("A"), Scan("B"), on=(("x", "x2"),)),
            Scan("C"),
            on=(("y", "y2"),),
        )

    def test_chain_reorders_and_stays_identical(self):
        db = self._chain_db()
        _assert_equivalent(self._chain(), db)
        plan = plan_node(self._chain(), db)
        multi = [op for op in plan.operators if isinstance(op, MultiJoinExec)]
        assert len(multi) == 1
        # The 4-row C dimension must move off the last slot.
        assert multi[0].order != tuple(range(3))
        assert plan.used_statistics
        assert "order=[" in multi[0].detail()

    def test_reorder_through_projection_and_aggregate(self):
        db = self._chain_db()
        query = count_query("q", self._chain(), attribute="aid")
        naive = execute(query, db, planner="naive")
        db.analyze()
        planned = execute(query, db, planner="optimized")
        assert planned.fingerprint() == naive.fingerprint()
        plan = plan_query(query, db)
        assert any(isinstance(op, MultiJoinExec) for op in plan.operators)

    def test_four_way_chain(self):
        db = self._chain_db()
        db.add_records("D", [{"w2": f"w{i}", "z": i} for i in range(3)])
        node = Join(
            Join(
                Join(Scan("A"), Scan("B"), on=(("x", "x2"),)),
                Scan("C"),
                on=(("y", "y2"),),
            ),
            Scan("D"),
            on=(("w", "w2"),),
        )
        _assert_equivalent(node, db)

    def test_self_join_chain_shares_the_scan(self):
        db = self._chain_db()
        node = Join(
            Join(Scan("B"), Scan("B"), on=(("y", "y"),)),
            Scan("C"),
            on=(("y", "y2"),),
        )
        _assert_equivalent(node, db)

    def test_join_with_condition_stays_binary(self):
        """Joins carrying a residual condition must keep their position (the
        interpreter evaluates conditions over partial rows)."""
        db = self._chain_db()
        db.analyze()
        node = Join(
            Join(Scan("A"), Scan("B"), on=(("x", "x2"),), condition=col("y") > 2),
            Scan("C"),
            on=(("y", "y2"),),
        )
        naive = evaluate(node, db)
        plan = plan_node(node, db)
        assert not any(isinstance(op, MultiJoinExec) for op in plan.operators)
        assert plan.execute().fingerprint() == naive.fingerprint()

    def test_two_way_join_not_flattened(self):
        db = self._chain_db()
        db.analyze()
        plan = plan_node(Join(Scan("A"), Scan("B"), on=(("x", "x2"),)), db)
        assert not any(isinstance(op, MultiJoinExec) for op in plan.operators)

    def test_sql_chain_roundtrip(self):
        db = stats_database()
        sql = (
            "SELECT COUNT(*) FROM F "
            "JOIN D2 ON F.d2 = D2.k2 JOIN D1 ON F.d1 = D1.k1"
        )
        query = parse_query(sql, db, name="chain")
        naive = execute(query, db, planner="naive")
        db.analyze()
        assert execute(query, db, planner="optimized").fingerprint() == (
            naive.fingerprint()
        )


class TestNestedLoopDecision:
    def test_tiny_keyed_join_uses_nested_loop(self):
        db = Database("tiny")
        db.add_records("L", [{"a": 1}, {"a": 2}])
        db.add_records("R", [{"b": 2}, {"b": 3}])
        node = Join(Scan("L"), Scan("R"), on=(("a", "b"),))
        naive = evaluate(node, db)
        db.analyze()
        plan = plan_node(node, db)
        loops = [op for op in plan.operators if isinstance(op, NestedLoopJoinExec)]
        assert loops and loops[0].plain_pairs == (("a", "b"),)
        assert plan.execute().fingerprint() == naive.fingerprint()

    def test_keyed_nested_loop_respects_null_semantics(self):
        db = Database("tinynull")
        db.add_records("L", [{"a": None}, {"a": 1}])
        db.add_records("R", [{"b": None}, {"b": 1}])
        node = Join(Scan("L"), Scan("R"), on=(("a", "b"),))
        _assert_equivalent(node, db)

    def test_large_keyed_join_keeps_hash(self):
        db = Database("big")
        db.add_records("L", [{"a": i % 7} for i in range(50)])
        db.add_records("R", [{"b": i % 7} for i in range(50)])
        db.analyze()
        plan = plan_node(Join(Scan("L"), Scan("R"), on=(("a", "b"),)), db)
        assert any(op.name == "HashJoinExec" for op in plan.operators)


class TestExplainDedupAccounting:
    def _db(self) -> Database:
        db = Database("dedup")
        db.add_records("T", [{"k": i % 3, "v": i} for i in range(9)])
        return db

    @staticmethod
    def _walk(node):
        yield node
        for child in node.get("children", ()):
            yield from TestExplainDedupAccounting._walk(child)

    def test_shared_subplan_rows_reported_once(self):
        db = self._db()
        branch = Select(Scan("T"), col("k") == 1)
        plan = plan_node(Union((branch, branch)), db)
        assert plan.shared_subplans == 1
        payload = plan.explain(run=True).to_dict()
        json.dumps(payload)
        nodes = list(self._walk(payload["plan"]))
        references = [n for n in nodes if n.get("reference")]
        assert references, "the second occurrence must be marked as a reference"
        assert all("rows" not in n and "children" not in n for n in references)
        # Summing reported rows over the tree counts the shared work once:
        # union(3 + 3) + filter(3) + scan(9) -- not scan/filter twice.
        assert sum(n.get("rows", 0) for n in nodes) == 6 + 3 + 9
        text = plan.explain(run=True).describe()
        assert "(ref)" in text

    def test_unshared_plans_have_no_references(self):
        db = self._db()
        payload = plan_node(Select(Scan("T"), col("k") == 1), db).explain(
            run=True
        ).to_dict()
        assert not any(n.get("reference") for n in self._walk(payload["plan"]))


class TestFuzzReproducibility:
    """A fixed seed must yield a fixed query set, so CI failures that print
    their seed reproduce exactly with ``--fuzz 1 --seed <seed>``."""

    GOLDEN_FUZZ = {
        0: "SELECT * FROM S WHERE NOT (genre IS NULL AND genre NOT IN ('noir') "
           "OR rid BETWEEN 22 AND 27)",
        7: "SELECT COUNT(*) FROM R, S WHERE R.score = S.rid "
           "AND year BETWEEN 434 AND 1992",
    }
    GOLDEN_STATS_FUZZ = {
        13: "SELECT SUM(amount) FROM F JOIN D2 ON F.d2 = D2.k2 "
            "JOIN D1 ON F.d1 = D1.k1",
        3000: "SELECT COUNT(*) FROM D3, D1 WHERE D3.k3 = D1.k1 AND label != 'L1'",
    }
    FUZZ_BATCH_SHA = "f2fc58e1a3ed74e35d727929c1bc52b958eaffaf0d385931b98c5f4a038fd524"
    STATS_BATCH_SHA = "91bbe4953f938d12f3dbfecb4bbec4435762f40e57f87ab997e8306687ed738a"

    def test_golden_queries_for_fixed_seeds(self):
        db = toy_database()
        for seed, sql in self.GOLDEN_FUZZ.items():
            assert fuzz_round(seed, db) == sql
        sdb = stats_database()
        for seed, sql in self.GOLDEN_STATS_FUZZ.items():
            assert stats_fuzz_round(seed, sdb) == sql

    def test_fixed_seed_yields_fixed_query_set(self):
        db = toy_database()
        batch = "\n".join(fuzz_round(1000 + i, db) for i in range(50))
        assert hashlib.sha256(batch.encode()).hexdigest() == self.FUZZ_BATCH_SHA
        sdb = stats_database()
        stats_batch = "\n".join(stats_fuzz_round(3000 + i, sdb) for i in range(50))
        assert (
            hashlib.sha256(stats_batch.encode()).hexdigest() == self.STATS_BATCH_SHA
        )

    def test_generator_databases_are_deterministic(self):
        assert toy_database().fingerprint() == toy_database().fingerprint()
        assert stats_database().fingerprint() == stats_database().fingerprint()


@pytest.mark.slow
class TestStatsFuzz300:
    """The acceptance-criteria equivalence sweep: >= 300 fuzzed queries."""

    def test_stats_fuzz_300_rounds(self):
        from repro.sql.__main__ import _run_stats_fuzz

        assert _run_stats_fuzz(300, seed=13) == 0

    def test_plan_fuzz_300_rounds(self):
        from repro.sql.__main__ import _run_plan_fuzz

        assert _run_plan_fuzz(300, seed=11) == 0

"""Unit tests for the instance-based schema matcher."""

import pytest

from repro.matching.schema_matcher import AttributeProfile, SchemaMatcher, infer_attribute_matches
from repro.matching.attribute_match import SemanticRelation
from repro.relational.executor import Database
from repro.relational.provenance import provenance_relation
from repro.relational.query import Scan, count_query, sum_query


@pytest.fixture()
def profiles():
    programs = AttributeProfile.from_values(
        "Program", ["Computer Science", "Electrical Engineering", "History", "Biology"]
    )
    majors = AttributeProfile.from_values(
        "Major", ["Computer Science", "Electrical Engineering", "History", "Chemistry"]
    )
    years = AttributeProfile.from_values("year", [1999, 2000, 2001])
    return programs, majors, years


class TestProfiles:
    def test_numeric_detection(self, profiles):
        programs, _, years = profiles
        assert years.is_numeric
        assert not programs.is_numeric

    def test_distinct_count(self, profiles):
        assert profiles[0].distinct_count == 4


class TestScoring:
    def test_similar_attributes_score_high(self, profiles):
        programs, majors, years = profiles
        matcher = SchemaMatcher()
        assert matcher.score(programs, majors) > 0.4
        assert matcher.score(programs, years) < 0.2

    def test_type_mismatch_gets_no_value_score(self, profiles):
        programs, _, years = profiles
        assert SchemaMatcher()._value_overlap(programs, years) == 0.0

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            SchemaMatcher(name_weight=0.9, value_weight=0.9)


class TestMatching:
    def test_match_profiles_greedy_one_to_one(self, profiles):
        programs, majors, years = profiles
        result = SchemaMatcher().match_profiles([programs, years], [majors, years])
        pairs = result.attribute_pairs()
        assert ("Program", "Major") in pairs

    def test_match_provenance_infers_program_major(self):
        db1 = Database("d1")
        db1.add_records("Major", [{"Major": "Computer Science", "Degree": "B.S."},
                                  {"Major": "History", "Degree": "B.A."}])
        db2 = Database("d2")
        db2.add_records("Stats", [{"Program": "Computer Science", "bach": 1},
                                  {"Program": "History", "bach": 1}])
        p1 = provenance_relation(count_query("q1", Scan("Major"), attribute="Major"), db1)
        p2 = provenance_relation(sum_query("q2", Scan("Stats"), "bach"), db2)
        matches = infer_attribute_matches(p1, p2)
        assert matches.comparable
        assert ("Major", "Program") in matches.attribute_pairs()

    def test_containment_direction(self):
        # Left values are contained in right values -> less general.
        left = AttributeProfile.from_values("major", ["Accounting", "Finance"])
        right = AttributeProfile.from_values(
            "college", ["Accounting and Finance School", "Engineering College"]
        )
        matcher = SchemaMatcher(containment_margin=0.1)
        assert matcher._relation_for(left, right) is SemanticRelation.LESS_GENERAL
        assert matcher._relation_for(right, left) is SemanticRelation.MORE_GENERAL

"""Unit tests for similarity, blocking, tuple matching and calibration."""

import pytest
from hypothesis import given, strategies as st

from repro.matching.attribute_match import AttributeMatch, AttributeMatching, SemanticRelation, matching
from repro.matching.blocking import TokenBlocker, all_pairs
from repro.matching.calibration import SimilarityCalibrator, calibrate_matches
from repro.matching.similarity import (
    combined_similarity,
    jaro_similarity,
    normalized_euclidean_similarity,
    token_containment,
    token_jaccard,
    tokenize,
)
from repro.matching.tuple_matching import CandidateMatch, TupleMapping, TupleMatch, generate_candidates


class TestSimilarity:
    def test_tokenize(self):
        assert tokenize("Computer Science, B.S.") == frozenset({"computer", "science", "b", "s"})
        assert tokenize(None) == frozenset()

    def test_jaccard_identical(self):
        assert token_jaccard("Computer Science", "computer science") == 1.0

    def test_jaccard_disjoint(self):
        assert token_jaccard("Math", "Biology") == 0.0

    def test_jaccard_partial(self):
        assert token_jaccard("Food Science", "Food Business") == pytest.approx(1 / 3)

    def test_jaccard_both_empty(self):
        assert token_jaccard("", "") == 1.0

    def test_euclidean(self):
        assert normalized_euclidean_similarity(3, 3) == 1.0
        assert normalized_euclidean_similarity(3, 4) == pytest.approx(0.5)
        assert normalized_euclidean_similarity(None, 4) == 0.0

    def test_combined_similarity_mixes_types(self):
        left = {"title": "Alpha Movie", "year": 1999}
        right = {"title": "Alpha Movie", "year": 2000}
        score = combined_similarity(left, right, [("title", "title"), ("year", "year")])
        assert score == pytest.approx((1.0 + 0.5) / 2)

    def test_combined_similarity_empty_pairs(self):
        assert combined_similarity({}, {}, []) == 0.0

    def test_containment(self):
        assert token_containment("Food Science", "Applied Food Science Studies") == 1.0
        assert token_containment("Food Science", "Food Business") == 0.5

    def test_jaro_identity_and_bounds(self):
        assert jaro_similarity("martha", "martha") == 1.0
        assert jaro_similarity("", "abc") == 0.0
        assert 0.0 < jaro_similarity("martha", "marhta") < 1.0

    @given(st.text(max_size=30), st.text(max_size=30))
    def test_jaccard_properties(self, a, b):
        score = token_jaccard(a, b)
        assert 0.0 <= score <= 1.0
        assert score == token_jaccard(b, a)


class TestBlocking:
    def test_all_pairs(self):
        assert list(all_pairs([1, 2], [1, 2, 3])) == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_token_blocker_finds_shared_tokens(self):
        left = [{"name": "Computer Science"}, {"name": "History"}]
        right = [{"name": "Computer Engineering"}, {"name": "Art History"}]
        blocker = TokenBlocker([("name", "name")])
        pairs = set(blocker.candidate_pairs(left, right))
        assert (0, 0) in pairs
        assert (1, 1) in pairs
        assert (0, 1) not in pairs

    def test_token_blocker_covers_every_nonzero_similarity_pair(self):
        left = [{"name": f"prog {i} alpha"} for i in range(10)]
        right = [{"name": f"prog {i} beta"} for i in range(10)]
        blocker = TokenBlocker([("name", "name")])
        blocked = set(blocker.candidate_pairs(left, right))
        for i, lrec in enumerate(left):
            for j, rrec in enumerate(right):
                if token_jaccard(lrec["name"], rrec["name"]) > 0:
                    assert (i, j) in blocked

    def test_token_blocker_numeric_fallback(self):
        left = [{"v": 1}, {"v": 2}]
        right = [{"v": 1}, {"v": 3}]
        blocker = TokenBlocker([("v", "v")])
        assert set(blocker.candidate_pairs(left, right)) == set(all_pairs(left, right))


class TestTupleMapping:
    def make(self) -> TupleMapping:
        return TupleMapping(
            [
                TupleMatch("a", "x", 0.9),
                TupleMatch("a", "y", 0.4),
                TupleMatch("b", "y", 0.8),
            ]
        )

    def test_len_and_contains(self):
        mapping = self.make()
        assert len(mapping) == 3
        assert ("a", "x") in mapping
        assert ("b", "x") not in mapping

    def test_duplicate_pairs_ignored(self):
        mapping = self.make()
        mapping.add(TupleMatch("a", "x", 0.1))
        assert len(mapping) == 3
        assert mapping.probability("a", "x") == 0.9

    def test_indexes(self):
        mapping = self.make()
        assert {m.right_key for m in mapping.for_left("a")} == {"x", "y"}
        assert {m.left_key for m in mapping.for_right("y")} == {"a", "b"}
        assert mapping.left_keys() == {"a", "b"}

    def test_above(self):
        assert {m.pair for m in self.make().above(0.8)} == {("a", "x"), ("b", "y")}

    def test_best_per_left(self):
        best = self.make().best_per_left()
        assert best.probability("a", "x") == 0.9
        assert best.probability("a", "y") is None

    def test_sorted_by_probability(self):
        ordered = self.make().sorted_by_probability()
        assert [m.probability for m in ordered] == [0.9, 0.8, 0.4]

    def test_restricted_to(self):
        restricted = self.make().restricted_to({"a"}, {"x", "y"})
        assert restricted.pairs() == {("a", "x"), ("a", "y")}


class _Entity:
    def __init__(self, key, values):
        self.key = key
        self.values = values


class TestCandidateGeneration:
    def test_generate_candidates_scores_pairs(self):
        left = [_Entity("l0", {"name": "Computer Science"}), _Entity("l1", {"name": "History"})]
        right = [_Entity("r0", {"name": "Computer Science"}), _Entity("r1", {"name": "Art"})]
        candidates = generate_candidates(left, right, matching(("name", "name")))
        pairs = {(c.left_key, c.right_key): c.similarity for c in candidates}
        assert pairs[("l0", "r0")] == 1.0
        assert ("l1", "r1") not in pairs  # zero similarity is dropped

    def test_min_similarity_threshold(self):
        left = [_Entity("l0", {"name": "Food Science"})]
        right = [_Entity("r0", {"name": "Food Business"})]
        weak = generate_candidates(left, right, matching(("name", "name")), min_similarity=0.5)
        assert weak == []


class TestCalibration:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            SimilarityCalibrator().probability(0.5)

    def test_fit_learns_bucket_fractions(self):
        calibrator = SimilarityCalibrator(num_buckets=2)
        sims = [0.1, 0.2, 0.3, 0.8, 0.9, 0.95]
        labels = [False, False, True, True, True, True]
        calibrator.fit(sims, labels)
        assert calibrator.probability(0.1) == pytest.approx(1 / 3, abs=1e-6)
        assert calibrator.probability(0.9) > 0.9

    def test_probabilities_are_clamped(self):
        calibrator = SimilarityCalibrator(num_buckets=2).fit([0.1, 0.9], [False, True])
        assert 0.0 < calibrator.probability(0.05) < 1.0
        assert 0.0 < calibrator.probability(0.95) < 1.0

    def test_empty_bucket_interpolation(self):
        calibrator = SimilarityCalibrator(num_buckets=10).fit([0.05, 0.95], [False, True])
        middle = calibrator.probability(0.5)
        assert calibrator.probability(0.05) < middle < calibrator.probability(0.95)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            SimilarityCalibrator().fit([0.5], [True, False])

    def test_calibrate_matches_builds_mapping(self):
        candidates = [
            CandidateMatch("l0", "r0", 0.9),
            CandidateMatch("l1", "r1", 0.9),
            CandidateMatch("l0", "r1", 0.1),
        ]
        mapping = calibrate_matches(candidates, {("l0", "r0"), ("l1", "r1")}, num_buckets=5)
        assert len(mapping) == 3
        assert mapping.probability("l0", "r0") > mapping.probability("l0", "r1")

    def test_calibrate_matches_min_probability_filters(self):
        candidates = [CandidateMatch("l0", "r0", 0.9), CandidateMatch("l0", "r1", 0.05)]
        mapping = calibrate_matches(candidates, {("l0", "r0")}, min_probability=0.5)
        assert mapping.pairs() == {("l0", "r0")}

    def test_calibrate_matches_empty(self):
        assert len(calibrate_matches([], set())) == 0


class TestAttributeMatches:
    def test_semantic_relation_flip(self):
        assert SemanticRelation.LESS_GENERAL.flipped() is SemanticRelation.MORE_GENERAL
        assert SemanticRelation.EQUIVALENT.flipped() is SemanticRelation.EQUIVALENT

    def test_degree_limits(self):
        assert SemanticRelation.LESS_GENERAL.left_degree_limited
        assert not SemanticRelation.LESS_GENERAL.right_degree_limited
        assert SemanticRelation.EQUIVALENT.left_degree_limited
        assert SemanticRelation.EQUIVALENT.right_degree_limited

    def test_match_split(self):
        match = AttributeMatch(("zip", "city"), ("county",), SemanticRelation.LESS_GENERAL)
        pieces = match.split()
        assert len(pieces) == 2
        assert all(piece.relation is SemanticRelation.LESS_GENERAL for piece in pieces)

    def test_matching_constructor_and_pairs(self):
        attribute_matches = matching(("Program", "Major"), ("School", "College", "<="))
        assert attribute_matches.comparable
        assert attribute_matches.attribute_pairs() == [("Program", "Major"), ("School", "College")]
        assert attribute_matches.left_attributes() == ("Program", "School")

    def test_dominant_relation(self):
        assert matching(("a", "b")).dominant_relation() is SemanticRelation.EQUIVALENT
        assert matching(("a", "b"), ("c", "d", "<=")).dominant_relation() is SemanticRelation.LESS_GENERAL

    def test_flipped_matching(self):
        flipped = matching(("a", "b", "<=")).flipped()
        first = list(flipped)[0]
        assert first.left == ("b",)
        assert first.relation is SemanticRelation.MORE_GENERAL

    def test_empty_matching_not_comparable(self):
        assert not AttributeMatching().comparable

"""Unit tests for the baseline methods of Section 5.1.3."""

import pytest

from repro.baselines import (
    ExactCoverBaseline,
    Explain3DMethod,
    FormalExpBaseline,
    GreedyBaseline,
    RSwooshBaseline,
    ThresholdBaseline,
    all_methods,
)
from repro.core.scoring import ExplanationScorer, mapping_is_valid
from repro.matching.tuple_matching import TupleMapping, TupleMatch


class TestLineup:
    def test_all_methods_names(self):
        names = [method.name for method in all_methods()]
        assert names[0] == "Exp3D"
        assert any("Greedy" in name for name in names)
        assert any("FormalExp" in name for name in names)

    def test_include_unoptimized(self):
        names = [method.name for method in all_methods(include_unoptimized=True)]
        assert "Exp3D-NoOpt" in names

    def test_explain_timed(self, figure1_problem):
        timed = ThresholdBaseline(0.9).explain_timed(figure1_problem)
        assert timed.seconds >= 0.0
        assert timed.explanations is not None


class TestThreshold:
    def test_threshold_filters_matches(self, figure1_problem):
        explanations = ThresholdBaseline(0.93).explain(figure1_problem)
        # Only the 0.95 matches survive; CS/CSE (0.9) is dropped.
        assert len(explanations.evidence) == 5
        assert ("L", "T1:1") in explanations.provenance_identities()

    def test_low_threshold_keeps_everything(self, figure1_problem):
        explanations = ThresholdBaseline(0.5).explain(figure1_problem)
        assert len(explanations.evidence) == 6

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ThresholdBaseline(0.0)

    def test_cardinality_enforced(self, figure1_problem):
        explanations = ThresholdBaseline(0.5).explain(figure1_problem)
        assert mapping_is_valid(explanations.evidence, figure1_problem.relation)


class TestGreedy:
    def test_greedy_respects_validity(self, figure1_problem):
        explanations = GreedyBaseline().explain(figure1_problem)
        assert mapping_is_valid(explanations.evidence, figure1_problem.relation)

    def test_greedy_solves_figure1(self, figure1_problem):
        explanations = GreedyBaseline().explain(figure1_problem)
        assert len(explanations.evidence) == 6
        assert len(explanations.value) == 1

    def test_greedy_never_selects_negative_gain_matches(self):
        """A single very unlikely match is worse than two removals only when
        its probability is low enough; the greedy gain test must respect that."""
        from tests.test_milp_and_solving import make_problem

        problem = make_problem({"a": 1.0}, {"b": 1.0}, [("a", "b", 0.001)])
        explanations = GreedyBaseline().explain(problem)
        assert len(explanations.evidence) == 0
        assert len(explanations.provenance) == 2

    def test_greedy_objective_not_above_milp(self, figure1_problem):
        greedy = GreedyBaseline().explain(figure1_problem)
        milp = Explain3DMethod(partitioning="none").explain(figure1_problem)
        scorer = ExplanationScorer(
            figure1_problem.canonical_left,
            figure1_problem.canonical_right,
            figure1_problem.mapping,
            figure1_problem.priors,
        )
        assert scorer.score(greedy) <= scorer.score(milp) + 1e-6


class TestRSwoosh:
    def test_merges_identical_names(self, figure1_problem):
        explanations = RSwooshBaseline(threshold=0.75).explain(figure1_problem)
        # Accounting/ECE/EE/Management/Design match exactly; CS vs CSE does not.
        assert len(explanations.evidence) == 5
        assert ("L", "T1:1") in explanations.provenance_identities()

    def test_jaro_variant(self, figure1_problem):
        explanations = RSwooshBaseline(threshold=0.8, similarity="jaro").explain(figure1_problem)
        assert len(explanations.evidence) >= 5

    def test_invalid_similarity(self):
        with pytest.raises(ValueError):
            RSwooshBaseline(similarity="levenshtein")

    def test_transitive_merging(self):
        from tests.test_milp_and_solving import make_problem

        problem = make_problem(
            {"alpha beta": 1.0},
            {"alpha beta gamma": 1.0, "unrelated": 1.0},
            [("alpha beta", "alpha beta gamma", 0.9)],
        )
        explanations = RSwooshBaseline(threshold=0.6).explain(problem)
        assert ("T1:0", "T2:0") in explanations.evidence_pairs()


class TestExactCover:
    def test_exact_cover_covers_elements_at_most_once(self, figure1_problem):
        explanations = ExactCoverBaseline().explain(figure1_problem)
        left_counts = {}
        for left_key, _ in explanations.evidence_pairs():
            left_counts[left_key] = left_counts.get(left_key, 0) + 1
        assert all(count == 1 for count in left_counts.values())

    def test_exact_cover_empty_mapping(self):
        from tests.test_milp_and_solving import make_problem

        problem = make_problem({"a": 1.0}, {"b": 1.0}, [])
        explanations = ExactCoverBaseline().explain(problem)
        assert len(explanations.provenance) == 2


class TestFormalExp:
    def test_returns_provenance_only(self, figure1_problem):
        explanations = FormalExpBaseline(top_k=5).explain(figure1_problem)
        assert len(explanations.evidence) == 0
        assert explanations.value == []
        assert explanations.provenance  # it always proposes something

    def test_top_k_limits_predicates(self, small_academic_problem):
        problem, _ = small_academic_problem
        small = FormalExpBaseline(top_k=1).explain(problem)
        large = FormalExpBaseline(top_k=15).explain(problem)
        assert len(small.provenance) <= len(large.provenance)

    def test_predicate_explanations_reduce_the_gap(self, figure1_problem):
        baseline = FormalExpBaseline(top_k=3)
        explanations = baseline.explain(figure1_problem)
        # The disagreement is 7 vs 6, so any proposed predicate covers left tuples.
        assert all(identity[0] in {"L", "R"} for identity in explanations.provenance_identities())


class TestExplain3DMethod:
    def test_default_name_and_config(self):
        assert Explain3DMethod().name == "Exp3D"
        assert Explain3DMethod(partitioning="none").name == "Exp3D-NoOpt"
        assert Explain3DMethod(name="custom").name == "custom"

    def test_solves_figure1(self, figure1_problem):
        explanations = Explain3DMethod().explain(figure1_problem)
        assert len(explanations.value) == 1

"""Tests for the evaluation metrics, harness and reporting."""

import pytest

from repro.baselines import GreedyBaseline, ThresholdBaseline
from repro.core.explanations import ExplanationSet, ProvenanceExplanation, ValueExplanation
from repro.datasets.gold import GoldStandard
from repro.evaluation.harness import average_evaluations, run_method, run_methods
from repro.evaluation.metrics import (
    AccuracyMetrics,
    evaluate_evidence,
    evaluate_explanations,
    evaluate_method_output,
)
from repro.evaluation.reporting import format_accuracy_table, format_table, format_timing_table
from repro.graphs.bipartite import Side
from repro.matching.tuple_matching import TupleMapping, TupleMatch


class TestAccuracyMetrics:
    def test_from_sets(self):
        metrics = AccuracyMetrics.from_sets({1, 2, 3}, {2, 3, 4})
        assert metrics.precision == pytest.approx(2 / 3)
        assert metrics.recall == pytest.approx(2 / 3)
        assert metrics.f_measure == pytest.approx(2 / 3)

    def test_perfect(self):
        metrics = AccuracyMetrics.from_sets({1}, {1})
        assert metrics.f_measure == 1.0

    def test_empty_prediction_with_nonempty_gold(self):
        metrics = AccuracyMetrics.from_sets(set(), {1})
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0
        assert metrics.f_measure == 0.0

    def test_both_empty(self):
        metrics = AccuracyMetrics.from_sets(set(), set())
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0

    def test_as_dict(self):
        assert set(AccuracyMetrics.from_sets({1}, {1}).as_dict()) == {
            "precision", "recall", "f_measure",
        }


class TestExplanationEvaluation:
    def test_perfect_prediction(self, figure1_problem):
        gold = GoldStandard(
            evidence_pairs={(l, r) for l, r in zip(
                figure1_problem.canonical_left.keys(), figure1_problem.canonical_right.keys()
            )},
            provenance=set(),
            value={("L", "T1:1"), ("R", "T2:1")},
        )
        predicted = ExplanationSet(
            value=[ValueExplanation(Side.RIGHT, "T2:1", 1.0, 2.0)],
            evidence=TupleMapping([TupleMatch(l, r, 1.0) for l, r in gold.evidence_pairs]),
        )
        explanation_metrics = evaluate_explanations(predicted, gold, figure1_problem)
        evidence_metrics = evaluate_evidence(predicted, gold)
        assert explanation_metrics.f_measure == 1.0
        assert evidence_metrics.f_measure == 1.0

    def test_value_explanations_matched_per_component(self, figure1_problem):
        """Correcting either endpoint of a mismatched component counts as correct."""
        gold = GoldStandard(
            evidence_pairs={("T1:1", "T2:1")},
            provenance=set(),
            value={("R", "T2:1")},
        )
        predicted_left_side = ExplanationSet(
            value=[ValueExplanation(Side.LEFT, "T1:1", 2.0, 1.0)],
            evidence=TupleMapping([TupleMatch("T1:1", "T2:1", 1.0)]),
        )
        metrics = evaluate_explanations(predicted_left_side, gold, figure1_problem)
        assert metrics.f_measure == 1.0

    def test_provenance_requires_exact_identity(self, figure1_problem):
        gold = GoldStandard(provenance={("L", "T1:0")})
        predicted = ExplanationSet(provenance=[ProvenanceExplanation(Side.RIGHT, "T2:0")])
        metrics = evaluate_explanations(predicted, gold, figure1_problem)
        assert metrics.f_measure == 0.0

    def test_method_output_bundle(self, figure1_problem):
        gold = GoldStandard(provenance={("L", "T1:0")})
        predicted = ExplanationSet(provenance=[ProvenanceExplanation(Side.LEFT, "T1:0")])
        evaluation = evaluate_method_output("test", predicted, gold, figure1_problem, seconds=1.5)
        assert evaluation.method == "test"
        assert evaluation.seconds == 1.5
        assert evaluation.explanation.f_measure == 1.0
        assert evaluation.as_row()["expl_f"] == 1.0


class TestHarness:
    def test_run_method_and_methods(self, small_academic_problem):
        problem, gold = small_academic_problem
        evaluation = run_method(ThresholdBaseline(0.9), problem, gold)
        assert 0.0 <= evaluation.explanation.f_measure <= 1.0
        result = run_methods([ThresholdBaseline(0.9), GreedyBaseline()], problem, gold, name="x")
        assert len(result.evaluations) == 2
        assert result.method("Greedy").seconds >= 0.0
        assert result.problem_stats["canonical_left"] == len(problem.canonical_left)

    def test_average_evaluations(self, small_academic_problem):
        problem, gold = small_academic_problem
        first = run_method(ThresholdBaseline(0.9), problem, gold)
        average = average_evaluations([first, first])
        assert average.explanation.precision == pytest.approx(first.explanation.precision)
        assert average.extras["runs"] == 2

    def test_average_requires_single_method(self, small_academic_problem):
        problem, gold = small_academic_problem
        first = run_method(ThresholdBaseline(0.9), problem, gold)
        second = run_method(GreedyBaseline(), problem, gold)
        with pytest.raises(ValueError):
            average_evaluations([first, second])
        with pytest.raises(ValueError):
            average_evaluations([])


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "333" in table

    def test_accuracy_and_timing_tables(self, small_academic_problem):
        problem, gold = small_academic_problem
        evaluations = [run_method(ThresholdBaseline(0.9), problem, gold)]
        accuracy = format_accuracy_table(evaluations, kind="explanation")
        evidence = format_accuracy_table(evaluations, kind="evidence", title="Evidence")
        timing = format_timing_table(evaluations)
        assert "Precision" in accuracy
        assert evidence.splitlines()[0] == "Evidence"
        assert "Time (sec)" in timing

"""The SQL frontend's lexer and parser: tokens, shapes, and error positions."""

from __future__ import annotations

import pytest

from repro.sql import LexError, ParseError, parse_statement
from repro.sql import ast
from repro.sql.lexer import IDENT, KEYWORD, NUMBER, STRING, SYMBOL, tokenize


class TestLexer:
    def test_keywords_are_case_insensitive(self):
        for text in ("SELECT", "select", "Select"):
            token = tokenize(text)[0]
            assert token.kind == KEYWORD and token.value == "SELECT"

    def test_identifiers_preserve_case_and_quoting_escapes_keywords(self):
        tokens = tokenize('Movie "Table" "select"')
        assert [(t.kind, t.value) for t in tokens[:-1]] == [
            (IDENT, "Movie"), (IDENT, "Table"), (IDENT, "select"),
        ]

    def test_aggregate_names_are_plain_identifiers(self):
        token = tokenize("count")[0]
        assert token.kind == IDENT

    def test_string_literals_escape_quotes(self):
        token = tokenize("'O''Brien'")[0]
        assert token.kind == STRING and token.value == "O'Brien"

    def test_numbers_keep_int_float_distinction(self):
        values = [t.value for t in tokenize("1994 4.5 1e3 2.5e-2")[:-1]]
        assert values == [1994, 4.5, 1000.0, 0.025]
        assert isinstance(values[0], int) and isinstance(values[2], float)

    def test_comments_are_skipped(self):
        tokens = tokenize("SELECT -- trailing\n/* block\ncomment */ 1")
        assert [t.kind for t in tokens[:-1]] == [KEYWORD, NUMBER]

    def test_operators(self):
        symbols = [t.value for t in tokenize("= == != <> < <= > >= ( ) , . *")[:-1]]
        assert symbols == ["=", "==", "!=", "<>", "<", "<=", ">", ">=",
                           "(", ")", ",", ".", "*"]

    def test_positions_are_character_offsets(self):
        tokens = tokenize("SELECT  Major")
        assert tokens[0].position == 0
        assert tokens[1].position == 8

    def test_string_tokens_anchor_at_their_opening_quote(self):
        tokens = tokenize("SELECT 'abc' FROM T")
        assert tokens[1].kind == STRING and tokens[1].position == 7
        escaped = tokenize("'O''Brien' x")
        assert escaped[0].position == 0 and escaped[1].position == 11

    @pytest.mark.parametrize("bad, fragment", [
        ("'unterminated", "unterminated string"),
        ("/* never closed", "unterminated block comment"),
        ('"no close', "unterminated quoted identifier"),
        ("a ; b", "unexpected character ';'"),
    ])
    def test_lex_errors_carry_position(self, bad, fragment):
        with pytest.raises(LexError) as excinfo:
            tokenize(bad)
        assert fragment in str(excinfo.value)
        assert excinfo.value.position is not None


class TestParserShapes:
    def test_simple_aggregate(self):
        stmt = parse_statement("SELECT COUNT(Major) FROM Major")
        assert isinstance(stmt, ast.SelectCore)
        item = stmt.items[0]
        assert isinstance(item, ast.AggregateItem)
        assert item.function == "COUNT" and item.argument.name == "Major"

    def test_count_star_and_alias(self):
        stmt = parse_statement("SELECT COUNT(*) AS n FROM R")
        item = stmt.items[0]
        assert item.argument is None and item.alias == "n"

    def test_distinct_projection(self):
        stmt = parse_statement("SELECT DISTINCT a, b FROM R")
        assert stmt.distinct is True
        assert [i.ref.name for i in stmt.items] == ["a", "b"]

    def test_join_chain_nests_left_associatively(self):
        stmt = parse_statement(
            "SELECT * FROM A JOIN B ON A.x = B.x JOIN C ON B.y = C.y"
        )
        outer = stmt.sources[0]
        assert isinstance(outer, ast.JoinSource)
        assert isinstance(outer.left, ast.JoinSource)
        assert outer.right.name == "C"

    def test_subquery_source_with_alias(self):
        stmt = parse_statement("SELECT * FROM (SELECT * FROM R WHERE x = 1) AS s")
        source = stmt.sources[0]
        assert isinstance(source, ast.SubquerySource) and source.alias == "s"

    def test_comma_sources(self):
        stmt = parse_statement("SELECT * FROM A, B WHERE A.x = B.y")
        assert len(stmt.sources) == 2

    def test_and_or_precedence_and_left_nesting(self):
        stmt = parse_statement("SELECT * FROM R WHERE a = 1 AND b = 2 OR c = 3")
        where = stmt.where
        assert isinstance(where, ast.OrExpr)
        assert isinstance(where.left, ast.AndExpr)

    def test_parentheses_are_preserved_as_nodes(self):
        stmt = parse_statement("SELECT * FROM R WHERE a = 1 AND (b = 2 OR c = 3)")
        assert isinstance(stmt.where.right, ast.ParenExpr)
        assert isinstance(stmt.where.right.inner, ast.OrExpr)

    def test_in_between_like_is_null(self):
        stmt = parse_statement(
            "SELECT * FROM R WHERE a IN (1, 2) AND b NOT BETWEEN 3 AND 4 "
            "AND c LIKE '%x%' AND d IS NOT NULL"
        )
        conjuncts = []

        def flatten(expr):
            if isinstance(expr, ast.AndExpr):
                flatten(expr.left)
                flatten(expr.right)
            else:
                conjuncts.append(expr)

        flatten(stmt.where)
        kinds = [type(c) for c in conjuncts]
        assert kinds == [ast.InListExpr, ast.BetweenExpr, ast.LikeExpr, ast.IsNullExpr]
        assert conjuncts[1].negated is True
        assert conjuncts[3].negated is True

    def test_row_list_not_in_subquery(self):
        stmt = parse_statement(
            "SELECT * FROM R WHERE (a, b) NOT IN (SELECT a, b FROM S)"
        )
        where = stmt.where
        assert isinstance(where, ast.InSelectExpr)
        assert [ref.name for ref in where.refs] == ["a", "b"]
        assert where.negated is True

    def test_single_column_not_in_subquery(self):
        stmt = parse_statement("SELECT * FROM R WHERE a NOT IN (SELECT * FROM S)")
        assert isinstance(stmt.where, ast.InSelectExpr)

    def test_group_by(self):
        stmt = parse_statement("SELECT g, COUNT(x) FROM R GROUP BY g")
        assert [ref.name for ref in stmt.group_by] == ["g"]

    def test_union_and_except_chain(self):
        stmt = parse_statement("SELECT a FROM R UNION SELECT a FROM S EXCEPT SELECT a FROM T")
        assert isinstance(stmt, ast.CompoundSelect)
        assert [op for op, _ in stmt.tail] == ["UNION", "EXCEPT"]

    def test_parenthesized_compound_is_a_unit(self):
        stmt = parse_statement("(SELECT a FROM R UNION SELECT a FROM S) EXCEPT SELECT a FROM T")
        assert isinstance(stmt.first, ast.ParenStatement)
        assert isinstance(stmt.first.statement, ast.CompoundSelect)

    def test_qualified_refs_and_literals(self):
        stmt = parse_statement(
            "SELECT * FROM R WHERE R.x = 'str' AND y != -4 AND z = TRUE AND w = NULL"
        )
        assert stmt.where is not None

    def test_table_named_like_keyword_must_be_quoted(self):
        stmt = parse_statement('SELECT SUM(val) FROM "Table"')
        assert stmt.sources[0].name == "Table"


class TestParseErrors:
    def test_misspelled_from_reports_position_and_expected(self):
        with pytest.raises(ParseError) as excinfo:
            parse_statement("SELECT COUNT(title) FORM Movie")
        error = excinfo.value
        assert "FROM" in error.expected
        assert error.line == 1 and error.column == 21
        assert "identifier 'FORM'" in str(error)

    def test_missing_closing_paren(self):
        with pytest.raises(ParseError) as excinfo:
            parse_statement("SELECT COUNT(title FROM Movie")
        assert "')'" in excinfo.value.expected

    def test_trailing_garbage(self):
        with pytest.raises(ParseError) as excinfo:
            parse_statement("SELECT * FROM R extra nonsense")
        assert "end of input" in excinfo.value.expected

    def test_incomplete_where(self):
        with pytest.raises(ParseError) as excinfo:
            parse_statement("SELECT * FROM R WHERE x")
        assert any("comparison" in item for item in excinfo.value.expected)

    def test_multiline_error_positions(self):
        with pytest.raises(ParseError) as excinfo:
            parse_statement("SELECT *\nFROM Movie\nWHERE year == == 4")
        assert excinfo.value.line == 3

    def test_describe_renders_a_caret(self):
        with pytest.raises(ParseError) as excinfo:
            parse_statement("SELECT COUNT(title) FORM Movie")
        rendered = excinfo.value.describe()
        lines = rendered.splitlines()
        assert lines[0] == "SELECT COUNT(title) FORM Movie"
        assert lines[1].index("^") == 20

    def test_like_requires_a_string_pattern(self):
        with pytest.raises(ParseError) as excinfo:
            parse_statement("SELECT * FROM R WHERE x LIKE 5")
        assert "string pattern" in excinfo.value.expected

    def test_between_on_literal_left_side(self):
        with pytest.raises(ParseError) as excinfo:
            parse_statement("SELECT * FROM R WHERE 5 BETWEEN 1 AND 2")
        assert "column reference" in str(excinfo.value)

    def test_describe_survives_eof_after_trailing_newline(self):
        with pytest.raises(ParseError) as excinfo:
            parse_statement("SELECT COUNT(x) FROM\n")
        rendered = excinfo.value.describe()  # regression: used to IndexError
        assert "expected table name" in rendered

"""Tests for CSV loading/saving helpers."""

import pytest

from repro.relational.csvio import load_csv, relation_from_rows, save_csv
from repro.relational.relation import Relation
from repro.relational.schema import DataType


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        relation = Relation.from_records(
            [
                {"name": "Alpha", "year": 1999, "gross": 1.5},
                {"name": "Beta", "year": 2001, "gross": None},
            ],
            name="movies",
        )
        path = tmp_path / "movies.csv"
        save_csv(relation, path)
        loaded = load_csv(path)
        assert loaded.schema.names == ("name", "year", "gross")
        assert loaded.schema.dtype("year") is DataType.INTEGER
        assert loaded.column("name") == ["Alpha", "Beta"]
        assert loaded.column("gross") == [1.5, None]

    def test_load_names_relation_after_stem(self, tmp_path):
        relation = Relation.from_records([{"a": 1}], name="x")
        path = tmp_path / "things.csv"
        save_csv(relation, path)
        assert load_csv(path).name == "things"

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            load_csv(path)

    def test_type_inference_falls_back_to_string(self, tmp_path):
        path = tmp_path / "mixed.csv"
        path.write_text("a,b\n1,x\n2.5,y\n")
        loaded = load_csv(path)
        assert loaded.schema.dtype("a") is DataType.FLOAT
        assert loaded.schema.dtype("b") is DataType.STRING

    def test_relation_from_rows(self):
        relation = relation_from_rows("t", ["a", "b"], [[1, "x"], [2, "y"]])
        assert relation.schema.dtype("a") is DataType.INTEGER
        assert len(relation) == 2

    def test_relation_from_rows_with_dtypes(self):
        relation = relation_from_rows(
            "t", ["a"], [["3"]], dtypes=[DataType.INTEGER]
        )
        assert relation.column("a") == [3]

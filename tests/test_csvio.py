"""Tests for CSV/NDJSON loading/saving helpers."""

import pytest

from repro.relational.csvio import (
    load_csv,
    load_ndjson,
    read_ndjson_records,
    relation_from_rows,
    save_csv,
    save_ndjson,
)
from repro.relational.relation import Relation
from repro.relational.schema import DataType, Schema


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        relation = Relation.from_records(
            [
                {"name": "Alpha", "year": 1999, "gross": 1.5},
                {"name": "Beta", "year": 2001, "gross": None},
            ],
            name="movies",
        )
        path = tmp_path / "movies.csv"
        save_csv(relation, path)
        loaded = load_csv(path)
        assert loaded.schema.names == ("name", "year", "gross")
        assert loaded.schema.dtype("year") is DataType.INTEGER
        assert loaded.column("name") == ["Alpha", "Beta"]
        assert loaded.column("gross") == [1.5, None]

    def test_load_names_relation_after_stem(self, tmp_path):
        relation = Relation.from_records([{"a": 1}], name="x")
        path = tmp_path / "things.csv"
        save_csv(relation, path)
        assert load_csv(path).name == "things"

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            load_csv(path)

    def test_type_inference_falls_back_to_string(self, tmp_path):
        path = tmp_path / "mixed.csv"
        path.write_text("a,b\n1,x\n2.5,y\n")
        loaded = load_csv(path)
        assert loaded.schema.dtype("a") is DataType.FLOAT
        assert loaded.schema.dtype("b") is DataType.STRING

    def test_relation_from_rows(self):
        relation = relation_from_rows("t", ["a", "b"], [[1, "x"], [2, "y"]])
        assert relation.schema.dtype("a") is DataType.INTEGER
        assert len(relation) == 2

    def test_relation_from_rows_with_dtypes(self):
        relation = relation_from_rows(
            "t", ["a"], [["3"]], dtypes=[DataType.INTEGER]
        )
        assert relation.column("a") == [3]

    def test_underscored_digits_stay_strings(self, tmp_path):
        # "1_0" is a valid Python int literal but not tabular data's idea of
        # an integer; inference must not eat it.
        path = tmp_path / "codes.csv"
        path.write_text("code\n1_0\n2_5\n")
        assert load_csv(path).schema.dtype("code") is DataType.STRING


class TestNdjsonRoundTrip:
    def test_round_trip_preserves_types_and_nulls(self, tmp_path):
        # NDJSON is the typed wire format: empty string, NULL and booleans
        # all survive a round trip (CSV conflates the first two).
        relation = Relation.from_records(
            [
                {"name": "Alpha", "note": "", "score": 1.5, "ok": True},
                {"name": "Beta", "note": None, "score": None, "ok": False},
            ],
            name="runs",
        )
        path = tmp_path / "runs.ndjson"
        save_ndjson(relation, path)
        loaded = load_ndjson(path)
        assert loaded.name == "runs"
        assert loaded.schema.dtype("ok") is DataType.BOOLEAN
        assert loaded.column("note") == ["", None]
        assert loaded.column("score") == [1.5, None]

    def test_mixed_int_float_column_promotes_to_float(self, tmp_path):
        path = tmp_path / "mixed.ndjson"
        path.write_text('{"v": 1}\n{"v": 2.5}\n')
        loaded = load_ndjson(path)
        assert loaded.schema.dtype("v") is DataType.FLOAT
        assert loaded.column("v") == [1.0, 2.5]

    def test_schema_infer_scans_all_records(self):
        # Regression: Schema.infer used to type a column from its first
        # non-null value only; an int-then-float column must promote.
        schema = Schema.infer([{"v": 1}, {"v": 2.5}])
        assert schema.dtype("v") is DataType.FLOAT

    def test_missing_keys_fill_as_null_first_seen_order(self, tmp_path):
        path = tmp_path / "ragged.ndjson"
        path.write_text('{"a": 1, "b": "x"}\n{"a": 2, "c": true}\n')
        records, columns = read_ndjson_records(path)
        assert columns == ["a", "b", "c"]
        assert records[0]["c"] is None and records[1]["b"] is None

    def test_bad_line_reports_file_and_line(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"a": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.ndjson:2"):
            read_ndjson_records(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "list.ndjson"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="object"):
            read_ndjson_records(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.ndjson"
        path.write_text("\n\n")
        with pytest.raises(ValueError):
            load_ndjson(path)

"""The shared cross-process cache tier: write-through spill, reuse, safety.

The fleet's shared tier is the PR-2/PR-6 content-addressed disk spill with
write-through enabled.  These tests pin the three claims the fleet rests on:

* a second service sharing the spill directory serves *disk hits* with
  fingerprints identical to the first (cross-process reuse),
* concurrent writers racing on the same keys never corrupt the tier
  (content-addressing + atomic rename is the whole coordination protocol),
* ``flush()``/``persist_caches()`` make SIGTERM drain durable.
"""

from __future__ import annotations

import threading

from repro import Explain3DConfig, Priors, matching
from repro.service import ArtifactCache, ExplainRequest, ExplainService, ServiceConfig
from repro.service.cache import CacheRegistry
from repro.fleet.shared_cache import SHARED_TIERS, SharedCacheTier, aggregate_cache_stats


def _request(figure1_queries, figure1_mapping) -> ExplainRequest:
    q1, q2 = figure1_queries
    return ExplainRequest(
        query_left=q1,
        database_left="D1",
        query_right=q2,
        database_right="D2",
        attribute_matches=matching(("Program", "Major")),
        tuple_mapping=figure1_mapping,
        config=Explain3DConfig(partitioning="none", priors=Priors(0.9, 0.9)),
    )


class TestWriteThrough:
    def test_put_persists_eagerly_and_skips_existing(self, tmp_path):
        cache = ArtifactCache("t", max_entries=8, spill_dir=tmp_path, write_through=True)
        cache.put("k1", {"v": 1})
        assert cache.stats.spill_writes == 1
        assert list(tmp_path.glob("t-*.pkl"))  # on disk before any eviction
        # Content-addressed: a second put of the same key is the same bytes,
        # so the existing file short-circuits the write.
        cache.put("k1", {"v": 1})
        assert cache.stats.spill_writes == 1

    def test_write_through_entry_readable_by_sibling_cache(self, tmp_path):
        writer = ArtifactCache("t", max_entries=8, spill_dir=tmp_path, write_through=True)
        writer.put("k1", {"answer": 42})
        reader = ArtifactCache("t", max_entries=8, spill_dir=tmp_path)
        assert reader.get("k1") == {"answer": 42}
        assert reader.stats.spill_loads == 1  # a shared-disk hit, not a recompute

    def test_flush_persists_remaining_entries(self, tmp_path):
        cache = ArtifactCache("t", max_entries=8, spill_dir=tmp_path)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.stats.spill_writes == 0  # lazy by default
        assert cache.flush() == 2
        assert len(list(tmp_path.glob("t-*.pkl"))) == 2
        assert cache.flush() == 0  # idempotent: everything already on disk

    def test_registry_flush_sums_across_caches(self, tmp_path):
        registry = CacheRegistry(spill_dir=tmp_path)
        registry.cache("provenance").put("k", "v")
        registry.cache("report").put("k", "w")
        registry.cache("plans", spill=False).put("k", object())  # never spilled
        assert registry.flush() == 2
        names = {path.name.split("-", 1)[0] for path in tmp_path.glob("*.pkl")}
        assert names == {"provenance", "report"}


class TestCrossProcessReuse:
    def test_second_service_on_same_spill_gets_disk_hits(
        self, tmp_path, figure1_db1, figure1_db2, figure1_queries, figure1_mapping
    ):
        config = ServiceConfig(spill_dir=tmp_path, spill_write_through=True)
        first = ExplainService(config)
        first.register_database(figure1_db1, "D1")
        first.register_database(figure1_db2, "D2")
        cold = first.explain(_request(figure1_queries, figure1_mapping))
        assert cold.cached_report is False

        # A fresh service (a different worker in fleet terms) on the same
        # spill directory: same fingerprints, and the report comes off disk.
        second = ExplainService(ServiceConfig(spill_dir=tmp_path, spill_write_through=True))
        second.register_database(figure1_db1, "D1")
        second.register_database(figure1_db2, "D2")
        warm = second.explain(_request(figure1_queries, figure1_mapping))
        assert warm.cached_report is True
        assert warm.request_fingerprint == cold.request_fingerprint
        assert warm.problem_fingerprint == cold.problem_fingerprint
        report_stats = second.caches.cache("report").stats
        assert report_stats.spill_loads >= 1
        assert report_stats.misses == 0
        assert (
            warm.report.explanations.explanation_identities()
            == cold.report.explanations.explanation_identities()
        )

    def test_concurrent_writers_never_corrupt_the_tier(self, tmp_path):
        # Eight "workers" (cache instances) race write-through puts of the
        # same keyset: identical keys carry identical bytes, so the atomic
        # rename makes any winner correct and quarantines must stay at zero.
        keys = [f"key-{i}" for i in range(24)]
        barrier = threading.Barrier(8)
        errors: list[Exception] = []

        def hammer(worker_index: int) -> None:
            cache = ArtifactCache(
                "report", max_entries=4, spill_dir=tmp_path, write_through=True
            )
            try:
                barrier.wait(timeout=10)
                for _ in range(5):
                    for key in keys:
                        cache.put(key, {"key": key, "payload": list(range(50))})
            except Exception as exc:  # noqa: BLE001 - tallied below
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        tier = SharedCacheTier(tmp_path)
        snapshot = tier.describe()
        assert snapshot["quarantined"] == 0
        assert snapshot["orphaned_tmp"] == 0
        assert snapshot["tiers"]["report"]["artifacts"] == len(keys)
        # And every artifact reads back intact through a fresh cache.
        reader = ArtifactCache("report", max_entries=64, spill_dir=tmp_path)
        for key in keys:
            assert reader.get(key) == {"key": key, "payload": list(range(50))}
        assert reader.stats.spill_errors == 0

    def test_persist_caches_flushes_for_drain(
        self, tmp_path, figure1_db1, figure1_db2, figure1_queries, figure1_mapping
    ):
        # Lazy spill (no write-through): nothing on disk until the SIGTERM
        # drain path calls persist_caches().
        service = ExplainService(ServiceConfig(spill_dir=tmp_path))
        service.register_database(figure1_db1, "D1")
        service.register_database(figure1_db2, "D2")
        service.explain(_request(figure1_queries, figure1_mapping))
        assert not list(tmp_path.glob("*.pkl"))
        persisted = service.persist_caches()
        assert persisted >= 1
        assert len(list(tmp_path.glob("*.pkl"))) == persisted


class TestTierObservability:
    def test_describe_buckets_by_tier_and_counts_quarantine(self, tmp_path):
        (tmp_path / "report-abc.pkl").write_bytes(b"x" * 10)
        (tmp_path / "report-def.pkl").write_bytes(b"x" * 20)
        (tmp_path / "stats-123.pkl").write_bytes(b"x" * 5)
        (tmp_path / "stats-bad.pkl.corrupt").write_bytes(b"!")
        (tmp_path / ".report-xyz.pkl.tmp").write_bytes(b"torn")
        snapshot = SharedCacheTier(tmp_path).describe()
        assert snapshot["tiers"]["report"] == {"artifacts": 2, "bytes": 30}
        assert snapshot["tiers"]["stats"] == {"artifacts": 1, "bytes": 5}
        assert snapshot["artifacts"] == 3 and snapshot["bytes"] == 35
        assert snapshot["quarantined"] == 1
        assert snapshot["orphaned_tmp"] == 1

    def test_owned_temp_dir_is_cleaned_up(self):
        tier = SharedCacheTier()
        directory = tier.directory
        assert directory.exists()
        tier.cleanup()
        assert not directory.exists()

    def test_aggregate_cache_stats_splits_memory_vs_shared_disk(self):
        worker_a = {
            "report": {"hits": 5, "misses": 2, "spill_loads": 1,
                       "spill_writes": 3, "spill_errors": 0},
        }
        worker_b = {
            "report": {"hits": 2, "misses": 1, "spill_loads": 2,
                       "spill_writes": 1, "spill_errors": 0},
            "stats": {"hits": 1, "misses": 0, "spill_loads": 0,
                      "spill_writes": 0, "spill_errors": 0},
        }
        merged = aggregate_cache_stats([worker_a, worker_b])
        report = merged["tiers"]["report"]
        assert report["memory_hits"] == 4  # (5-1) + (2-2)
        assert report["shared_disk_hits"] == 3
        assert report["misses"] == 3
        assert merged["total"]["shared_disk_hits"] == 3
        assert merged["total"]["memory_hits"] == 5  # + stats tier's 1

    def test_shared_tier_names_cover_the_service_caches(self):
        caches = ExplainService().stats()["caches"]
        for name in SHARED_TIERS:
            assert name in caches, f"unknown shared tier {name!r}"
        assert "plans" not in SHARED_TIERS  # holds live refs, never shared

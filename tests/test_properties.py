"""Property-based tests (hypothesis) over the core invariants.

These tests generate random small EXP-3D instances and check the paper's
structural guarantees:

* the MILP solution is *complete* (valid mapping + impact equality,
  Definition 3.4);
* the MILP objective dominates the greedy objective (it is the optimum of the
  same function);
* canonicalization preserves total impact;
* the smart partitioner covers every tuple exactly once.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines.greedy import GreedyBaseline
from repro.core.canonical import CanonicalRelation, CanonicalTuple, canonicalize
from repro.core.milp_model import MILPTransformation
from repro.core.problem import ExplainProblem
from repro.core.scoring import ExplanationScorer, Priors, is_complete, mapping_is_valid
from repro.graphs.bipartite import MatchGraph, Side
from repro.graphs.smart_partition import SmartPartitioner
from repro.matching.attribute_match import SemanticRelation, matching
from repro.matching.tuple_matching import TupleMapping, TupleMatch
from repro.relational.provenance import provenance_relation
from repro.relational.query import Scan, count_query, sum_query
from repro.relational.executor import Database


# ---------------------------------------------------------------------------
# Random EXP-3D instances.
# ---------------------------------------------------------------------------

@st.composite
def exp3d_instances(draw):
    """A random small EXP-3D instance with an equivalence attribute match."""
    num_left = draw(st.integers(1, 6))
    num_right = draw(st.integers(1, 6))
    left_impacts = draw(
        st.lists(st.integers(1, 5), min_size=num_left, max_size=num_left)
    )
    right_impacts = draw(
        st.lists(st.integers(1, 5), min_size=num_right, max_size=num_right)
    )
    left = CanonicalRelation(
        Side.LEFT,
        ("name",),
        [
            CanonicalTuple(f"T1:{i}", Side.LEFT, {"name": f"l{i}"}, float(impact))
            for i, impact in enumerate(left_impacts)
        ],
        label="T1",
    )
    right = CanonicalRelation(
        Side.RIGHT,
        ("name",),
        [
            CanonicalTuple(f"T2:{j}", Side.RIGHT, {"name": f"r{j}"}, float(impact))
            for j, impact in enumerate(right_impacts)
        ],
        label="T2",
    )
    pairs = [(i, j) for i in range(num_left) for j in range(num_right)]
    chosen = draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=min(len(pairs), 10))
    )
    probabilities = draw(
        st.lists(
            st.floats(0.05, 0.95, allow_nan=False), min_size=len(chosen), max_size=len(chosen)
        )
    )
    mapping = TupleMapping(
        [
            TupleMatch(f"T1:{i}", f"T2:{j}", probability)
            for (i, j), probability in zip(chosen, probabilities)
        ]
    )
    relation = draw(st.sampled_from(list(SemanticRelation)))
    attribute_matches = {
        SemanticRelation.EQUIVALENT: matching(("name", "name")),
        SemanticRelation.LESS_GENERAL: matching(("name", "name", "<=")),
        SemanticRelation.MORE_GENERAL: matching(("name", "name", ">=")),
    }[relation]
    priors = Priors(
        alpha=draw(st.floats(0.6, 0.99)), beta=draw(st.floats(0.55, 0.99))
    )
    return ExplainProblem(
        canonical_left=left,
        canonical_right=right,
        attribute_matches=attribute_matches,
        mapping=mapping,
        priors=priors,
    )


class TestMILPProperties:
    @given(exp3d_instances())
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_solution_is_complete_and_valid(self, problem):
        explanations = MILPTransformation(
            problem.canonical_left,
            problem.canonical_right,
            problem.mapping,
            problem.relation,
            problem.priors,
        ).solve()
        assert mapping_is_valid(explanations.evidence, problem.relation)
        assert is_complete(
            problem.canonical_left, problem.canonical_right, explanations, problem.relation
        )
        # Every selected evidence pair comes from the initial mapping.
        assert explanations.evidence_pairs() <= problem.mapping.pairs()

    @given(exp3d_instances())
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_milp_objective_dominates_greedy(self, problem):
        milp = MILPTransformation(
            problem.canonical_left,
            problem.canonical_right,
            problem.mapping,
            problem.relation,
            problem.priors,
        ).solve()
        greedy = GreedyBaseline().explain(problem)
        scorer = ExplanationScorer(
            problem.canonical_left, problem.canonical_right, problem.mapping, problem.priors
        )
        assert scorer.score(milp) >= scorer.score(greedy) - 1e-6

    @given(exp3d_instances())
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_explanations_reference_existing_tuples(self, problem):
        explanations = MILPTransformation(
            problem.canonical_left,
            problem.canonical_right,
            problem.mapping,
            problem.relation,
            problem.priors,
        ).solve()
        left_keys = set(problem.canonical_left.keys())
        right_keys = set(problem.canonical_right.keys())
        for explanation in explanations.provenance:
            keys = left_keys if explanation.side is Side.LEFT else right_keys
            assert explanation.key in keys
        for explanation in explanations.value:
            keys = left_keys if explanation.side is Side.LEFT else right_keys
            assert explanation.key in keys


class TestCanonicalizationProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["a", "b", "c", "d"]), st.integers(1, 9)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_total_impact_preserved_for_sum(self, rows):
        db = Database("prop")
        db.add_records("T", [{"name": name, "v": value} for name, value in rows])
        query = sum_query("q", Scan("T"), "v")
        provenance = provenance_relation(query, db)
        canonical = canonicalize(provenance, matching(("name", "name")), Side.LEFT)
        assert canonical.total_impact() == pytest.approx(provenance.total_impact())
        assert len(canonical) == len({name for name, _ in rows})

    @given(
        st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=15)
    )
    @settings(max_examples=30, deadline=None)
    def test_count_canonical_impacts_are_group_sizes(self, names):
        db = Database("prop")
        db.add_records("T", [{"name": name} for name in names])
        query = count_query("q", Scan("T"), attribute="name")
        provenance = provenance_relation(query, db)
        canonical = canonicalize(provenance, matching(("name", "name")), Side.LEFT)
        for canonical_tuple in canonical:
            assert canonical_tuple.impact == names.count(canonical_tuple.value("name"))


class TestPartitionProperties:
    @given(
        st.integers(5, 40),
        st.integers(3, 12),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=15, deadline=None)
    def test_partitions_are_a_partition(self, n, batch, rng):
        mapping = TupleMapping(
            [
                TupleMatch(f"l{i}", f"r{rng.randrange(n)}", 0.05 + 0.9 * rng.random())
                for i in range(n)
            ]
        )
        graph = MatchGraph([f"l{i}" for i in range(n)], [f"r{j}" for j in range(n)], mapping)
        result = SmartPartitioner(batch_size=max(batch, 2)).partition(graph)
        left_seen = sorted(key for partition in result for key in partition.left_keys)
        right_seen = sorted(key for partition in result for key in partition.right_keys)
        assert left_seen == sorted(graph.left_keys)
        assert right_seen == sorted(graph.right_keys)

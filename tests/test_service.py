"""The explanation service layer: cache correctness, jobs, and equivalence.

The load-bearing guarantee is that the service is a transparent accelerator:
every response -- cold, warm, or config-perturbed -- must be identical to a
direct ``Explain3D.explain()`` call with the same inputs.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import Explain3D, Explain3DConfig, Priors, Scan, count_query, matching
from repro.core.problem import Stage1Artifacts, build_problem
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_pair
from repro.service import (
    ArtifactCache,
    ExplainRequest,
    ExplainService,
    JobQueue,
    JobState,
    ServiceConfig,
    UnknownDatabaseError,
    fingerprint_of,
)


def _reports_equal(a, b) -> bool:
    """Result equivalence: explanations, evidence pairs and summary patterns."""
    return (
        a.explanations.explanation_identities() == b.explanations.explanation_identities()
        and a.explanations.evidence_pairs() == b.explanations.evidence_pairs()
        and abs(a.explanations.objective - b.explanations.objective) < 1e-9
        and {p.describe() for p in a.summary.patterns} == {p.describe() for p in b.summary.patterns}
        and sorted(a.summary.residual_keys) == sorted(b.summary.residual_keys)
    )


@pytest.fixture()
def figure1_service(figure1_db1, figure1_db2):
    service = ExplainService()
    service.register_database(figure1_db1, "D1")
    service.register_database(figure1_db2, "D2")
    return service


@pytest.fixture()
def figure1_request(figure1_queries, figure1_mapping):
    q1, q2 = figure1_queries
    return ExplainRequest(
        query_left=q1,
        database_left="D1",
        query_right=q2,
        database_right="D2",
        attribute_matches=matching(("Program", "Major")),
        tuple_mapping=figure1_mapping,
        config=Explain3DConfig(partitioning="none", priors=Priors(0.9, 0.9)),
    )


class TestArtifactCache:
    def test_lru_eviction_bounds_memory(self):
        cache = ArtifactCache("test", max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get("a") is None  # oldest evicted
        assert cache.get("b") == 2 and cache.get("c") == 3

    def test_lru_recency_order(self):
        cache = ArtifactCache("test", max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1

    def test_hit_miss_counters(self):
        cache = ArtifactCache("test", max_entries=4)
        assert cache.get("missing") is None
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_get_or_compute(self):
        cache = ArtifactCache("test", max_entries=4)
        calls = []
        assert cache.get_or_compute("k", lambda: calls.append(1) or 42) == 42
        assert cache.get_or_compute("k", lambda: calls.append(1) or 43) == 42
        assert len(calls) == 1

    def test_disk_spill_roundtrip(self, tmp_path):
        cache = ArtifactCache("test", max_entries=1, spill_dir=tmp_path)
        cache.put("a", {"payload": [1, 2, 3]})
        cache.put("b", "evicts a to disk")
        assert cache.stats.spill_writes == 1
        assert cache.get("a") == {"payload": [1, 2, 3]}  # transparently reloaded
        assert cache.stats.spill_loads == 1

    def test_clear_also_drops_spill_files(self, tmp_path):
        cache = ArtifactCache("test", max_entries=1, spill_dir=tmp_path)
        cache.put("a", 1)
        cache.put("b", 2)  # evicts a to disk
        cache.clear()
        assert cache.get("a") is None  # must not resurrect from disk
        assert cache.get("b") is None
        assert not list(tmp_path.glob("test-*.pkl"))

    def test_fingerprint_stability_and_sensitivity(self):
        assert fingerprint_of({"b": 2, "a": 1}) == fingerprint_of({"a": 1, "b": 2})
        assert fingerprint_of({1, 2, 3}) == fingerprint_of({3, 2, 1})
        assert fingerprint_of("x") != fingerprint_of("y")
        assert fingerprint_of(("x",)) != fingerprint_of(("x", "x"))


class TestFingerprints:
    def test_database_fingerprint_changes_with_content(self, figure1_db1):
        fingerprint = figure1_db1.fingerprint()
        assert fingerprint == figure1_db1.fingerprint()  # stable
        figure1_db1.relation("D1").append(["Robotics", "B.S."])
        assert figure1_db1.fingerprint() != fingerprint

    def test_database_fingerprint_changes_with_relation_name(self):
        from repro import Database

        rows = [{"x": 1}, {"x": 2}]
        db_a = Database("db")
        db_a.add_records("R", rows)
        db_b = Database("db")
        db_b.add_records("S", rows)
        assert db_a.fingerprint() != db_b.fingerprint()

    def test_query_fingerprint_sees_every_field(self):
        from repro import col
        from repro.relational.query import Aggregate, AggregateFunction, Query

        base = count_query("Q", Scan("R"), attribute="a")
        named = count_query("Q2", Scan("R"), attribute="a")
        filtered = count_query("Q", Scan("R"), attribute="a", predicate=(col("x") == 1))
        assert base.fingerprint() == count_query("Q", Scan("R"), attribute="a").fingerprint()
        assert base.fingerprint() != named.fingerprint()
        assert base.fingerprint() != filtered.fingerprint()
        # group_by is omitted from Aggregate.__repr__; the fingerprint must see it.
        plain = Query("Q", Aggregate(Scan("R"), AggregateFunction.COUNT, "a"))
        grouped = Query("Q", Aggregate(Scan("R"), AggregateFunction.COUNT, "a", group_by=("g",)))
        assert plain.fingerprint() != grouped.fingerprint()


class TestServiceEquivalence:
    def test_warm_and_cold_match_direct_explain(
        self, figure1_service, figure1_request, figure1_db1, figure1_db2
    ):
        cold = figure1_service.explain(figure1_request)
        warm = figure1_service.explain(figure1_request)
        assert not cold.cached_report
        assert warm.cached_report

        direct = Explain3D(figure1_request.config).explain(
            figure1_request.query_left,
            figure1_db1,
            figure1_request.query_right,
            figure1_db2,
            attribute_matches=figure1_request.attribute_matches,
            tuple_mapping=figure1_request.tuple_mapping,
        )
        assert _reports_equal(cold.report, direct)
        assert _reports_equal(warm.report, direct)
        assert cold.report.to_dict()["explanations"] == warm.report.to_dict()["explanations"]

    def test_automatic_stage1_matches_direct(self, figure1_service, figure1_queries,
                                             figure1_db1, figure1_db2):
        q1, q2 = figure1_queries
        config = Explain3DConfig(partitioning="none")
        request = ExplainRequest(q1, "D1", q2, "D2",
                                 attribute_matches=matching(("Program", "Major")),
                                 config=config)
        served = figure1_service.explain(request)
        direct = Explain3D(config).explain(
            q1, figure1_db1, q2, figure1_db2,
            attribute_matches=matching(("Program", "Major")),
        )
        assert _reports_equal(served.report, direct)

    def test_synthetic_equivalence_cold_warm_perturbed(self):
        pair = generate_synthetic_pair(
            SyntheticConfig(num_tuples=100, difference_ratio=0.2, vocabulary_size=300)
        )
        service = ExplainService()
        service.register_database(pair.db_left, "left")
        service.register_database(pair.db_right, "right")
        config = Explain3DConfig(partitioning="smart", batch_size=50)
        request = ExplainRequest(pair.query_left, "left", pair.query_right, "right",
                                 attribute_matches=pair.attribute_matches, config=config)
        cold = service.explain(request)
        warm = service.explain(request)
        direct = Explain3D(config).explain(
            pair.query_left, pair.db_left, pair.query_right, pair.db_right,
            attribute_matches=pair.attribute_matches,
        )
        assert _reports_equal(cold.report, direct)
        assert _reports_equal(warm.report, direct)

        # Perturbing the linkage threshold rebuilds the problem from cached
        # features + scored candidates, and must still match a direct run.
        perturbed = service.with_config(request, min_similarity=0.15)
        served = service.explain(perturbed)
        assert not served.cached_report and not served.cached_problem
        direct_perturbed = Explain3D(perturbed.config).explain(
            pair.query_left, pair.db_left, pair.query_right, pair.db_right,
            attribute_matches=pair.attribute_matches,
        )
        assert _reports_equal(served.report, direct_perturbed)
        stats = service.stats()["caches"]
        assert stats["candidates"]["hits"] >= 1  # scored candidates were reused
        assert stats["features"]["hits"] >= 1

    def test_solve_config_perturbation_reuses_problem(self, figure1_service, figure1_request):
        figure1_service.explain(figure1_request)
        rebatched = figure1_service.with_config(figure1_request, batch_size=500)
        served = figure1_service.explain(rebatched)
        assert not served.cached_report
        assert served.cached_problem  # stage 1 untouched, only stage 2 re-ran

    def test_worker_count_does_not_change_report_identity(
        self, figure1_service, figure1_request
    ):
        cold = figure1_service.explain(figure1_request)
        reworked = figure1_service.with_config(figure1_request, workers=4, executor="thread")
        served = figure1_service.explain(reworked)
        assert served.cached_report  # workers/executor are excluded from the key
        assert served.report is cold.report

    def test_differently_parameterized_solvers_do_not_share_reports(
        self, figure1_service, figure1_request
    ):
        from repro.solver.backends import BnBSolverBackend

        loose = figure1_service.with_config(
            figure1_request, solver=BnBSolverBackend(gap_tolerance=1e-3)
        )
        exact = figure1_service.with_config(figure1_request, solver=BnBSolverBackend())
        first = figure1_service.explain(loose)
        second = figure1_service.explain(exact)
        assert not second.cached_report  # class name alone must not collide
        assert first.request_fingerprint != second.request_fingerprint


class TestServiceRegistry:
    def test_unknown_database_raises(self, figure1_service, figure1_request):
        bad = ExplainRequest(
            figure1_request.query_left, "nope",
            figure1_request.query_right, "D2",
        )
        with pytest.raises(UnknownDatabaseError):
            figure1_service.explain(bad)

    def test_reregistering_changed_database_rekeys(self, figure1_db1, figure1_db2,
                                                   figure1_request):
        service = ExplainService()
        first = service.register_database(figure1_db1, "D1")
        service.register_database(figure1_db2, "D2")
        cold = service.explain(figure1_request)

        figure1_db1.relation("D1").append(["Robotics", "B.S."])
        second = service.register_database(figure1_db1, "D1")
        assert first != second
        served = service.explain(figure1_request)
        assert not served.cached_report  # changed content, new fingerprint
        assert served.report.problem.result_left == 8.0
        assert cold.report.problem.result_left == 7.0

    def test_eviction_bounds_service_memory(self, figure1_db1, figure1_db2,
                                            figure1_queries, figure1_mapping):
        q1, q2 = figure1_queries
        service = ExplainService(ServiceConfig(cache_entries=2, report_cache_entries=2))
        service.register_database(figure1_db1, "D1")
        service.register_database(figure1_db2, "D2")
        for batch_size in (100, 200, 300, 400):
            request = ExplainRequest(
                q1, "D1", q2, "D2",
                attribute_matches=matching(("Program", "Major")),
                tuple_mapping=figure1_mapping,
                config=Explain3DConfig(partitioning="none", batch_size=batch_size),
            )
            service.explain(request)
        report_cache = service.caches.cache("report")
        assert len(report_cache) <= 2
        assert report_cache.stats.evictions >= 2


class TestJobQueue:
    def test_concurrent_submissions_match_sequential(self, figure1_db1, figure1_db2,
                                                     figure1_queries, figure1_mapping):
        q1, q2 = figure1_queries
        matches = matching(("Program", "Major"))
        requests = [
            ExplainRequest(
                q1, "D1", q2, "D2",
                attribute_matches=matches,
                tuple_mapping=figure1_mapping,
                config=Explain3DConfig(partitioning="none", priors=Priors(alpha, 0.9)),
            )
            for alpha in (0.85, 0.9, 0.95)
        ] * 2  # duplicates exercise concurrent cache access

        # sequential reference on a fresh service (no shared cache effects)
        sequential_service = ExplainService()
        sequential_service.register_database(figure1_db1, "D1")
        sequential_service.register_database(figure1_db2, "D2")
        sequential = [sequential_service.explain(r).report for r in requests]

        concurrent_service = ExplainService()
        concurrent_service.register_database(figure1_db1, "D1")
        concurrent_service.register_database(figure1_db2, "D2")
        queue = JobQueue(concurrent_service.explain, max_workers=4)
        jobs = queue.submit_batch(requests)
        assert queue.wait_all(jobs, timeout=30)
        for job, reference in zip(jobs, sequential):
            assert job.state is JobState.DONE, job.error
            assert _reports_equal(job.result.report, reference)
        assert queue.stats.completed == len(requests)
        queue.shutdown()

    def test_cancel_queued_job(self):
        gate = threading.Event()
        release = threading.Event()

        def slow_runner(request):
            gate.set()
            release.wait(5)
            return request

        queue = JobQueue(slow_runner, max_workers=1)
        running = queue.submit("first")
        assert gate.wait(5)  # worker is now blocked inside the first job
        queued = queue.submit("second")
        assert queue.cancel(queued.id)
        assert queued.state is JobState.CANCELLED
        # Cancelling a *running* job is now a cooperative request: it
        # returns True, sets the job's cancel_event, and the runner decides
        # whether to observe it.  This runner ignores it, so the job still
        # settles DONE -- but the request is recorded.
        assert queue.cancel(running.id)
        assert running.cancel_requested
        assert running.cancel_event.is_set()
        release.set()
        assert queue.wait_all([running], timeout=5)
        assert running.state is JobState.DONE
        assert queued.wait(5)
        assert queue.stats.cancelled == 1
        assert not queue.cancel(running.id)  # terminal now
        queue.shutdown()

    def test_failed_job_records_error(self):
        def boom(request):
            raise ValueError("no such artifact")

        queue = JobQueue(boom, max_workers=1)
        job = queue.submit("x")
        assert job.wait(5)
        assert job.state is JobState.FAILED
        assert "no such artifact" in job.error
        assert queue.stats.failed == 1
        queue.shutdown()

    def test_job_status_payload_is_json_safe(self):
        queue = JobQueue(lambda r: r, max_workers=1)
        job = queue.submit("payload")
        assert job.wait(5)
        json.dumps(job.status())
        queue.shutdown()

    def test_finished_jobs_are_pruned_beyond_retention(self):
        queue = JobQueue(lambda r: r, max_workers=1, max_retained=3)
        jobs = [queue.submit(i) for i in range(6)]
        assert queue.wait_all(jobs, timeout=10)
        queue.submit("one more")
        assert len(queue.jobs()) <= 4  # 3 retained + the fresh submission
        assert queue.get(jobs[0].id) is None  # oldest terminal job dropped
        queue.shutdown()

    def test_shutdown_cancels_queued_jobs(self):
        gate = threading.Event()
        release = threading.Event()

        def slow_runner(request):
            gate.set()
            release.wait(5)
            return request

        queue = JobQueue(slow_runner, max_workers=1)
        running = queue.submit("running")
        assert gate.wait(5)
        queued = queue.submit("never starts")
        release.set()
        queue.shutdown(wait=True, timeout=5)
        assert queued.wait(1)  # terminal, not abandoned in QUEUED limbo
        assert queued.state is JobState.CANCELLED
        assert running.state is JobState.DONE

    def test_idempotency_key_coalesces_inflight_submissions(self):
        gate = threading.Event()
        release = threading.Event()

        def slow_runner(request):
            gate.set()
            release.wait(5)
            return request

        queue = JobQueue(slow_runner, max_workers=1)
        first = queue.submit("payload", idempotency_key="k1")
        assert gate.wait(5)  # first is executing behind the barrier
        duplicate = queue.submit("payload", idempotency_key="k1")
        assert duplicate is first  # single flight: same Job object
        assert first.coalesced == 1
        assert queue.stats.deduplicated == 1
        distinct = queue.submit("other", idempotency_key="k2")
        assert distinct is not first
        unkeyed = queue.submit("payload")
        assert unkeyed is not first  # no key, no coalescing
        release.set()
        assert queue.wait_all([first, distinct, unkeyed], timeout=5)
        # Terminal jobs never coalesce: a later replay executes afresh.
        replay = queue.submit("payload", idempotency_key="k1")
        assert replay is not first
        assert replay.wait(5)
        assert queue.stats.deduplicated == 1  # unchanged by the replay
        queue.shutdown()

    def test_cancelled_key_is_unindexed_for_replay(self):
        gate = threading.Event()
        release = threading.Event()

        def slow_runner(request):
            gate.set()
            release.wait(5)
            return request

        queue = JobQueue(slow_runner, max_workers=1)
        queue.submit("running")
        assert gate.wait(5)
        queued = queue.submit("payload", idempotency_key="k")
        assert queue.cancel(queued.id)
        replay = queue.submit("payload", idempotency_key="k")
        assert replay is not queued  # the cancelled flight released its key
        release.set()
        assert queue.wait_all([replay], timeout=5)
        assert replay.state is JobState.DONE
        queue.shutdown()

    def test_drain_waits_for_inflight_jobs(self):
        gate = threading.Event()
        release = threading.Event()

        def slow_runner(request):
            gate.set()
            release.wait(5)
            return request

        queue = JobQueue(slow_runner, max_workers=1)
        job = queue.submit("x")
        assert gate.wait(5)
        assert not queue.drain(timeout=0.1)  # still running: drain times out
        release.set()
        assert queue.drain(timeout=5)
        assert job.state is JobState.DONE
        queue.shutdown()


class TestReportSerialization:
    def test_to_dict_roundtrips_through_json(self, figure1_service, figure1_request):
        report = figure1_service.explain(figure1_request).report
        payload = json.loads(report.to_json())
        assert payload["query_left"]["result"] == 7.0
        assert payload["query_right"]["result"] == 6.0
        assert payload["disagreement"] == 1.0
        assert len(payload["explanations"]["value"]) == 1
        assert payload["explanations"]["evidence"]
        assert {"side", "key", "old_impact", "new_impact"} <= set(
            payload["explanations"]["value"][0]
        )
        assert "patterns" in payload["summary"]
        assert payload["stats"]["num_partitions"] >= 1

    def test_timings_total_is_sum_of_stages(self, figure1_service, figure1_request,
                                            figure1_db1, figure1_db2):
        report = figure1_service.explain(figure1_request).report
        assert "stage1" in report.timings
        stages = {k: v for k, v in report.timings.items() if k != "total"}
        assert report.timings["total"] == pytest.approx(sum(stages.values()))
        direct = Explain3D(figure1_request.config).explain(
            figure1_request.query_left, figure1_db1,
            figure1_request.query_right, figure1_db2,
            attribute_matches=figure1_request.attribute_matches,
            tuple_mapping=figure1_request.tuple_mapping,
        )
        assert direct.timings["stage1"] > 0
        direct_stages = {k: v for k, v in direct.timings.items() if k != "total"}
        assert direct.timings["total"] == pytest.approx(sum(direct_stages.values()))


class TestStage1ArtifactsHook:
    def test_artifacts_are_harvested_and_reusable(self, figure1_db1, figure1_db2,
                                                  figure1_queries):
        q1, q2 = figure1_queries
        matches = matching(("Program", "Major"))
        artifacts = Stage1Artifacts()
        first = build_problem(q1, figure1_db1, q2, figure1_db2,
                              attribute_matches=matches, artifacts=artifacts)
        assert artifacts.provenance_left is not None
        assert artifacts.left_features is not None
        assert artifacts.candidates is not None

        second = build_problem(q1, figure1_db1, q2, figure1_db2,
                               attribute_matches=matches, artifacts=artifacts)
        plain = build_problem(q1, figure1_db1, q2, figure1_db2,
                              attribute_matches=matches)
        for problem in (first, second):
            assert problem.mapping.pairs() == plain.mapping.pairs()
            for match in problem.mapping:
                assert match.probability == pytest.approx(
                    plain.mapping.probability(match.left_key, match.right_key)
                )
        # injected provenance is reused object-identically
        assert second.provenance_left is first.provenance_left

    def test_stale_features_are_rebuilt(self, figure1_db1, figure1_db2, figure1_queries):
        from repro.matching.features import TupleFeatureCache

        q1, q2 = figure1_queries
        matches = matching(("Program", "Major"))
        stale = TupleFeatureCache([{"Program": "only-one-tuple"}], ["Program"])
        artifacts = Stage1Artifacts(left_features=stale)
        problem = build_problem(q1, figure1_db1, q2, figure1_db2,
                                attribute_matches=matches, artifacts=artifacts)
        plain = build_problem(q1, figure1_db1, q2, figure1_db2, attribute_matches=matches)
        assert artifacts.left_features is not stale  # rebuilt, not trusted
        assert problem.mapping.pairs() == plain.mapping.pairs()


class TestPlanCache:
    """The `plans` artifact cache: compiled physical plans across requests."""

    def test_plans_cache_appears_in_stats(self, figure1_service, figure1_request):
        figure1_service.explain(figure1_request)
        stats = figure1_service.stats()
        assert "plans" in stats["caches"]
        # A cold request plans both inner expressions.
        assert stats["caches"]["plans"]["misses"] >= 2

    def test_renamed_queries_reuse_compiled_plans(
        self, figure1_service, figure1_request, figure1_queries, figure1_mapping
    ):
        from dataclasses import replace

        from repro.relational.query import Query

        figure1_service.explain(figure1_request)
        before = figure1_service.stats()["caches"]["plans"]
        q1, q2 = figure1_queries
        renamed = replace(
            figure1_request,
            query_left=Query("Q1-renamed", q1.root),
            query_right=Query("Q2-renamed", q2.root),
        )
        result = figure1_service.explain(renamed)
        after = figure1_service.stats()["caches"]["plans"]
        # New names -> provenance cache misses, but the plan key ignores the
        # query name, so both sides hit the compiled plans.
        assert not result.cached_problem
        assert after["hits"] >= before["hits"] + 2
        assert after["misses"] == before["misses"]

    def test_plan_cache_eviction_is_bounded_and_counted(
        self, figure1_db1, figure1_db2, figure1_queries, figure1_mapping
    ):
        service = ExplainService(ServiceConfig(cache_entries=1))
        service.register_database(figure1_db1, "D1")
        service.register_database(figure1_db2, "D2")
        q1, q2 = figure1_queries
        request = ExplainRequest(
            query_left=q1,
            database_left="D1",
            query_right=q2,
            database_right="D2",
            attribute_matches=matching(("Program", "Major")),
            tuple_mapping=figure1_mapping,
            config=Explain3DConfig(partitioning="none"),
        )
        service.explain(request)
        plans = service.caches.cache("plans")
        assert len(plans) == 1  # two compiled plans, one-entry cache
        assert plans.stats.evictions >= 1

    def test_explain_plan_serves_and_warms_the_cache(
        self, figure1_service, figure1_queries, figure1_request
    ):
        _, q2 = figure1_queries
        payload = figure1_service.explain_plan("D2", q2, run=True)
        assert payload["database"] == "D2"
        assert payload["query"] == "Q2"
        assert payload["plan"]["operator"] == "AggregateExec"
        assert payload["rows_out"] == 1
        json.dumps(payload)
        before = figure1_service.stats()["caches"]["plans"]
        figure1_service.explain_plan("D2", q2, run=False)
        after = figure1_service.stats()["caches"]["plans"]
        assert after["hits"] == before["hits"] + 2  # root plan + inner plan
        # EXPLAIN also compiled the *inner* (provenance) expression's plan,
        # so a subsequent explain request for the same query hits it.
        before = after
        figure1_service.explain(figure1_request)
        after = figure1_service.stats()["caches"]["plans"]
        assert after["hits"] >= before["hits"] + 1

    def test_evicted_plans_are_never_spilled_to_disk(
        self, figure1_db1, figure1_db2, figure1_queries, figure1_mapping, tmp_path
    ):
        # A spilled plan would pickle its whole database; plans must opt out.
        service = ExplainService(ServiceConfig(cache_entries=1, spill_dir=tmp_path))
        service.register_database(figure1_db1, "D1")
        service.register_database(figure1_db2, "D2")
        q1, q2 = figure1_queries
        service.explain(
            ExplainRequest(
                query_left=q1,
                database_left="D1",
                query_right=q2,
                database_right="D2",
                attribute_matches=matching(("Program", "Major")),
                tuple_mapping=figure1_mapping,
                config=Explain3DConfig(partitioning="none"),
            )
        )
        plans = service.caches.cache("plans")
        assert plans.stats.evictions >= 1
        assert plans.stats.spill_writes == 0
        assert not list(tmp_path.glob("plans-*.pkl"))

    def test_explain_plan_unknown_database(self, figure1_service, figure1_queries):
        with pytest.raises(UnknownDatabaseError):
            figure1_service.explain_plan("nope", figure1_queries[0])

    def test_planned_provenance_equals_direct(self, figure1_service, figure1_request):
        """The plan cache is an accelerator: served reports stay identical."""
        served = figure1_service.explain(figure1_request)
        direct = Explain3D(figure1_request.config).explain(
            figure1_request.query_left,
            figure1_service.database("D1"),
            figure1_request.query_right,
            figure1_service.database("D2"),
            attribute_matches=figure1_request.attribute_matches,
            tuple_mapping=figure1_request.tuple_mapping,
        )
        assert _reports_equal(served.report, direct)


class TestStatsArtifactCache:
    """ANALYZE through the service: the `stats` artifact cache + plan re-keying."""

    def test_analyze_round_trip_and_caching(self, figure1_service):
        payload = figure1_service.analyze("D1")
        assert payload["database"] == "D1"
        assert payload["relations"]["D1"]["row_count"] == 7
        assert figure1_service.database("D1").statistics is not None
        stats = figure1_service.stats()["caches"]["stats"]
        assert stats["misses"] >= 1
        figure1_service.analyze("D1")  # identical content: pure cache hits
        after = figure1_service.stats()["caches"]["stats"]
        assert after["hits"] >= stats["hits"] + 1
        assert after["misses"] == stats["misses"]

    def test_analyze_rekeys_the_plan_cache(self, figure1_service, figure1_queries):
        _, q2 = figure1_queries
        first = figure1_service.explain_plan("D2", q2)
        assert first["cost_model"] == "heuristic"
        misses_before = figure1_service.stats()["caches"]["plans"]["misses"]
        figure1_service.analyze("D2")
        second = figure1_service.explain_plan("D2", q2)
        assert second["cost_model"] == "statistics"
        # The analyzed database must not be served the cached heuristic plan.
        assert figure1_service.stats()["caches"]["plans"]["misses"] > misses_before
        assert first["rows_out"] == second["rows_out"]

    def test_reports_identical_with_and_without_analyze(self, figure1_request):
        # Each service gets its own database objects: analyze() attaches
        # statistics to the Database instance, and sharing one instance
        # across both services would silently make the "plain" service plan
        # cost-based too.
        from repro.datasets.sql_catalog import figure1_databases

        plain = ExplainService()
        for db in figure1_databases()[:2]:
            plain.register_database(db)
        analyzed = ExplainService()
        for db in figure1_databases()[:2]:
            analyzed.register_database(db)
        analyzed.analyze("D1")
        analyzed.analyze("D2")
        assert plain.database("D1").statistics is None  # genuinely stats-off
        assert analyzed.database("D1").statistics is not None
        assert _reports_equal(
            plain.explain(figure1_request).report,
            analyzed.explain(figure1_request).report,
        )

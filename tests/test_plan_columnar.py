"""The columnar batch executor: batches, masks, edge cases, batch-size knob.

The columnar operators must stay fingerprint-identical (rows + order +
lineage) to the naive row interpreter across every edge the vectorized fast
paths could plausibly get wrong: NULLs, data NaN vs NULL NaN, non-finite
floats, huge integers beyond float64 exactness, all-NULL join keys, empty
inputs, And/Or short-circuit semantics -- and across every batch size,
including 1.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.plan import ColumnBatch, plan_node, plan_query, predicate_mask
from repro.plan.physical import BATCH_SIZE, ExecutionContext
from repro.relational.errors import EmptyAggregateError, ExecutionError
from repro.relational.executor import Database, execute
from repro.relational.expressions import (
    AttributeComparison,
    Comparison,
    Contains,
    IsNull,
    Membership,
    Not,
    col,
)
from repro.relational.query import (
    Aggregate,
    AggregateFunction,
    Join,
    Query,
    Scan,
    Select,
    Union,
    aggregate_query,
    count_query,
    projection_query,
    sum_query,
)
from repro.relational.relation import Relation, Row
from repro.relational.schema import Attribute, DataType, Schema

INT = DataType.INTEGER
FLOAT = DataType.FLOAT
STR = DataType.STRING

NAN = float("nan")
INF = float("inf")


def _relation(name: str, schema: Schema, rows: list[tuple]) -> Relation:
    relation = Relation(schema, name=name)
    for values in rows:
        relation.append(values)
    return relation


def _mixed_db() -> Database:
    """A database exercising NULLs, NaN, infinities and huge integers."""
    db = Database("mixed")
    db.add(
        _relation(
            "T",
            Schema(
                [
                    Attribute("id", INT),
                    Attribute("score", FLOAT),
                    Attribute("name", STR),
                    Attribute("big", INT),
                ]
            ),
            [
                (1, 1.5, "a", 10),
                (2, NAN, "b", 2 ** 60),
                (3, None, None, -(2 ** 60)),
                (4, INF, "a", 0),
                (5, -INF, "nan", None),
                (None, 1.5, "b", 7),
                (6, 2.0, "c", 2 ** 53 + 1),
            ],
        )
    )
    db.add(
        _relation(
            "U",
            Schema([Attribute("id", INT), Attribute("w", FLOAT)]),
            [(1, 0.5), (2, NAN), (None, 3.0), (6, None), (6, 1.0)],
        )
    )
    return db


def _assert_equivalent(query, db, *, batch_sizes=(1, 3, BATCH_SIZE)):
    naive = execute(query, db, planner="naive")
    plan = plan_query(query, db)
    for batch_size in batch_sizes:
        planned = plan.execute(batch_size=batch_size)
        assert planned.fingerprint() == naive.fingerprint(), (
            f"{query.name} diverged at batch_size={batch_size}"
        )
    return naive


class TestColumnBatch:
    def test_from_rows_to_rows_round_trip(self):
        rows = [Row((1, "a"), frozenset({"T:0"})), Row((2, None), frozenset({"T:1"}))]
        batch = ColumnBatch.from_rows(rows, 2)
        assert batch.columns == [[1, 2], ["a", None]]
        assert batch.to_rows() == rows

    def test_empty_batch_keeps_width(self):
        batch = ColumnBatch.from_rows([], 3)
        assert batch.width == 3 and len(batch) == 0
        assert batch.to_rows() == []

    def test_concat_and_slice(self):
        a = ColumnBatch([[1, 2], ["x", "y"]], [frozenset(), frozenset()])
        b = ColumnBatch([[3], ["z"]], [frozenset({"T:2"})])
        merged = ColumnBatch.concat([a, ColumnBatch.empty(2), b], 2)
        assert merged.columns == [[1, 2, 3], ["x", "y", "z"]]
        assert merged.slice(1, 3).columns == [[2, 3], ["y", "z"]]

    def test_concat_single_batch_is_passthrough(self):
        a = ColumnBatch([[1]], [frozenset()])
        assert ColumnBatch.concat([a], 1) is a

    def test_compress_all_true_is_zero_copy(self):
        batch = ColumnBatch([[1, 2]], [frozenset(), frozenset()])
        assert batch.compress(np.array([True, True])) is batch
        kept = batch.compress(np.array([False, True]))
        assert kept.columns == [[2]]

    def test_select_shares_column_lists(self):
        batch = ColumnBatch([[1], [2], [3]], [frozenset()])
        projected = batch.select([2, 0])
        assert projected.columns[0] is batch.columns[2]
        assert projected.columns[1] is batch.columns[0]

    def test_zero_width_rows(self):
        batch = ColumnBatch([], [frozenset({"T:0"}), frozenset({"T:1"})])
        assert [row.values for row in batch.to_rows()] == [(), ()]
        assert batch.value_tuples() == [(), ()]


class TestPredicateMasks:
    """predicate_mask must agree with per-row dict evaluation bit for bit."""

    def _assert_mask_matches(self, predicate, relation):
        columns, lineage = relation.column_data()
        batch = ColumnBatch([list(column) for column in columns], list(lineage))
        mask = predicate_mask(predicate, batch, relation.schema)
        expected = [
            bool(predicate(row.as_dict(relation.schema))) for row in relation
        ]
        assert mask.tolist() == expected, repr(predicate)

    @pytest.mark.parametrize(
        "predicate",
        [
            col("score") > 1.0,
            col("score") <= 1.5,
            col("score") == INF,
            col("score") != 1.5,
            col("id") >= 3,
            col("id") == 2,
            Comparison("big", ">", 2 ** 53),  # huge ints: scalar exact path
            Comparison("big", "<", 0.5),  # int column vs float constant
            Comparison("missing", "=", 1),  # unknown name reads as NULL
            AttributeComparison("id", "<", "big"),
            AttributeComparison("score", "=", "score"),  # NaN != NaN rowwise
            IsNull("name"),
            Not(IsNull("score")),
            Membership("name", frozenset({"a", "nan"})),
            Contains("name", "A"),
            (col("id") > 1) & (col("score") > 0.0),
            (col("id") > 100) | (col("name") == "b"),
            ~(col("id") == 2),
        ],
    )
    def test_mask_equals_row_path(self, predicate):
        relation = _mixed_db().relation("T")
        self._assert_mask_matches(predicate, relation)

    def test_and_short_circuit_never_raises_where_rows_would_not(self):
        # Row path: `name = 'a' AND name > 5` short-circuits past the
        # type-mismatched comparison for every row whose name != 'a'... but
        # raises on rows where it *is* evaluated.  The vectorized path must
        # do exactly the same -- including the raise.
        relation = _relation(
            "S", Schema([Attribute("name", STR)]), [("b",), ("c",)]
        )
        safe = (col("name") == "a") & Comparison("name", ">", 5)
        self._assert_mask_matches(safe, relation)  # no row reaches the bad leg
        raising = _relation(
            "S", Schema([Attribute("name", STR)]), [("b",), ("a",)]
        )
        columns, lineage = raising.column_data()
        batch = ColumnBatch([list(c) for c in columns], list(lineage))
        with pytest.raises(ExecutionError, match="cannot compare"):
            predicate_mask(safe, batch, raising.schema)

    def test_null_nan_distinct_from_data_nan(self):
        # A FLOAT column stores NULL as None; the numeric view uses NaN as a
        # placeholder but the notnull mask keeps NULL rows false under every
        # comparison, while a *data* NaN row is false for a different reason
        # (IEEE comparison), and IS NULL tells them apart.
        relation = _mixed_db().relation("T")
        self._assert_mask_matches(IsNull("score"), relation)
        self._assert_mask_matches(Not(IsNull("score")), relation)
        self._assert_mask_matches(col("score") == NAN, relation)


class TestColumnarEdges:
    def test_empty_relation_through_every_operator(self):
        db = Database("empty")
        schema = Schema([Attribute("a", INT), Attribute("b", FLOAT)])
        db.add(_relation("E", schema, []))
        db.add(_relation("F", schema, [(1, 2.0)]))
        queries = [
            count_query("C", Scan("E")),
            count_query("CF", Select(Scan("E"), col("a") > 0)),
            count_query("CJ", Join(Scan("E"), Scan("F"), on=(("a", "a"),))),
            projection_query("P", Scan("E"), ["b"]),
            projection_query("PD", Scan("E"), ["b"], distinct=True),
            count_query("CU", Union((Scan("E"), Scan("F")))),
        ]
        for query in queries:
            _assert_equivalent(query, db)

    def test_all_null_join_keys_match_plain_reject_strict(self):
        db = Database("nulls")
        left_schema = Schema([Attribute("a", INT), Attribute("b", INT)])
        right_schema = Schema([Attribute("c", INT), Attribute("d", INT)])
        db.add(_relation("L", left_schema, [(None, None), (None, 1), (1, None)]))
        db.add(_relation("R", right_schema, [(None, None), (None, 1), (1, 1)]))
        # First (plain) pair: NULL = NULL holds.
        plain = count_query("JP", Join(Scan("L"), Scan("R"), on=(("a", "c"),)))
        result = _assert_equivalent(plain, db)
        # 2 NULL-a rows x 2 NULL-c rows, plus the ordinary (1, 1) match.
        assert result[0].values[0] == 5.0
        # Second (strict) pair rejects NULLs on either side.
        strict = count_query(
            "JS", Join(Scan("L"), Scan("R"), on=(("a", "c"), ("b", "d")))
        )
        result = _assert_equivalent(strict, db)
        assert result[0].values[0] == 1.0  # only (None,1) x (None,1)

    def test_nan_flows_through_filter_distinct_join(self):
        db = _mixed_db()
        queries = [
            count_query("F", Select(Scan("T"), col("score") > 0.0)),
            projection_query("D", Scan("T"), ["score"], distinct=True),
            count_query("J", Join(Scan("T"), Scan("U"), on=(("id", "id"),))),
            Query(
                "G",
                Aggregate(
                    Select(Scan("T"), Not(IsNull("id"))),
                    AggregateFunction.SUM,
                    "id",
                    group_by=("name",),
                    alias="sum",
                ),
            ),
        ]
        for query in queries:
            _assert_equivalent(query, db)

    def test_theta_join_condition_over_nan(self):
        db = _mixed_db()
        query = count_query(
            "TH",
            Join(
                Scan("T"),
                Scan("U"),
                on=(("id", "id"),),
                condition=AttributeComparison("score", "<", "w"),
            ),
        )
        _assert_equivalent(query, db)

    def test_keyless_cross_join_slabs(self):
        db = _mixed_db()
        query = count_query(
            "X",
            Join(Scan("T"), Scan("U"), condition=AttributeComparison("id", "=", "id_r")),
        )
        _assert_equivalent(query, db)


class TestBatchSizeKnob:
    def test_default_comes_from_module_constant(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_SIZE", raising=False)
        assert ExecutionContext().batch_size == BATCH_SIZE

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_SIZE", "5")
        assert ExecutionContext().batch_size == 5
        monkeypatch.setenv("REPRO_BATCH_SIZE", "not a number")
        assert ExecutionContext().batch_size == BATCH_SIZE

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_SIZE", "5")
        assert ExecutionContext(batch_size=2).batch_size == 2

    def test_results_invariant_across_batch_sizes(self):
        db = _mixed_db()
        query = Query(
            "S",
            Aggregate(
                Select(Scan("T"), Not(IsNull("id"))),
                AggregateFunction.SUM,
                "id",
                group_by=("name",),
                alias="sum",
            ),
        )
        _assert_equivalent(query, db, batch_sizes=(1, 2, 3, 5, BATCH_SIZE))


class TestSharedSubplanStats:
    def test_actual_rows_count_rows_not_batches(self):
        # A union of two identical subqueries dedups to one shared operator;
        # at batch_size=2 its 5 output rows span 3 batches.  `rows` must
        # report 5 on the producing occurrence and the replay must mark
        # `reused` -- chunking and sharing never change row accounting.
        db = Database("shared")
        schema = Schema([Attribute("a", INT)])
        db.add(_relation("S", schema, [(i,) for i in range(5)]))
        node = Union((Scan("S"), Scan("S")))
        plan = plan_node(node, db)
        relation, stats = plan.execute_with_stats(batch_size=2)
        assert len(relation) == 10
        assert plan.shared_subplans == 1
        # The deduplicated scan owns ONE stats slot: `rows` counts the 5 rows
        # it actually produced (not the 3 batches they spanned, and not 10 --
        # the memoized replay never re-counts), and `reused` marks the replay.
        (scan_stats,) = [
            payload
            for payload in stats.operators.values()
            if payload.get("reused")
        ]
        assert scan_stats["rows"] == 5
        assert scan_stats["batches"] == 3  # 2 + 2 + 1 rows

    def test_explain_reports_rows_under_reference_nodes(self):
        db = Database("shared2")
        schema = Schema([Attribute("a", INT)])
        db.add(_relation("S", schema, [(i,) for i in range(4)]))
        plan = plan_node(Union((Scan("S"), Scan("S"))), db)
        payload = plan.explain(run=True).to_dict()
        children = payload["plan"]["children"]
        assert children[0]["rows"] == 4
        assert children[1].get("reference") is True
        assert "rows" not in children[1]  # never double-counted


class TestEmptyAggregateError:
    def test_combine_raises_typed_error(self):
        with pytest.raises(EmptyAggregateError) as excinfo:
            AggregateFunction.SUM.combine([None, None])
        assert isinstance(excinfo.value, ExecutionError)
        assert excinfo.value.function == "SUM"
        assert excinfo.value.path == ""

    def test_all_null_group_raises_on_both_paths(self):
        db = Database("allnull")
        schema = Schema([Attribute("v", FLOAT)])
        db.add(_relation("T", schema, [(None,), (None,)]))
        query = sum_query("Q", Scan("T"), attribute="v")
        for planner in ("naive", "optimized"):
            with pytest.raises(EmptyAggregateError):
                execute(query, db, planner=planner)

    def test_truly_empty_input_still_returns_null_row(self):
        # Distinct from all-NULL: zero input rows keep the explicit NULL-row
        # contract (pinned elsewhere too) -- no exception.
        db = Database("empty")
        schema = Schema([Attribute("v", FLOAT)])
        db.add(_relation("T", schema, []))
        query = aggregate_query(
            "Q", AggregateFunction.AVG, Scan("T"), attribute="v"
        )
        for planner in ("naive", "optimized"):
            result = execute(query, db, planner=planner)
            assert [row.values for row in result] == [(None,)]

"""Tests for the MILP transformation (Stage 2) and the partitioned solver."""

import pytest

from repro.core.explanations import ExplanationSet
from repro.core.milp_model import MILPTransformation
from repro.core.partitioning import PartitionedSolver, SolveConfig
from repro.core.problem import ExplainProblem, NotComparableError, build_problem
from repro.core.scoring import ExplanationScorer, Priors, is_complete
from repro.core.canonical import CanonicalRelation, CanonicalTuple
from repro.graphs.bipartite import Side
from repro.matching.attribute_match import AttributeMatching, SemanticRelation, matching
from repro.matching.tuple_matching import TupleMapping, TupleMatch
from repro.relational.executor import Database
from repro.relational.query import Scan, count_query


def make_canonical(side: Side, label: str, impacts: dict[str, float]) -> CanonicalRelation:
    tuples = [
        CanonicalTuple(key=f"{label}:{i}", side=side, values={"name": name}, impact=impact)
        for i, (name, impact) in enumerate(impacts.items())
    ]
    return CanonicalRelation(side, ("name",), tuples, label=label)


def make_problem(left_impacts, right_impacts, matches, relation=SemanticRelation.EQUIVALENT,
                 priors=Priors(0.9, 0.9)) -> ExplainProblem:
    left = make_canonical(Side.LEFT, "T1", left_impacts)
    right = make_canonical(Side.RIGHT, "T2", right_impacts)
    left_index = {name: t.key for name, t in zip(left_impacts, left.tuples)}
    right_index = {name: t.key for name, t in zip(right_impacts, right.tuples)}
    mapping = TupleMapping(
        [TupleMatch(left_index[l], right_index[r], p) for l, r, p in matches]
    )
    attribute_matches = AttributeMatching(
        [  # single equivalence or containment match on "name"
        ]
    )
    attribute_matches = matching(("name", "name")) if relation is SemanticRelation.EQUIVALENT else (
        matching(("name", "name", "<=")) if relation is SemanticRelation.LESS_GENERAL
        else matching(("name", "name", ">="))
    )
    return ExplainProblem(
        canonical_left=left,
        canonical_right=right,
        attribute_matches=attribute_matches,
        mapping=mapping,
        priors=priors,
    )


class TestFigure1Example:
    def test_expected_explanations(self, figure1_problem):
        """Q1 vs Q2 of Figure 1: CS is double counted, everything else matches."""
        explanations = MILPTransformation(
            figure1_problem.canonical_left,
            figure1_problem.canonical_right,
            figure1_problem.mapping,
            figure1_problem.relation,
            figure1_problem.priors,
        ).solve()
        # All six matches of the initial mapping are selected as evidence.
        assert len(explanations.evidence) == 6
        assert not explanations.provenance
        # One value explanation: CSE reports 1 but CS contributes 2.
        assert len(explanations.value) == 1
        value = explanations.value[0]
        assert value.old_impact == 1.0
        assert value.new_impact == 2.0

    def test_result_is_complete(self, figure1_problem):
        explanations = MILPTransformation(
            figure1_problem.canonical_left,
            figure1_problem.canonical_right,
            figure1_problem.mapping,
            figure1_problem.relation,
            figure1_problem.priors,
        ).solve()
        assert is_complete(
            figure1_problem.canonical_left,
            figure1_problem.canonical_right,
            explanations,
            figure1_problem.relation,
        )

    def test_objective_matches_scorer(self, figure1_problem):
        explanations = MILPTransformation(
            figure1_problem.canonical_left,
            figure1_problem.canonical_right,
            figure1_problem.mapping,
            figure1_problem.relation,
            figure1_problem.priors,
        ).solve()
        scorer = ExplanationScorer(
            figure1_problem.canonical_left,
            figure1_problem.canonical_right,
            figure1_problem.mapping,
            figure1_problem.priors,
        )
        assert explanations.objective == pytest.approx(scorer.score(explanations), abs=1e-5)


class TestMILPBehaviour:
    def test_unmatched_tuples_are_provenance_explanations(self):
        problem = make_problem(
            {"a": 1.0, "orphan": 1.0}, {"a": 1.0}, [("a", "a", 0.95)]
        )
        explanations = MILPTransformation(
            problem.canonical_left, problem.canonical_right, problem.mapping,
            problem.relation, problem.priors,
        ).solve()
        assert ("L", problem.canonical_left.keys()[1]) in explanations.provenance_identities()
        assert len(explanations.evidence) == 1

    def test_low_probability_true_match_still_selected(self):
        """Selecting a weak match beats removing both endpoints."""
        problem = make_problem({"a": 1.0}, {"a": 1.0}, [("a", "a", 0.2)])
        explanations = MILPTransformation(
            problem.canonical_left, problem.canonical_right, problem.mapping,
            problem.relation, problem.priors,
        ).solve()
        assert len(explanations.evidence) == 1
        assert not explanations.provenance

    def test_equivalence_resolves_conflicts_globally(self):
        """The A/B/A'/B' example from Section 5.2: the cross pair has the highest
        probability, but selecting it would leave two tuples unmatched."""
        problem = make_problem(
            {"A": 1.0, "B": 1.0},
            {"A'": 1.0, "B'": 1.0},
            [("A", "A'", 0.8), ("B", "B'", 0.8), ("A", "B'", 0.9), ("B", "A'", 0.5)],
        )
        explanations = MILPTransformation(
            problem.canonical_left, problem.canonical_right, problem.mapping,
            problem.relation, problem.priors,
        ).solve()
        left = problem.canonical_left
        right = problem.canonical_right
        expected = {
            (left.keys()[0], right.keys()[0]),
            (left.keys()[1], right.keys()[1]),
        }
        assert explanations.evidence_pairs() == expected
        assert not explanations.provenance

    def test_many_to_one_allows_multiple_left_matches(self):
        problem = make_problem(
            {"a1": 1.0, "a2": 2.0},
            {"A": 3.0},
            [("a1", "A", 0.9), ("a2", "A", 0.9)],
            relation=SemanticRelation.LESS_GENERAL,
        )
        explanations = MILPTransformation(
            problem.canonical_left, problem.canonical_right, problem.mapping,
            problem.relation, problem.priors,
        ).solve()
        assert len(explanations.evidence) == 2
        assert not explanations.value  # 1 + 2 = 3, impacts balance

    def test_value_explanation_when_impacts_disagree(self):
        problem = make_problem(
            {"a": 2.0}, {"a": 5.0}, [("a", "a", 0.95)], relation=SemanticRelation.LESS_GENERAL
        )
        explanations = MILPTransformation(
            problem.canonical_left, problem.canonical_right, problem.mapping,
            problem.relation, problem.priors,
        ).solve()
        assert len(explanations.value) == 1
        value = explanations.value[0]
        assert value.side is Side.RIGHT
        assert value.new_impact == pytest.approx(2.0)

    def test_equivalence_forbids_sharing_a_right_tuple(self):
        problem = make_problem(
            {"a1": 1.0, "a2": 1.0},
            {"A": 2.0},
            [("a1", "A", 0.9), ("a2", "A", 0.9)],
            relation=SemanticRelation.EQUIVALENT,
        )
        explanations = MILPTransformation(
            problem.canonical_left, problem.canonical_right, problem.mapping,
            problem.relation, problem.priors,
        ).solve()
        assert len(explanations.evidence) == 1
        assert len(explanations.provenance) == 1

    def test_more_general_anchors_on_left(self):
        problem = make_problem(
            {"A": 3.0},
            {"a1": 1.0, "a2": 1.0},
            [("A", "a1", 0.9), ("A", "a2", 0.9)],
            relation=SemanticRelation.MORE_GENERAL,
        )
        transformation = MILPTransformation(
            problem.canonical_left, problem.canonical_right, problem.mapping,
            problem.relation, problem.priors,
        )
        assert transformation.anchor_side() is Side.LEFT
        explanations = transformation.solve()
        assert len(explanations.evidence) == 2
        assert explanations.value and explanations.value[0].side is Side.LEFT

    def test_empty_problem(self):
        left = CanonicalRelation(Side.LEFT, ("name",), [], label="T1")
        right = CanonicalRelation(Side.RIGHT, ("name",), [], label="T2")
        explanations = MILPTransformation(
            left, right, TupleMapping(), SemanticRelation.EQUIVALENT
        ).solve()
        assert explanations.size == 0

    def test_problem_size_reporting(self, figure1_problem):
        transformation = MILPTransformation(
            figure1_problem.canonical_left,
            figure1_problem.canonical_right,
            figure1_problem.mapping,
            figure1_problem.relation,
        )
        sizes = transformation.problem_size()
        assert sizes["tuples"] == 12
        assert sizes["matches"] == 6
        assert sizes["variables"] > 0


class TestMILPOptimality:
    def test_milp_objective_at_least_greedy(self, small_academic_problem):
        """The MILP optimum must dominate the greedily constructed solution."""
        from repro.baselines.greedy import GreedyBaseline

        problem, _ = small_academic_problem
        milp = MILPTransformation(
            problem.canonical_left, problem.canonical_right, problem.mapping,
            problem.relation, problem.priors,
        ).solve()
        greedy = GreedyBaseline().explain(problem)
        scorer = ExplanationScorer(
            problem.canonical_left, problem.canonical_right, problem.mapping, problem.priors
        )
        assert scorer.score(milp) >= scorer.score(greedy) - 1e-6


class TestPartitionedSolver:
    @pytest.mark.parametrize("mode", ["none", "components", "smart"])
    def test_modes_agree_on_figure1(self, figure1_problem, mode):
        solver = PartitionedSolver(figure1_problem, SolveConfig(partitioning=mode, batch_size=4))
        explanations = solver.solve()
        assert len(explanations.value) == 1
        assert not explanations.provenance
        assert solver.stats.num_partitions >= 1
        assert solver.stats.total_time > 0

    def test_components_split_is_lossless(self, small_academic_problem):
        problem, _ = small_academic_problem
        whole = PartitionedSolver(problem, SolveConfig(partitioning="none")).solve()
        split = PartitionedSolver(problem, SolveConfig(partitioning="components")).solve()
        assert split.objective == pytest.approx(whole.objective, abs=1e-4)

    def test_smart_partitioning_close_to_exact(self, small_academic_problem):
        problem, _ = small_academic_problem
        exact = PartitionedSolver(problem, SolveConfig(partitioning="none")).solve()
        batched = PartitionedSolver(
            problem, SolveConfig(partitioning="smart", batch_size=40)
        ).solve()
        # Batching may only lose objective mass on cut matches.
        assert batched.objective <= exact.objective + 1e-6
        assert batched.objective >= exact.objective - 10.0

    def test_stats_populated_for_smart_mode(self, small_academic_problem):
        problem, _ = small_academic_problem
        config = SolveConfig(partitioning="smart", batch_size=30)
        solver = PartitionedSolver(problem, config)
        solver.solve()
        assert solver.stats.num_partitions >= 2
        assert solver.stats.largest_partition <= 30 * 1.5
        assert solver.stats.milp_sizes

    def test_unknown_mode_rejected(self, figure1_problem):
        solver = PartitionedSolver(figure1_problem, SolveConfig(partitioning="bogus"))  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            solver.solve()


class TestBuildProblem:
    def test_not_comparable_raises(self):
        db1 = Database("a")
        db1.add_records("T", [{"x": 1}])
        db2 = Database("b")
        db2.add_records("U", [{"y": 1}])
        q1 = count_query("q1", Scan("T"), attribute="x")
        q2 = count_query("q2", Scan("U"), attribute="y")
        with pytest.raises(NotComparableError):
            build_problem(q1, db1, q2, db2, attribute_matches=AttributeMatching())

    def test_problem_statistics_and_results(self, figure1_problem):
        stats = figure1_problem.statistics()
        assert stats["provenance_left"] == 7
        assert stats["canonical_left"] == 6
        assert figure1_problem.result_left == 7.0
        assert figure1_problem.result_right == 6.0
        assert figure1_problem.disagreement == 1.0

    def test_match_graph_round_trip(self, figure1_problem):
        graph = figure1_problem.match_graph()
        assert graph.num_edges == len(figure1_problem.mapping)
        assert graph.num_nodes == 12

    def test_similarity_fallback_without_labels(self, figure1_db1, figure1_db2, figure1_queries):
        q1, q2 = figure1_queries
        problem = build_problem(
            q1, figure1_db1, q2, figure1_db2, attribute_matches=matching(("Program", "Major"))
        )
        assert len(problem.mapping) > 0
        assert all(0.0 < m.probability < 1.0 for m in problem.mapping)

"""The JSON API: spec compilation, the HTTP daemon, and the client helper."""

from __future__ import annotations

import json

import pytest

from repro import Explain3D, Explain3DConfig, Priors, Scan, col, count_query, matching
from repro.service import (
    ExplainService,
    ServiceClient,
    ServiceClientError,
    SpecError,
    config_from_spec,
    database_from_spec,
    mapping_from_spec,
    query_from_spec,
    request_from_payload,
    serve_in_background,
)

D1_RECORDS = [
    {"Program": "Accounting", "Degree": "B.S."},
    {"Program": "CS", "Degree": "B.A."},
    {"Program": "CS", "Degree": "B.S."},
    {"Program": "ECE", "Degree": "B.S."},
    {"Program": "EE", "Degree": "B.S."},
    {"Program": "Management", "Degree": "B.A."},
    {"Program": "Design", "Degree": "B.A."},
]
D2_RECORDS = [
    {"Univ": "A", "Major": "Accounting"},
    {"Univ": "A", "Major": "CSE"},
    {"Univ": "A", "Major": "ECE"},
    {"Univ": "A", "Major": "EE"},
    {"Univ": "A", "Major": "Management"},
    {"Univ": "A", "Major": "Design"},
    {"Univ": "B", "Major": "Art"},
]

EXPLAIN_PAYLOAD = {
    "database_left": "D1",
    "query_left": {"name": "Q1", "kind": "count", "relation": "D1", "attribute": "Program"},
    "database_right": "D2",
    "query_right": {
        "name": "Q2",
        "kind": "count",
        "relation": "D2",
        "attribute": "Major",
        "where": [{"column": "Univ", "op": "=", "value": "A"}],
    },
    "attribute_matches": [["Program", "Major"]],
    "tuple_mapping": [
        ["T1:0", "T2:0", 0.95],
        ["T1:1", "T2:1", 0.90],
        ["T1:2", "T2:2", 0.95],
        ["T1:3", "T2:3", 0.95],
        ["T1:4", "T2:4", 0.95],
        ["T1:5", "T2:5", 0.95],
    ],
    "config": {"partitioning": "none", "priors": {"alpha": 0.9, "beta": 0.9}},
}


class TestSpecCompilation:
    def test_query_spec_matches_builder(self):
        spec = {
            "name": "Q2",
            "kind": "count",
            "relation": "D2",
            "attribute": "Major",
            "where": [{"column": "Univ", "op": "=", "value": "A"}],
        }
        built = query_from_spec(spec)
        reference = count_query(
            "Q2", Scan("D2"), predicate=(col("Univ") == "A"), attribute="Major"
        )
        assert built.fingerprint() == reference.fingerprint()

    def test_query_spec_kinds(self):
        assert query_from_spec(
            {"name": "S", "kind": "sum", "relation": "R", "attribute": "v"}
        ).aggregate_function.value == "SUM"
        assert query_from_spec(
            {"name": "A", "kind": "avg", "relation": "R", "attribute": "v"}
        ).aggregate_function.value == "AVG"
        projected = query_from_spec(
            {"name": "P", "kind": "project", "relation": "R", "attributes": ["a", "b"]}
        )
        assert projected.output_attributes == ("a", "b")

    def test_query_spec_errors(self):
        with pytest.raises(SpecError):
            query_from_spec({"kind": "count", "relation": "R"})  # no name
        with pytest.raises(SpecError):
            query_from_spec({"name": "Q", "relation": "R", "kind": "median"})
        with pytest.raises(SpecError):
            query_from_spec({"name": "Q", "kind": "sum", "relation": "R"})  # no attribute
        with pytest.raises(SpecError):
            query_from_spec(
                {"name": "Q", "kind": "count", "relation": "R",
                 "where": [{"column": "x", "op": "regex", "value": "y"}]}
            )

    def test_database_spec(self):
        db = database_from_spec({"name": "D1", "relations": {"D1": D1_RECORDS}})
        assert len(db.relation("D1")) == 7
        with pytest.raises(SpecError):
            database_from_spec({"name": "D1"})
        with pytest.raises(SpecError):
            database_from_spec({"relations": {"R": []}})

    def test_database_spec_with_dtypes_pins_the_schema(self):
        from repro.relational.schema import DataType

        # JSON round trips can erase the int/float distinction; an explicit
        # dtypes block rebuilds the sender's exact typed schema (and thereby
        # the same fingerprint).
        db = database_from_spec({
            "name": "R",
            "relations": {"R": [{"id": 1, "v": 1}]},
            "dtypes": {"R": {"id": "integer", "v": "float"}},
        })
        assert db.relation("R").schema.dtype("v") is DataType.FLOAT
        assert db.relation("R").column("v") == [1.0]
        with pytest.raises(SpecError) as excinfo:
            database_from_spec({
                "name": "R",
                "relations": {"R": [{"id": 1}]},
                "dtypes": {"R": {"id": "decimal"}},
            })
        assert excinfo.value.path == "/dtypes/R"

    def test_mapping_and_config_specs(self):
        mapping = mapping_from_spec([["T1:0", "T2:0", 0.95, 0.8]])
        match = next(iter(mapping))
        assert match.probability == 0.95 and match.similarity == 0.8
        config = config_from_spec({"partitioning": "none", "priors": {"alpha": 0.9, "beta": 0.9}})
        assert config.partitioning == "none"
        assert config.priors == Priors(0.9, 0.9)
        with pytest.raises(SpecError):
            config_from_spec({"no_such_field": 1})
        with pytest.raises(SpecError):
            config_from_spec({"priors": {"alpha": 0.2, "beta": 0.9}})  # invalid prior

    def test_request_payload_requires_all_parts(self):
        with pytest.raises(SpecError):
            request_from_payload({"database_left": "D1"})


@pytest.fixture(scope="module")
def running_server():
    service = ExplainService()
    server, thread = serve_in_background(service, port=0)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    client.register_database("D1", {"D1": D1_RECORDS})
    client.register_database("D2", {"D2": D2_RECORDS})
    yield client
    server.shutdown()


class TestHTTPDaemon:
    def test_health_and_stats(self, running_server):
        health = running_server.health()
        assert health["status"] == "ok"
        assert health["breakers"] == {}
        assert health["degradations"] == {}
        assert "spill_errors" in health["caches"]
        assert health["jobs"]["queue_depth"] == 0
        stats = running_server.stats()
        assert "service" in stats and "jobs" in stats
        assert "breakers" in stats["service"]
        assert "degradations" in stats["service"]

    def test_sync_explain_equals_direct_pipeline(self, running_server):
        payload = running_server.explain(EXPLAIN_PAYLOAD)
        # rebuild the identical problem directly, bypassing the service
        from repro import Database, TupleMapping, TupleMatch

        db1 = Database("D1")
        db1.add_records("D1", D1_RECORDS)
        db2 = Database("D2")
        db2.add_records("D2", D2_RECORDS)
        mapping = TupleMapping(
            TupleMatch(left, right, probability)
            for left, right, probability in EXPLAIN_PAYLOAD["tuple_mapping"]
        )
        direct = Explain3D(Explain3DConfig(partitioning="none", priors=Priors(0.9, 0.9))).explain(
            query_from_spec(EXPLAIN_PAYLOAD["query_left"]),
            db1,
            query_from_spec(EXPLAIN_PAYLOAD["query_right"]),
            db2,
            attribute_matches=matching(("Program", "Major")),
            tuple_mapping=mapping,
        )
        expected = direct.to_dict()
        assert payload["query_left"]["result"] == 7.0
        assert payload["query_right"]["result"] == 6.0
        assert payload["explanations"]["provenance"] == expected["explanations"]["provenance"]
        assert payload["explanations"]["value"] == expected["explanations"]["value"]
        assert sorted(
            (e["left"], e["right"]) for e in payload["explanations"]["evidence"]
        ) == sorted((e["left"], e["right"]) for e in expected["explanations"]["evidence"])
        assert payload["summary"]["patterns"] == expected["summary"]["patterns"]

    def test_repeat_request_hits_report_cache(self, running_server):
        running_server.explain(EXPLAIN_PAYLOAD)
        warm = running_server.explain(EXPLAIN_PAYLOAD)
        assert warm["service"]["cached_report"] is True

    def test_async_job_roundtrip(self, running_server):
        job = running_server.submit_job(EXPLAIN_PAYLOAD)
        assert job["state"] in ("queued", "running", "done")
        final = running_server.wait_for_job(job["id"], timeout=30)
        assert final["state"] == "done"
        assert final["result"]["query_left"]["result"] == 7.0

    def test_unknown_job_and_path_are_404(self, running_server):
        with pytest.raises(ServiceClientError) as excinfo:
            running_server.job("job-99999")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceClientError) as excinfo:
            running_server._call("GET", "/nope")
        assert excinfo.value.status == 404

    def test_bad_payload_is_400(self, running_server):
        with pytest.raises(ServiceClientError) as excinfo:
            running_server.explain({"database_left": "D1"})
        assert excinfo.value.status == 400

    def test_malformed_labeled_pairs_is_400(self, running_server):
        payload = dict(EXPLAIN_PAYLOAD, labeled_pairs=[["a", "b", "c"]])
        with pytest.raises(ServiceClientError) as excinfo:
            running_server.explain(payload)
        assert excinfo.value.status == 400  # client error, not a 500

    def test_unknown_database_is_404(self, running_server):
        payload = dict(EXPLAIN_PAYLOAD, database_left="ghost")
        with pytest.raises(ServiceClientError) as excinfo:
            running_server.explain(payload)
        assert excinfo.value.status == 404

    def test_cancel_finished_job_is_409(self, running_server):
        job = running_server.submit_job(EXPLAIN_PAYLOAD)
        running_server.wait_for_job(job["id"], timeout=30)
        with pytest.raises(ServiceClientError) as excinfo:
            running_server.cancel_job(job["id"])
        assert excinfo.value.status == 409

    def test_response_is_pure_json(self, running_server):
        payload = running_server.explain(EXPLAIN_PAYLOAD)
        json.dumps(payload)  # no exotic types survived serialization


class TestSqlAndNestedSpecs:
    """PR 3: SQL query specs, nested sources, and structured spec errors."""

    def test_sql_spec_matches_builder_fingerprint(self):
        built = query_from_spec(
            {"name": "Q2", "sql": "SELECT COUNT(Major) FROM D2 WHERE Univ = 'A'"}
        )
        reference = count_query(
            "Q2", Scan("D2"), predicate=(col("Univ") == "A"), attribute="Major"
        )
        assert built.fingerprint() == reference.fingerprint()

    def test_sql_spec_binds_against_database_when_given(self):
        from repro import Database

        db = Database("D2")
        db.add_records("D2", D2_RECORDS)
        built = query_from_spec(
            {"name": "Q2", "sql": "SELECT COUNT(Major) FROM D2"}, db
        )
        assert built.name == "Q2"
        with pytest.raises(SpecError) as excinfo:
            query_from_spec(
                {"name": "Q2", "sql": "SELECT COUNT(Mojor) FROM D2"}, db, "/query_right"
            )
        assert "did you mean 'Major'" in str(excinfo.value)
        assert excinfo.value.path == "/query_right/sql"

    def test_nested_join_source_spec(self):
        from repro.relational.query import Join

        built = query_from_spec(
            {
                "name": "Q",
                "kind": "sum",
                "attribute": "bach_degr",
                "source": {
                    "join": {"left": "School", "right": "Stats", "on": [["ID", "ID"]]}
                },
                "where": [{"column": "Univ_name", "op": "=", "value": "X"}],
            }
        )
        join = built.root.child.child
        assert isinstance(join, Join)
        assert join.on == (("ID", "ID"),)

    def test_nested_union_and_difference_sources(self):
        from repro.relational.query import Difference, Union

        union_query = query_from_spec(
            {"name": "Q", "kind": "count", "source": {"union": ["A", "B"]}}
        )
        assert isinstance(union_query.root.child, Union)
        diff_query = query_from_spec(
            {
                "name": "Q",
                "kind": "count",
                "source": {
                    "difference": {
                        "left": {"relation": "A", "where": [{"column": "g", "value": "F"}]},
                        "right": "B",
                        "on": ["name"],
                    }
                },
            }
        )
        assert isinstance(diff_query.root.child, Difference)
        assert diff_query.root.child.on == ("name",)

    def test_spec_errors_carry_json_pointer_paths(self):
        with pytest.raises(SpecError) as excinfo:
            query_from_spec(
                {"name": "Q", "relation": "R",
                 "where": [{"column": "x", "op": "bogus"}]},
                None,
                "/query_left",
            )
        assert excinfo.value.path == "/query_left/where/0/op"
        with pytest.raises(SpecError) as excinfo:
            query_from_spec(
                {"name": "Q", "source": {"join": {"left": "A"}}}, None, "/query_left"
            )
        assert excinfo.value.path == "/query_left/source/join"
        with pytest.raises(SpecError) as excinfo:
            query_from_spec(
                {"name": "Q", "source": {"union": ["A"]}}, None, "/query_left"
            )
        assert excinfo.value.path == "/query_left/source/union"
        with pytest.raises(SpecError) as excinfo:
            request_from_payload({"database_left": "D1"})
        assert excinfo.value.path.startswith("/query_left") or excinfo.value.path.startswith("/")

    def test_sql_spec_rejects_conflicting_declarative_keys(self):
        with pytest.raises(SpecError) as excinfo:
            query_from_spec(
                {"name": "Q", "sql": "SELECT COUNT(x) FROM R",
                 "where": [{"column": "y", "value": 1}]},
                None,
                "/query_left",
            )
        assert "declarative keys" in str(excinfo.value)
        assert excinfo.value.path == "/query_left/sql"

    def test_source_spec_rejects_ambiguous_objects(self):
        from repro.service.api import source_from_spec

        with pytest.raises(SpecError):
            source_from_spec({"relation": "A", "join": {}}, "/q")
        with pytest.raises(SpecError):
            source_from_spec(42, "/q")


SQL_EXPLAIN_PAYLOAD = {
    "database_left": "D1",
    "query_left": {"name": "Q1", "sql": "SELECT COUNT(Program) FROM D1"},
    "database_right": "D2",
    "query_right": {
        "name": "Q2",
        "sql": "SELECT COUNT(Major) FROM D2 WHERE Univ = 'A'",
    },
    "attribute_matches": [["Program", "Major"]],
    "tuple_mapping": EXPLAIN_PAYLOAD["tuple_mapping"],
    "config": EXPLAIN_PAYLOAD["config"],
}


class TestHTTPSqlRequests:
    def test_sql_request_output_identical_to_programmatic_path(self, running_server):
        programmatic = running_server.explain(EXPLAIN_PAYLOAD)
        via_sql = running_server.explain(SQL_EXPLAIN_PAYLOAD)
        # The SQL specs lower to fingerprint-identical queries, so the whole
        # request keys the same cached problem and report.
        assert (
            via_sql["service"]["problem_fingerprint"]
            == programmatic["service"]["problem_fingerprint"]
        )
        assert (
            via_sql["service"]["request_fingerprint"]
            == programmatic["service"]["request_fingerprint"]
        )
        scrub = lambda payload: {k: v for k, v in payload.items() if k != "service"}
        assert scrub(via_sql) == scrub(programmatic)

    def test_sql_request_binds_against_registered_schema(self, running_server):
        bad = dict(SQL_EXPLAIN_PAYLOAD)
        bad["query_right"] = {"name": "Q2", "sql": "SELECT COUNT(Mojor) FROM D2"}
        with pytest.raises(ServiceClientError) as excinfo:
            running_server.explain(bad)
        assert excinfo.value.status == 400
        assert "did you mean 'Major'" in excinfo.value.detail

    def test_error_payload_includes_json_pointer_path(self, running_server):
        import urllib.request

        bad = dict(EXPLAIN_PAYLOAD)
        bad["query_right"] = {
            "name": "Q2", "relation": "D2",
            "where": [{"column": "Univ", "op": "bogus"}],
        }
        request = urllib.request.Request(
            f"{running_server.base_url}/explain",
            data=json.dumps(bad).encode(),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            urllib.request.urlopen(request)
            raise AssertionError("expected HTTP 400")
        except urllib.error.HTTPError as exc:
            body = json.loads(exc.read())
            assert exc.code == 400
            assert body["error"]["type"] == "SpecError"
            assert body["error"]["path"] == "/query_right/where/0/op"

    def test_async_job_accepts_sql_specs(self, running_server):
        job = running_server.submit_job(SQL_EXPLAIN_PAYLOAD)
        final = running_server.wait_for_job(job["id"], timeout=30)
        assert final["state"] == "done"
        assert final["result"]["query_left"]["result"] == 7.0

    def test_relation_and_source_conflict_rejected(self):
        with pytest.raises(SpecError) as excinfo:
            query_from_spec(
                {"name": "Q", "kind": "count", "relation": "A",
                 "source": {"union": ["X", "Y"]}},
                None,
                "/query_left",
            )
        assert "both 'relation' and 'source'" in str(excinfo.value)
        assert excinfo.value.path == "/query_left"


class TestPlanEndpoint:
    def test_plan_round_trip(self, running_server):
        payload = running_server.plan(
            {
                "database": "D2",
                "query": {"name": "Q2", "sql": "SELECT COUNT(Major) FROM D2 WHERE Univ = 'A'"},
            }
        )
        assert payload["database"] == "D2"
        assert payload["plan"]["operator"] == "AggregateExec"
        assert payload["rows_out"] == 1
        operators = [payload["plan"]]
        while "children" in operators[-1]:
            operators.append(operators[-1]["children"][0])
        assert operators[-1]["operator"] == "ScanExec"
        assert all("rows" in op and "seconds" in op for op in operators)

    def test_plan_without_run_skips_execution(self, running_server):
        payload = running_server.plan(
            {
                "database": "D1",
                "query": {"name": "Q1", "kind": "count", "relation": "D1",
                          "attribute": "Program"},
                "run": False,
            }
        )
        assert "rows_out" not in payload
        assert payload["plan"]["estimated_rows"] == 1

    def test_plan_missing_fields_is_spec_error(self, running_server):
        with pytest.raises(ServiceClientError) as excinfo:
            running_server.plan({"database": "D1"})
        assert excinfo.value.status == 400

    def test_plan_unknown_database_is_404(self, running_server):
        with pytest.raises(ServiceClientError) as excinfo:
            running_server.plan(
                {"database": "missing",
                 "query": {"name": "Q", "kind": "count", "relation": "X"}}
            )
        assert excinfo.value.status == 404


class TestAnalyzeEndpoint:
    def test_analyze_round_trip_switches_cost_model(self, running_server):
        plan_spec = {
            "database": "D2",
            "query": {"name": "Q2", "sql": "SELECT COUNT(Major) FROM D2"},
        }
        before = running_server.plan(plan_spec)
        assert before["cost_model"] == "heuristic"
        payload = running_server.analyze("D2")
        assert payload["database"] == "D2"
        assert payload["relations"]["D2"]["row_count"] == 7
        columns = payload["relations"]["D2"]["columns"]
        assert columns["Univ"]["distinct"] == 2
        after = running_server.plan(plan_spec)
        assert after["cost_model"] == "statistics"
        assert after["rows_out"] == before["rows_out"]

    def test_analyze_custom_buckets(self, running_server):
        payload = running_server.analyze("D1", buckets=2)
        histogram = payload["relations"]["D1"]["columns"]["Program"]["histogram"]
        assert histogram["buckets"] == 2

    def test_analyze_unknown_database_is_404(self, running_server):
        with pytest.raises(ServiceClientError) as excinfo:
            running_server.analyze("missing")
        assert excinfo.value.status == 404

    def test_analyze_bad_buckets_is_spec_error(self, running_server):
        with pytest.raises(ServiceClientError) as excinfo:
            running_server.analyze("D1", buckets=0)
        assert excinfo.value.status == 400


class TestTypedErrorResponses:
    """Satellite (c): every error type -> a distinct status + uniform envelope.

    The envelope is ``{"error": {"type", "message", "path"}}`` on *every*
    non-2xx response -- including unexpected pipeline failures (structured
    500s, never a bare string).
    """

    @pytest.fixture(autouse=True)
    def _clean_faults(self):
        from repro.reliability.faults import FAULTS

        FAULTS.reset()
        yield
        FAULTS.reset()

    def _raw_error(self, client, path, payload):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            f"{client.base_url}{path}",
            data=json.dumps(payload).encode(),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            urllib.request.urlopen(request)
            raise AssertionError("expected an HTTP error")
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_spec_error_is_400_with_type_and_path(self, running_server):
        bad = dict(EXPLAIN_PAYLOAD)
        bad["on_deadline"] = "shrug"
        code, body = self._raw_error(running_server, "/explain", bad)
        assert code == 400
        assert body["error"]["type"] == "SpecError"
        assert body["error"]["path"] == "/on_deadline"
        assert body["error"]["message"]

    def test_sql_error_is_400_with_sql_type(self, running_server):
        bad = dict(EXPLAIN_PAYLOAD)
        bad["query_left"] = {"name": "Q1", "sql": "SELEKT * FROM D1"}
        code, body = self._raw_error(running_server, "/explain", bad)
        assert code == 400
        assert body["error"]["type"] == "SqlError"
        assert body["error"]["path"] == "/query_left/sql"

    def test_unknown_database_is_404_typed(self, running_server):
        bad = dict(EXPLAIN_PAYLOAD)
        bad["database_left"] = "missing"
        code, body = self._raw_error(running_server, "/explain", bad)
        assert code == 404
        assert body["error"]["type"] == "UnknownDatabaseError"

    def test_unknown_path_is_404_typed(self, running_server):
        with pytest.raises(ServiceClientError) as excinfo:
            running_server._call("GET", "/nope")
        assert excinfo.value.status == 404
        assert excinfo.value.error_type == "NotFound"

    def test_client_surfaces_type_and_path(self, running_server):
        bad = dict(EXPLAIN_PAYLOAD)
        bad["deadline_seconds"] = -1
        with pytest.raises(ServiceClientError) as excinfo:
            running_server.explain(bad)
        assert excinfo.value.status == 400
        assert excinfo.value.error_type == "SpecError"
        assert excinfo.value.path == "/deadline_seconds"

    def test_deadline_exceeded_is_504(self, running_server):
        from repro.reliability.faults import inject

        # A fresh config variant misses the report cache, so the request
        # actually solves (and trips the delayed checkpoint).
        hurried = dict(EXPLAIN_PAYLOAD)
        hurried["config"] = {
            "partitioning": "none",
            "priors": {"alpha": 0.9, "beta": 0.9},
            "min_summary_precision": 0.74,
        }
        hurried["deadline_seconds"] = 0.02
        with inject("solve.partition", "delay:0.1"):
            code, body = self._raw_error(running_server, "/explain", hurried)
        assert code == 504
        assert body["error"]["type"] == "DeadlineExceeded"

    def test_unexpected_failure_is_structured_500(self, figure1_db1, figure1_db2):
        from repro.reliability.faults import inject
        from repro.service import serve_in_background

        service = ExplainService()
        service.register_database(figure1_db1, "D1")
        service.register_database(figure1_db2, "D2")
        server, _ = serve_in_background(service, port=0)
        try:
            host, port = server.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}")
            with inject("solve.partition", "raise"):
                code, body = self._raw_error(client, "/explain", EXPLAIN_PAYLOAD)
            assert code == 500
            assert body["error"]["type"] == "InjectedFault"
            assert body["error"]["message"]
        finally:
            server.shutdown()

    def test_open_breaker_is_503(self, figure1_db1, figure1_db2):
        from repro.reliability.faults import inject
        from repro.service import ServiceConfig, serve_in_background

        service = ExplainService(
            ServiceConfig(breaker_failures=1, breaker_reset_seconds=30.0)
        )
        service.register_database(figure1_db1, "D1")
        service.register_database(figure1_db2, "D2")
        server, _ = serve_in_background(service, port=0)
        try:
            host, port = server.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}")
            with inject("solve.partition", "raise"):
                code, _body = self._raw_error(client, "/explain", EXPLAIN_PAYLOAD)
                assert code == 500
            code, body = self._raw_error(client, "/explain", EXPLAIN_PAYLOAD)
            assert code == 503
            assert body["error"]["type"] == "CircuitOpenError"
            assert client.health()["status"] == "degraded"
        finally:
            server.shutdown()

    def test_cancel_running_job_over_http(self, running_server):
        import time as _time

        from repro.reliability.faults import inject

        # A fresh config variant so the job misses the report cache and
        # actually runs the (delayed) solve.
        slow = dict(EXPLAIN_PAYLOAD)
        slow["config"] = {
            "partitioning": "none",
            "priors": {"alpha": 0.9, "beta": 0.9},
            "min_summary_precision": 0.72,
        }
        with inject("solve.partition", "delay:0.5"):
            job = running_server.submit_job(slow)
            deadline = _time.monotonic() + 5.0
            while True:
                status = running_server.job(job["id"])
                if status["state"] in ("running", "queued"):
                    break
                assert _time.monotonic() < deadline
                _time.sleep(0.005)
            cancelled = running_server.cancel_job(job["id"])
            assert cancelled["id"] == job["id"]
            final = running_server.wait_for_job(job["id"], timeout=10)
        assert final["state"] == "cancelled"
        assert final["cancel_requested"] is True

    def test_cancel_finished_job_is_409(self, running_server):
        job = running_server.submit_job(EXPLAIN_PAYLOAD)
        running_server.wait_for_job(job["id"], timeout=30)
        with pytest.raises(ServiceClientError) as excinfo:
            running_server.cancel_job(job["id"])
        assert excinfo.value.status == 409
        assert excinfo.value.error_type == "JobFinishedError"

    def test_explain_response_reports_deadline_and_degraded(self, running_server):
        result = running_server.explain(EXPLAIN_PAYLOAD)
        assert result["service"]["degraded"] == []
        assert "deadline" in result["service"]


class TestEndpointMetrics:
    """GET /health carries per-endpoint request counts and latency quantiles."""

    def test_health_reports_per_endpoint_latency(self, running_server):
        running_server.explain(EXPLAIN_PAYLOAD)
        endpoints = running_server.health()["endpoints"]
        health_series = endpoints["GET /health"]
        assert health_series["count"] >= 1
        assert health_series["window"] >= 1
        explain_series = endpoints["POST /explain"]
        assert explain_series["count"] >= 1
        assert 0.0 <= explain_series["p50_ms"] <= explain_series["p90_ms"] \
            <= explain_series["p99_ms"]

    def test_errors_are_counted_per_endpoint(self, running_server):
        before = running_server.health()["endpoints"].get(
            "POST /explain", {"errors": 0}
        )["errors"]
        with pytest.raises(ServiceClientError):
            running_server.explain({"database_left": "D1"})
        after = running_server.health()["endpoints"]["POST /explain"]["errors"]
        assert after == before + 1

    def test_unknown_paths_bucket_without_label_explosion(self, running_server):
        for suffix in ("a", "b", "c"):
            with pytest.raises(ServiceClientError):
                running_server._call("GET", f"/no-such-{suffix}")
        endpoints = running_server.health()["endpoints"]
        assert endpoints["GET {unknown}"]["count"] >= 3
        assert not any("/no-such-" in label for label in endpoints)

    def test_job_submissions_carry_idempotency_keys(self, running_server):
        health = running_server.health()
        assert "deduplicated" in health["jobs"]
        first = running_server.submit_job(EXPLAIN_PAYLOAD)
        second = running_server.submit_job(EXPLAIN_PAYLOAD)
        final = running_server.wait_for_job(second["id"], timeout=30)
        assert final["state"] == "done"
        if first["id"] == second["id"]:  # coalesced onto the in-flight job
            assert running_server.health()["jobs"]["deduplicated"] >= 1


@pytest.fixture()
def mutable_server():
    """A private daemon per test: ingest tests mutate the registered data."""
    service = ExplainService()
    server, thread = serve_in_background(service, port=0)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    client.register_database("D1", {"D1": D1_RECORDS})
    client.register_database("D2", {"D2": D2_RECORDS})
    yield client
    server.shutdown()


class TestIngestEndpoint:
    """POST /ingest: row-level deltas over the wire."""

    INSERT = [{"op": "insert", "record": {"Program": "Math", "Degree": "B.S."}}]

    def test_ingest_applies_and_explain_sees_the_delta(self, mutable_server):
        assert mutable_server.explain(EXPLAIN_PAYLOAD)["query_left"]["result"] == 7.0
        summary = mutable_server.ingest("D1", "D1", self.INSERT)
        assert summary["applied"] is True
        assert summary["changes"] == {"insert": 1, "update": 0, "delete": 0}
        assert summary["database"] == "D1" and summary["relation"] == "D1"
        assert summary["fingerprint"] != summary["base_fingerprint"]
        assert mutable_server.explain(EXPLAIN_PAYLOAD)["query_left"]["result"] == 8.0

    def test_retry_without_delta_id_is_idempotent(self, mutable_server):
        first = mutable_server.ingest("D1", "D1", self.INSERT)
        again = mutable_server.ingest("D1", "D1", self.INSERT)
        assert first["applied"] is True
        assert again["applied"] is False and again["deduplicated"] is True
        assert again["delta_id"] == first["delta_id"]
        assert again["fingerprint"] == first["fingerprint"]

    def test_explicit_delta_id_dedupes(self, mutable_server):
        first = mutable_server.ingest("D1", "D1", self.INSERT, delta_id="batch-7")
        again = mutable_server.ingest(
            "D1", "D1", [{"op": "delete", "row": 0}], delta_id="batch-7"
        )
        assert first["applied"] is True and again["applied"] is False
        assert mutable_server.explain(EXPLAIN_PAYLOAD)["query_left"]["result"] == 8.0

    def test_malformed_changes_are_400_with_path(self, mutable_server):
        with pytest.raises(ServiceClientError) as excinfo:
            mutable_server.ingest("D1", "D1", [{"op": "upsert"}])
        assert excinfo.value.status == 400
        assert excinfo.value.error_type == "DeltaError"
        assert excinfo.value.path == "/changes/0/op"

    def test_unknown_relation_is_400(self, mutable_server):
        with pytest.raises(ServiceClientError) as excinfo:
            mutable_server.ingest("D1", "Nope", [{"op": "delete", "row": 0}])
        assert excinfo.value.status == 400

    def test_unknown_database_is_404(self, mutable_server):
        with pytest.raises(ServiceClientError) as excinfo:
            mutable_server.ingest("ghost", "D1", self.INSERT)
        assert excinfo.value.status == 404

    def test_stale_expect_fingerprint_is_409(self, mutable_server):
        first = mutable_server.ingest("D1", "D1", self.INSERT)
        with pytest.raises(ServiceClientError) as excinfo:
            mutable_server.ingest(
                "D1", "D1", [{"op": "delete", "row": 0}],
                expect_fingerprint=first["base_fingerprint"],
            )
        assert excinfo.value.status == 409
        assert excinfo.value.error_type == "DeltaConflictError"

    def test_unaffected_artifacts_are_retained_not_evicted(self, mutable_server):
        mutable_server.explain(EXPLAIN_PAYLOAD)
        # D2's row 6 ("B", "Art") sits outside Q2's Univ='A' provenance.
        summary = mutable_server.ingest("D2", "D2", [{"op": "delete", "row": 6}])
        assert summary["caches"]["evicted"] == 0
        assert summary["caches"]["rewired"] > 0
        warm = mutable_server.explain(EXPLAIN_PAYLOAD)
        assert warm["service"]["cached_report"] is True
        assert warm["query_right"]["result"] == 6.0


RUNS_PAYLOAD = {
    "runs": {
        "left": {
            "name": "run_a",
            "records": [{"id": 1, "v": 1.0}, {"id": 2, "v": 2.0}],
        },
        "right": {
            "name": "run_b",
            "records": [{"id": 1, "v": 1.0}, {"id": 2, "v": 5.0}],
        },
        "key": "id",
    }
}


class TestRunsEndpoint:
    """POST /explain with a {"runs": ...} spec: the run-diff front door."""

    def test_runs_spec_explains_the_pair(self, mutable_server):
        result = mutable_server.explain(RUNS_PAYLOAD)
        assert result["query_left"]["result"] == 3.0
        assert result["query_right"]["result"] == 6.0
        assert result["explanations"]["value"]

    def test_repeat_runs_request_hits_the_report_cache(self, mutable_server):
        mutable_server.explain(RUNS_PAYLOAD)
        warm = mutable_server.explain(RUNS_PAYLOAD)
        assert warm["service"]["cached_report"] is True

    def test_registered_runs_accept_ingest_deltas(self, mutable_server):
        mutable_server.explain(RUNS_PAYLOAD)
        summary = mutable_server.ingest(
            "run_a", "run_a",
            [{"op": "insert", "record": {"id": 3, "v": 4.0}}],
        )
        assert summary["applied"] is True
        # Re-explain over the live databases with the plain payload (the runs
        # spec would re-register the pre-delta rows).
        from repro.runs import compile_runs_payload

        plain = compile_runs_payload(RUNS_PAYLOAD).explain_payload
        assert mutable_server.explain(plain)["query_left"]["result"] == 7.0

    @pytest.mark.parametrize("mutate, pointer", [
        (lambda p: p["runs"].pop("right"), "/runs/right"),
        (lambda p: p["runs"]["left"].pop("name"), "/runs/left/name"),
        (lambda p: p["runs"]["left"].update(records=[]), "/runs/left/records"),
        (lambda p: p["runs"].update(surprise=1), "/runs/surprise"),
        (lambda p: p.update(database_left="D1"), "/database_left"),
        (lambda p: p["runs"].update(key="missing"), "/runs"),
    ])
    def test_malformed_runs_specs_are_typed_400s(self, mutable_server, mutate, pointer):
        import copy

        payload = copy.deepcopy(RUNS_PAYLOAD)
        mutate(payload)
        with pytest.raises(ServiceClientError) as excinfo:
            mutable_server.explain(payload)
        assert excinfo.value.status == 400
        assert excinfo.value.error_type == "RunError"
        assert excinfo.value.path == pointer

    def test_runs_and_declarative_paths_are_byte_identical(self, mutable_server):
        from repro.fleet.__main__ import canonical_report
        from repro.runs import build_run_problem
        from repro.relational.relation import Relation

        left = Relation.from_records(
            RUNS_PAYLOAD["runs"]["left"]["records"], name="run_a"
        )
        right = Relation.from_records(
            RUNS_PAYLOAD["runs"]["right"]["records"], name="run_b"
        )
        direct = build_run_problem(left, right, key=("id",)).explain()
        served = mutable_server.explain(RUNS_PAYLOAD)
        assert canonical_report(served) == canonical_report(direct.to_dict())


class TestEmptyAggregateEnvelope:
    """Regression: a non-COUNT aggregate over an all-NULL column is a typed
    ``EmptyAggregateError`` 400 envelope with a JSON-pointer path, not a
    silent NULL result or a 500."""

    @pytest.fixture(scope="class")
    def null_server(self):
        service = ExplainService()
        server, thread = serve_in_background(service, port=0)
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        records = [{"id": i, "v": None} for i in range(4)]
        client.register_database("N1", {"T": records})
        client.register_database("N2", {"T": records})
        yield client
        server.shutdown()

    def test_plan_run_surfaces_typed_400(self, null_server):
        with pytest.raises(ServiceClientError) as excinfo:
            null_server.plan({
                "database": "N1",
                "query": {"name": "Q", "kind": "sum", "relation": "T", "attribute": "v"},
                "run": True,
            })
        assert excinfo.value.status == 400
        assert excinfo.value.error_type == "EmptyAggregateError"
        assert excinfo.value.path == "/query"
        assert "SUM" in excinfo.value.detail

    def test_plan_without_run_still_explains(self, null_server):
        payload = null_server.plan({
            "database": "N1",
            "query": {"name": "Q", "kind": "sum", "relation": "T", "attribute": "v"},
            "run": False,
        })
        assert payload["query"] == "Q"

    def test_explain_points_at_the_offending_query(self, null_server):
        import urllib.error
        import urllib.request

        payload = {
            "database_left": "N1",
            "query_left": {"name": "Q1", "kind": "sum", "relation": "T", "attribute": "v"},
            "database_right": "N2",
            "query_right": {"name": "Q2", "kind": "count", "relation": "T", "attribute": "id"},
            "attribute_matches": [["id", "id"]],
        }
        request = urllib.request.Request(
            f"{null_server.base_url}/explain",
            data=json.dumps(payload).encode(),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            urllib.request.urlopen(request)
            raise AssertionError("expected HTTP 400")
        except urllib.error.HTTPError as exc:
            code = exc.code
            body = json.loads(exc.read())
        assert code == 400
        assert body["error"]["type"] == "EmptyAggregateError"
        assert body["error"]["path"] == "/query_left"
        assert "SUM over an empty input" in body["error"]["message"]

    def test_count_over_all_null_is_fine(self, null_server):
        payload = null_server.plan({
            "database": "N1",
            "query": {"name": "Q", "kind": "count", "relation": "T", "attribute": "v"},
            "run": True,
        })
        assert payload["rows_out"] == 1  # COUNT always yields a scalar row

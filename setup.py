"""Setup script for the Explain3D reproduction.

A plain setup.py (rather than a PEP 517 pyproject build) is used so that
``pip install -e .`` works in fully offline environments, where build
isolation cannot download setuptools/wheel.
"""

from setuptools import setup

setup()

"""Tuple matches and the initial tuple mapping (Definition 2.4).

A tuple match ``(t_i, t_j, p)`` associates a tuple of one canonical relation
with a tuple of the other, with probability ``p`` that they refer to the same
(or containment-associated) entity.  The *initial* mapping is produced by a
record-linkage step (similarity scoring + calibration); Explain3D's Stage 2
refines it into the *evidence mapping* ``M*_tuple``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, NamedTuple, Sequence

import numpy as np

from repro.matching.attribute_match import AttributeMatching
from repro.matching.blocking import TokenBlocker
from repro.matching.features import BatchScorer, TupleFeatureCache


class CandidateMatch(NamedTuple):
    """A scored candidate pair before probability calibration.

    A ``NamedTuple`` rather than a dataclass: candidate generation constructs
    one per surviving pair, and tuple construction is several times cheaper
    than a frozen dataclass's ``__init__``.
    """

    left_key: str
    right_key: str
    similarity: float


@dataclass(frozen=True)
class TupleMatch:
    """A probabilistic tuple match ``(t_i, t_j, p)``."""

    left_key: str
    right_key: str
    probability: float
    similarity: float = 0.0

    @property
    def pair(self) -> tuple[str, str]:
        return (self.left_key, self.right_key)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TupleMatch({self.left_key} ~ {self.right_key}, p={self.probability:.3f})"


class TupleMapping:
    """A set of tuple matches with by-side indexes.

    Used both for the initial mapping ``M_tuple`` and the refined evidence
    mapping ``M*_tuple``.
    """

    def __init__(self, matches: Iterable[TupleMatch] = ()):
        self._matches: list[TupleMatch] = []
        self._by_left: dict[str, list[TupleMatch]] = defaultdict(list)
        self._by_right: dict[str, list[TupleMatch]] = defaultdict(list)
        self._pairs: set[tuple[str, str]] = set()
        self._probability: dict[tuple[str, str], float] = {}
        self._pairs_view: frozenset[tuple[str, str]] | None = None
        for match in matches:
            self.add(match)

    # -- container protocol -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._matches)

    def __iter__(self) -> Iterator[TupleMatch]:
        return iter(self._matches)

    def __contains__(self, pair: tuple[str, str]) -> bool:
        return tuple(pair) in self._pairs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TupleMapping({len(self._matches)} matches)"

    # -- mutation -----------------------------------------------------------------
    def add(self, match: TupleMatch) -> None:
        if match.pair in self._pairs:
            return
        self._matches.append(match)
        self._pairs.add(match.pair)
        self._probability[match.pair] = match.probability
        self._pairs_view = None
        self._by_left[match.left_key].append(match)
        self._by_right[match.right_key].append(match)

    # -- accessors ----------------------------------------------------------------
    @property
    def matches(self) -> tuple[TupleMatch, ...]:
        return tuple(self._matches)

    def pairs(self) -> frozenset[tuple[str, str]]:
        """A frozen view of all (left, right) pairs, cached between mutations."""
        if self._pairs_view is None:
            self._pairs_view = frozenset(self._pairs)
        return self._pairs_view

    def for_left(self, key: str) -> tuple[TupleMatch, ...]:
        return tuple(self._by_left.get(key, ()))

    def for_right(self, key: str) -> tuple[TupleMatch, ...]:
        return tuple(self._by_right.get(key, ()))

    def left_keys(self) -> set[str]:
        return set(self._by_left.keys())

    def right_keys(self) -> set[str]:
        return set(self._by_right.keys())

    def probability(self, left_key: str, right_key: str) -> float | None:
        return self._probability.get((left_key, right_key))

    def filtered(self, predicate: Callable[[TupleMatch], bool]) -> "TupleMapping":
        return TupleMapping(match for match in self._matches if predicate(match))

    def above(self, threshold: float) -> "TupleMapping":
        """Matches with probability >= threshold (the THRESHOLD baseline)."""
        return self.filtered(lambda match: match.probability >= threshold)

    def restricted_to(self, left_keys: set[str], right_keys: set[str]) -> "TupleMapping":
        return self.filtered(
            lambda match: match.left_key in left_keys and match.right_key in right_keys
        )

    def best_per_left(self) -> "TupleMapping":
        """Keep only the highest-probability match of each left tuple."""
        best: dict[str, TupleMatch] = {}
        for match in self._matches:
            current = best.get(match.left_key)
            if current is None or match.probability > current.probability:
                best[match.left_key] = match
        return TupleMapping(best.values())

    def sorted_by_probability(self, *, descending: bool = True) -> list[TupleMatch]:
        return sorted(
            self._matches, key=lambda match: match.probability, reverse=descending
        )


def generate_candidates(
    left_tuples: Sequence,
    right_tuples: Sequence,
    attribute_matches: AttributeMatching,
    *,
    min_similarity: float = 0.0,
    use_blocking: bool = True,
    block_threshold: int = 10_000,
    left_features: TupleFeatureCache | None = None,
    right_features: TupleFeatureCache | None = None,
) -> list[CandidateMatch]:
    """Score candidate pairs of canonical tuples by combined similarity.

    ``left_tuples`` / ``right_tuples`` are objects exposing ``key`` and a
    ``values`` mapping (both :class:`~repro.relational.provenance.ProvenanceTuple`
    and :class:`~repro.core.canonical.CanonicalTuple` qualify).  Pairs scoring
    at or below ``min_similarity`` are dropped.

    Features (token sets, numeric columns) are cached once per tuple and all
    candidate pairs are scored in one vectorized batch; blocking engages when
    the cross product exceeds ``block_threshold`` pairs.  The blocker is exact
    (see :class:`~repro.matching.blocking.TokenBlocker`), so the result is
    identical to scoring every pair.

    ``left_features`` / ``right_features`` optionally inject prebuilt
    :class:`TupleFeatureCache` instances (e.g. reused across service requests);
    a cache that does not cover the tuples and matched attributes is rebuilt.
    """
    attribute_pairs = attribute_matches.attribute_pairs()
    left_values = [t.values for t in left_tuples]
    right_values = [t.values for t in right_tuples]
    left_attrs = [pair[0] for pair in attribute_pairs]
    right_attrs = [pair[1] for pair in attribute_pairs]
    if left_features is None or not left_features.covers(len(left_values), left_attrs):
        left_features = TupleFeatureCache(left_values, left_attrs)
    if right_features is None or not right_features.covers(len(right_values), right_attrs):
        right_features = TupleFeatureCache(right_values, right_attrs)
    left_keys = np.asarray([t.key for t in left_tuples], dtype=object)
    right_keys = np.asarray([t.key for t in right_tuples], dtype=object)

    candidates: list[CandidateMatch] = []
    scorer = BatchScorer(left_features, right_features, attribute_pairs)

    def score_pairs(ii: np.ndarray, jj: np.ndarray) -> None:
        similarities = scorer.score(ii, jj)
        keep = np.flatnonzero(similarities > min_similarity)
        if keep.size:
            candidates.extend(
                map(
                    CandidateMatch,
                    left_keys[ii[keep]].tolist(),
                    right_keys[jj[keep]].tolist(),
                    similarities[keep].tolist(),
                )
            )

    if use_blocking and len(left_tuples) * len(right_tuples) > block_threshold:
        blocker = TokenBlocker(attribute_pairs)
        ii, jj = blocker.candidate_pair_arrays(
            left_values,
            right_values,
            left_features=left_features,
            right_features=right_features,
        )
        score_pairs(ii, jj)
    elif len(left_tuples) and len(right_tuples):
        # Unblocked cross product: score in bounded row-major chunks so the
        # pair index arrays (and their sparse intermediates) never hold more
        # than ~1M pairs at once, keeping memory proportional to the output.
        num_right = len(right_tuples)
        rows_per_chunk = max(1, _UNBLOCKED_PAIR_CHUNK // num_right)
        for row_start in range(0, len(left_tuples), rows_per_chunk):
            rows = np.arange(
                row_start, min(row_start + rows_per_chunk, len(left_tuples)), dtype=np.intp
            )
            ii = np.repeat(rows, num_right)
            jj = np.tile(np.arange(num_right, dtype=np.intp), len(rows))
            score_pairs(ii, jj)
    return candidates


_UNBLOCKED_PAIR_CHUNK = 1 << 20

"""Tuple matches and the initial tuple mapping (Definition 2.4).

A tuple match ``(t_i, t_j, p)`` associates a tuple of one canonical relation
with a tuple of the other, with probability ``p`` that they refer to the same
(or containment-associated) entity.  The *initial* mapping is produced by a
record-linkage step (similarity scoring + calibration); Explain3D's Stage 2
refines it into the *evidence mapping* ``M*_tuple``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.matching.attribute_match import AttributeMatching
from repro.matching.blocking import TokenBlocker, all_pairs
from repro.matching.similarity import combined_similarity


@dataclass(frozen=True)
class CandidateMatch:
    """A scored candidate pair before probability calibration."""

    left_key: str
    right_key: str
    similarity: float


@dataclass(frozen=True)
class TupleMatch:
    """A probabilistic tuple match ``(t_i, t_j, p)``."""

    left_key: str
    right_key: str
    probability: float
    similarity: float = 0.0

    @property
    def pair(self) -> tuple[str, str]:
        return (self.left_key, self.right_key)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TupleMatch({self.left_key} ~ {self.right_key}, p={self.probability:.3f})"


class TupleMapping:
    """A set of tuple matches with by-side indexes.

    Used both for the initial mapping ``M_tuple`` and the refined evidence
    mapping ``M*_tuple``.
    """

    def __init__(self, matches: Iterable[TupleMatch] = ()):
        self._matches: list[TupleMatch] = []
        self._by_left: dict[str, list[TupleMatch]] = defaultdict(list)
        self._by_right: dict[str, list[TupleMatch]] = defaultdict(list)
        self._pairs: set[tuple[str, str]] = set()
        for match in matches:
            self.add(match)

    # -- container protocol -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._matches)

    def __iter__(self) -> Iterator[TupleMatch]:
        return iter(self._matches)

    def __contains__(self, pair: tuple[str, str]) -> bool:
        return tuple(pair) in self._pairs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TupleMapping({len(self._matches)} matches)"

    # -- mutation -----------------------------------------------------------------
    def add(self, match: TupleMatch) -> None:
        if match.pair in self._pairs:
            return
        self._matches.append(match)
        self._pairs.add(match.pair)
        self._by_left[match.left_key].append(match)
        self._by_right[match.right_key].append(match)

    # -- accessors ----------------------------------------------------------------
    @property
    def matches(self) -> tuple[TupleMatch, ...]:
        return tuple(self._matches)

    def pairs(self) -> set[tuple[str, str]]:
        return set(self._pairs)

    def for_left(self, key: str) -> tuple[TupleMatch, ...]:
        return tuple(self._by_left.get(key, ()))

    def for_right(self, key: str) -> tuple[TupleMatch, ...]:
        return tuple(self._by_right.get(key, ()))

    def left_keys(self) -> set[str]:
        return set(self._by_left.keys())

    def right_keys(self) -> set[str]:
        return set(self._by_right.keys())

    def probability(self, left_key: str, right_key: str) -> float | None:
        for match in self._by_left.get(left_key, ()):
            if match.right_key == right_key:
                return match.probability
        return None

    def filtered(self, predicate: Callable[[TupleMatch], bool]) -> "TupleMapping":
        return TupleMapping(match for match in self._matches if predicate(match))

    def above(self, threshold: float) -> "TupleMapping":
        """Matches with probability >= threshold (the THRESHOLD baseline)."""
        return self.filtered(lambda match: match.probability >= threshold)

    def restricted_to(self, left_keys: set[str], right_keys: set[str]) -> "TupleMapping":
        return self.filtered(
            lambda match: match.left_key in left_keys and match.right_key in right_keys
        )

    def best_per_left(self) -> "TupleMapping":
        """Keep only the highest-probability match of each left tuple."""
        best: dict[str, TupleMatch] = {}
        for match in self._matches:
            current = best.get(match.left_key)
            if current is None or match.probability > current.probability:
                best[match.left_key] = match
        return TupleMapping(best.values())

    def sorted_by_probability(self, *, descending: bool = True) -> list[TupleMatch]:
        return sorted(
            self._matches, key=lambda match: match.probability, reverse=descending
        )


def generate_candidates(
    left_tuples: Sequence,
    right_tuples: Sequence,
    attribute_matches: AttributeMatching,
    *,
    min_similarity: float = 0.0,
    use_blocking: bool = True,
) -> list[CandidateMatch]:
    """Score candidate pairs of canonical tuples by combined similarity.

    ``left_tuples`` / ``right_tuples`` are objects exposing ``key`` and a
    ``values`` mapping (both :class:`~repro.relational.provenance.ProvenanceTuple`
    and :class:`~repro.core.canonical.CanonicalTuple` qualify).  Pairs scoring
    at or below ``min_similarity`` are dropped.
    """
    attribute_pairs = attribute_matches.attribute_pairs()
    left_values = [t.values for t in left_tuples]
    right_values = [t.values for t in right_tuples]

    if use_blocking and len(left_tuples) * len(right_tuples) > 10_000:
        blocker = TokenBlocker(attribute_pairs)
        pair_iter = blocker.candidate_pairs(left_values, right_values)
    else:
        pair_iter = all_pairs(left_values, right_values)

    candidates: list[CandidateMatch] = []
    for i, j in pair_iter:
        similarity = combined_similarity(left_values[i], right_values[j], attribute_pairs)
        if similarity > min_similarity:
            candidates.append(
                CandidateMatch(left_tuples[i].key, right_tuples[j].key, similarity)
            )
    return candidates

"""Similarity measures used to build the initial tuple mapping.

Section 5.1.2 of the paper uses token-wise Jaccard similarity for string
attributes, normalized Euclidean distance for numeric attributes, and the mean
over matched attributes as the combined tuple similarity.

The functions here are the *scalar reference* implementations: they tokenize
their arguments on every call.  The candidate-generation hot path instead
caches token sets and numeric columns once per tuple and scores whole blocks
of pairs in one vectorized shot -- see :mod:`repro.matching.features`, whose
results are bit-identical to these functions.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


def tokenize(value) -> frozenset[str]:
    """Lower-cased alphanumeric tokens of a value (empty set for NULL)."""
    if value is None:
        return frozenset()
    return frozenset(_TOKEN_PATTERN.findall(str(value).lower()))


def token_jaccard(left, right) -> float:
    """Token-wise Jaccard similarity: |tokens(a) ∩ tokens(b)| / |tokens(a) ∪ tokens(b)|."""
    left_tokens = tokenize(left)
    right_tokens = tokenize(right)
    if not left_tokens and not right_tokens:
        return 1.0
    union = left_tokens | right_tokens
    if not union:
        return 0.0
    return len(left_tokens & right_tokens) / len(union)


def normalized_euclidean_similarity(left, right) -> float:
    """``1 / (1 + |a - b|^2)`` similarity for numeric attributes."""
    if left is None or right is None:
        return 0.0
    try:
        difference = float(left) - float(right)
    except (TypeError, ValueError):
        return 0.0
    return 1.0 / (1.0 + difference * difference)


def value_similarity(left, right) -> float:
    """Dispatch on value type: numeric pairs use Euclidean, otherwise Jaccard."""
    left_numeric = isinstance(left, (int, float)) and not isinstance(left, bool)
    right_numeric = isinstance(right, (int, float)) and not isinstance(right, bool)
    if left_numeric and right_numeric:
        return normalized_euclidean_similarity(left, right)
    return token_jaccard(left, right)


def combined_similarity(
    left_values: dict,
    right_values: dict,
    attribute_pairs: Sequence[tuple[str, str]],
) -> float:
    """Mean similarity across the matched attribute pairs (Section 5.1.2)."""
    if not attribute_pairs:
        return 0.0
    total = 0.0
    for left_attr, right_attr in attribute_pairs:
        total += value_similarity(left_values.get(left_attr), right_values.get(right_attr))
    return total / len(attribute_pairs)


def token_containment(left, right) -> float:
    """Fraction of ``left``'s tokens contained in ``right`` (used by the schema matcher)."""
    left_tokens = tokenize(left)
    if not left_tokens:
        return 0.0
    right_tokens = tokenize(right)
    return len(left_tokens & right_tokens) / len(left_tokens)


def jaro_similarity(left: str, right: str) -> float:
    """Jaro string similarity.

    The paper mentions evaluating RSWOOSH with Jaro similarity (footnote 13);
    it is provided for completeness and used in baseline ablations.
    """
    s1 = str(left or "")
    s2 = str(right or "")
    if s1 == s2:
        return 1.0
    len1, len2 = len(s1), len(s2)
    if len1 == 0 or len2 == 0:
        return 0.0
    match_window = max(len1, len2) // 2 - 1
    match_window = max(match_window, 0)
    s1_matches = [False] * len1
    s2_matches = [False] * len2
    matches = 0
    for i, ch in enumerate(s1):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len2)
        for j in range(start, end):
            if s2_matches[j] or s2[j] != ch:
                continue
            s1_matches[i] = True
            s2_matches[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    k = 0
    for i in range(len1):
        if not s1_matches[i]:
            continue
        while not s2_matches[k]:
            k += 1
        if s1[i] != s2[k]:
            transpositions += 1
        k += 1
    transpositions //= 2
    return (
        matches / len1 + matches / len2 + (matches - transpositions) / matches
    ) / 3.0


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean with an explicit zero for empty input."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)

"""Per-tuple feature caching and batched similarity scoring (the Stage 1 hot path).

Candidate generation used to call the tokenizer regex once per *compared pair*
and attribute, which makes Stage 1 O(pairs x attributes) regex invocations on
the paper's workloads.  :class:`TupleFeatureCache` tokenizes every attribute
value exactly once per canonical tuple -- O(tuples x attributes) -- and also
records which values are numeric.  :func:`batch_similarity` then scores an
arbitrary list of candidate pairs in one NumPy/SciPy shot: token-set
intersection sizes come from sparse token-incidence matrices, numeric
similarity from array arithmetic.

Both the batched path and the scalar :func:`pair_similarity` produce results
bit-identical to :func:`repro.matching.similarity.combined_similarity`, which
remains the reference implementation (and is still used by tests to
cross-check this kernel).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import sparse

from repro.matching.similarity import tokenize

_EMPTY: frozenset[str] = frozenset()


def is_numeric_value(value) -> bool:
    """True for int/float values, excluding bools (mirrors ``value_similarity``)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class TupleFeatureCache:
    """Precomputed matching features for a sequence of tuple value mappings.

    For every tuple and every attribute the cache holds the frozen token set
    (:func:`tokenize` is called exactly once per value) plus, for numeric
    values, the float value and a numeric flag.  Attribute columns are
    addressed by position via :meth:`attribute_position`.
    """

    def __init__(self, values: Sequence[dict], attributes: Sequence[str]):
        self.attributes = tuple(dict.fromkeys(attributes))
        self.num_tuples = len(values)
        self._attr_index = {name: pos for pos, name in enumerate(self.attributes)}
        num_attrs = len(self.attributes)
        # tokens[a][t] is the frozen token set of attribute a of tuple t.
        self.tokens: list[list[frozenset[str]]] = [
            [_EMPTY] * self.num_tuples for _ in range(num_attrs)
        ]
        self.is_numeric = np.zeros((num_attrs, self.num_tuples), dtype=bool)
        self.numeric = np.zeros((num_attrs, self.num_tuples), dtype=np.float64)
        # Per-attribute token-id CSR pieces: a local vocabulary plus flat id
        # arrays, so batch scoring never re-walks the token sets.
        self._vocabularies: list[dict[str, int]] = [{} for _ in range(num_attrs)]
        token_ids: list[list[int]] = [[] for _ in range(num_attrs)]
        self._indptr = [np.zeros(self.num_tuples + 1, dtype=np.int64) for _ in range(num_attrs)]
        for t, record in enumerate(values):
            for a, name in enumerate(self.attributes):
                value = record.get(name)
                tokens = tokenize(value)
                self.tokens[a][t] = tokens
                vocabulary = self._vocabularies[a]
                ids = token_ids[a]
                for token in tokens:
                    ids.append(vocabulary.setdefault(token, len(vocabulary)))
                self._indptr[a][t + 1] = len(ids)
                if is_numeric_value(value):
                    self.is_numeric[a, t] = True
                    self.numeric[a, t] = float(value)
        self._token_ids = [np.asarray(ids, dtype=np.int64) for ids in token_ids]

    def token_column(self, position: int) -> tuple[dict[str, int], np.ndarray, np.ndarray]:
        """(vocabulary, CSR indptr, flat token ids) of one attribute column."""
        return self._vocabularies[position], self._indptr[position], self._token_ids[position]

    @classmethod
    def from_tuples(cls, tuples: Sequence, attributes: Sequence[str]) -> "TupleFeatureCache":
        """Build a cache from objects exposing a ``values`` mapping."""
        return cls([t.values for t in tuples], attributes)

    def covers(self, num_tuples: int, attributes: Sequence[str]) -> bool:
        """Whether this cache can serve ``num_tuples`` tuples over ``attributes``.

        All lookups are by attribute name, so a cache built over a superset of
        the requested attributes is reusable as-is.  The service layer uses
        this to validate prebuilt caches before injecting them into candidate
        generation; the cache itself is picklable, so it can also be spilled
        to disk and reloaded across processes.
        """
        return self.num_tuples == num_tuples and all(
            name in self._attr_index for name in attributes
        )

    def attribute_position(self, name: str) -> int:
        return self._attr_index[name]

    def __len__(self) -> int:
        return self.num_tuples


def pair_similarity(
    left: TupleFeatureCache,
    right: TupleFeatureCache,
    i: int,
    j: int,
    attribute_pairs: Sequence[tuple[str, str]],
) -> float:
    """Scalar combined similarity of one pair, from cached features only."""
    if not attribute_pairs:
        return 0.0
    total = 0.0
    for left_attr, right_attr in attribute_pairs:
        a = left.attribute_position(left_attr)
        b = right.attribute_position(right_attr)
        if left.is_numeric[a, i] and right.is_numeric[b, j]:
            difference = left.numeric[a, i] - right.numeric[b, j]
            total += 1.0 / (1.0 + difference * difference)
            continue
        left_tokens = left.tokens[a][i]
        right_tokens = right.tokens[b][j]
        if not left_tokens and not right_tokens:
            total += 1.0
            continue
        union = len(left_tokens | right_tokens)
        if union:
            total += len(left_tokens & right_tokens) / union
    return total / len(attribute_pairs)


class BatchScorer:
    """Batched pair scoring for one (left cache, right cache, attribute pairs).

    Construction builds, once per matched attribute, the shared-vocabulary
    sparse token-incidence matrices of both sides: the left column's local ids
    are used as-is, the right column's local ids are remapped into the left
    vocabulary (O(|vocabulary|), not O(token instances)).  :meth:`score` can
    then be called repeatedly -- e.g. per chunk of an unblocked cross product
    -- without re-walking any token sets.
    """

    def __init__(
        self,
        left: TupleFeatureCache,
        right: TupleFeatureCache,
        attribute_pairs: Sequence[tuple[str, str]],
    ):
        self.left = left
        self.right = right
        self.attribute_pairs = list(attribute_pairs)
        self._columns: list[tuple] = []
        for left_attr, right_attr in self.attribute_pairs:
            a = left.attribute_position(left_attr)
            b = right.attribute_position(right_attr)
            left_vocabulary, left_indptr, left_ids = left.token_column(a)
            right_vocabulary, right_indptr, right_local_ids = right.token_column(b)
            merged = dict(left_vocabulary)
            remap = np.empty(len(right_vocabulary), dtype=np.int64)
            for token, local_id in right_vocabulary.items():
                remap[local_id] = merged.setdefault(token, len(merged))
            right_ids = remap[right_local_ids] if right_local_ids.size else right_local_ids
            width = max(len(merged), 1)
            left_matrix = sparse.csr_matrix(
                (np.ones(len(left_ids), dtype=np.int64), left_ids, left_indptr),
                shape=(left.num_tuples, width),
            )
            right_matrix = sparse.csr_matrix(
                (np.ones(len(right_ids), dtype=np.int64), right_ids, right_indptr),
                shape=(right.num_tuples, width),
            )
            self._columns.append(
                (a, b, left_matrix, right_matrix, np.diff(left_indptr), np.diff(right_indptr))
            )

    def score(self, left_indices, right_indices) -> np.ndarray:
        """Combined similarity of all ``(left_indices[k], right_indices[k])`` pairs.

        One sparse-matrix pass per matched attribute; the result is
        bit-identical to calling
        :func:`repro.matching.similarity.combined_similarity` per pair (the
        accumulation order over attributes is the same).
        """
        ii = np.asarray(left_indices, dtype=np.intp)
        jj = np.asarray(right_indices, dtype=np.intp)
        if ii.size == 0 or not self.attribute_pairs:
            return np.zeros(ii.shape[0], dtype=np.float64)
        total = np.zeros(ii.shape[0], dtype=np.float64)
        for a, b, left_matrix, right_matrix, left_sizes, right_sizes in self._columns:
            intersection = np.asarray(
                left_matrix[ii].multiply(right_matrix[jj]).sum(axis=1), dtype=np.float64
            ).ravel()
            union = (left_sizes[ii] + right_sizes[jj]).astype(np.float64) - intersection
            # Both token sets empty -> Jaccard is defined as 1.0 (see token_jaccard).
            similarities = np.where(
                union > 0.0, intersection / np.where(union > 0.0, union, 1.0), 1.0
            )
            both_numeric = self.left.is_numeric[a][ii] & self.right.is_numeric[b][jj]
            if both_numeric.any():
                # Compute the Euclidean branch only over both-numeric pairs:
                # evaluating it for every pair would trip overflow/invalid
                # warnings on inf/nan placeholders the pair never uses.
                numeric_at = np.flatnonzero(both_numeric)
                difference = (
                    self.left.numeric[a][ii[numeric_at]]
                    - self.right.numeric[b][jj[numeric_at]]
                )
                similarities[numeric_at] = 1.0 / (1.0 + difference * difference)
            total += similarities
        return total / len(self.attribute_pairs)


def batch_similarity(
    left: TupleFeatureCache,
    right: TupleFeatureCache,
    attribute_pairs: Sequence[tuple[str, str]],
    left_indices,
    right_indices,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`BatchScorer`."""
    return BatchScorer(left, right, attribute_pairs).score(left_indices, right_indices)

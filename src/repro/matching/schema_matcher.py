"""Automatic derivation of attribute matches.

The paper treats attribute matches as input derived by "standard schema
matching techniques".  To make the reproduction runnable end-to-end without
external tools, this module implements a simple instance- and name-based
schema matcher:

* **name similarity** -- token Jaccard over attribute names;
* **value overlap** -- average best-token-containment of one attribute's
  values in the other's;
* **cardinality analysis** -- if distinct values of ``A_i`` map onto fewer
  distinct values of ``A_j`` (many-to-one), the match is reported as
  less-general (``A_i <= A_j``); the symmetric case is more-general; otherwise
  equivalence.

The matcher is intentionally conservative: it only proposes matches whose
combined score clears a threshold, and the Explain3D pipeline always lets the
user override its output with explicitly declared matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.matching.attribute_match import AttributeMatch, AttributeMatching, SemanticRelation
from repro.matching.similarity import token_containment, token_jaccard, tokenize


@dataclass(frozen=True)
class AttributeProfile:
    """Summary of one attribute's values used for matching."""

    name: str
    values: tuple
    is_numeric: bool

    @classmethod
    def from_values(cls, name: str, values: Sequence) -> "AttributeProfile":
        cleaned = tuple(value for value in values if value is not None)
        numeric = bool(cleaned) and all(
            isinstance(value, (int, float)) and not isinstance(value, bool)
            for value in cleaned
        )
        return cls(name, cleaned, numeric)

    @property
    def distinct_count(self) -> int:
        return len(set(self.values))


class SchemaMatcher:
    """Instance-based schema matcher producing :class:`AttributeMatching`."""

    def __init__(
        self,
        *,
        min_score: float = 0.35,
        name_weight: float = 0.4,
        value_weight: float = 0.6,
        containment_margin: float = 0.25,
    ):
        if abs(name_weight + value_weight - 1.0) > 1e-9:
            raise ValueError("name_weight and value_weight must sum to 1")
        self.min_score = min_score
        self.name_weight = name_weight
        self.value_weight = value_weight
        self.containment_margin = containment_margin

    # -- scoring ------------------------------------------------------------------
    def _value_overlap(self, left: AttributeProfile, right: AttributeProfile) -> float:
        """Mean best containment of left values in right values (sampled)."""
        if not left.values or not right.values:
            return 0.0
        if left.is_numeric != right.is_numeric:
            return 0.0
        if left.is_numeric and right.is_numeric:
            left_set = set(left.values)
            right_set = set(right.values)
            union = left_set | right_set
            return len(left_set & right_set) / len(union) if union else 0.0

        sample = list(dict.fromkeys(left.values))[:200]
        right_sample = list(dict.fromkeys(right.values))[:400]
        right_tokens = [tokenize(value) for value in right_sample]
        total = 0.0
        for value in sample:
            value_tokens = tokenize(value)
            if not value_tokens:
                continue
            best = 0.0
            for tokens in right_tokens:
                if not tokens:
                    continue
                containment = len(value_tokens & tokens) / len(value_tokens)
                if containment > best:
                    best = containment
                    if best == 1.0:
                        break
            total += best
        return total / len(sample) if sample else 0.0

    def score(self, left: AttributeProfile, right: AttributeProfile) -> float:
        """Combined match score of two attribute profiles in [0, 1]."""
        name_score = token_jaccard(left.name, right.name)
        value_score = (
            self._value_overlap(left, right) + self._value_overlap(right, left)
        ) / 2.0
        return self.name_weight * name_score + self.value_weight * value_score

    def _relation_for(
        self, left: AttributeProfile, right: AttributeProfile
    ) -> SemanticRelation:
        """Decide the semantic relation from directional containment."""
        left_in_right = self._value_overlap(left, right)
        right_in_left = self._value_overlap(right, left)
        if left_in_right > right_in_left + self.containment_margin:
            # Left values are (parts of) right values: many programs, one college.
            return SemanticRelation.LESS_GENERAL
        if right_in_left > left_in_right + self.containment_margin:
            return SemanticRelation.MORE_GENERAL
        return SemanticRelation.EQUIVALENT

    # -- matching -----------------------------------------------------------------
    def match_profiles(
        self,
        left_profiles: Sequence[AttributeProfile],
        right_profiles: Sequence[AttributeProfile],
    ) -> AttributeMatching:
        """Greedy best-first matching of attribute profiles."""
        scored: list[tuple[float, AttributeProfile, AttributeProfile]] = []
        for left in left_profiles:
            for right in right_profiles:
                score = self.score(left, right)
                if score >= self.min_score:
                    scored.append((score, left, right))
        scored.sort(key=lambda item: item[0], reverse=True)

        used_left: set[str] = set()
        used_right: set[str] = set()
        result = AttributeMatching()
        for score, left, right in scored:
            if left.name in used_left or right.name in used_right:
                continue
            used_left.add(left.name)
            used_right.add(right.name)
            result.add(
                AttributeMatch.single(left.name, right.name, self._relation_for(left, right))
            )
        return result

    def match_provenance(self, left_provenance, right_provenance) -> AttributeMatching:
        """Match the categorical attributes of two provenance relations."""
        left_profiles = [
            AttributeProfile.from_values(name, left_provenance.values(name))
            for name in left_provenance.attributes
        ]
        right_profiles = [
            AttributeProfile.from_values(name, right_provenance.values(name))
            for name in right_provenance.attributes
        ]
        # Numeric measure attributes (impacts, ids) are poor join keys for
        # semantic matching; prefer string attributes when any exist.
        left_strings = [p for p in left_profiles if not p.is_numeric]
        right_strings = [p for p in right_profiles if not p.is_numeric]
        if left_strings and right_strings:
            return self.match_profiles(left_strings, right_strings)
        return self.match_profiles(left_profiles, right_profiles)


def infer_attribute_matches(left_provenance, right_provenance, **kwargs) -> AttributeMatching:
    """Convenience wrapper: infer ``M_attr`` from two provenance relations."""
    return SchemaMatcher(**kwargs).match_provenance(left_provenance, right_provenance)

"""Similarity-to-probability calibration (Section 5.1.2).

The paper converts raw similarity scores into match probabilities in two steps:

1. divide the candidate matches into ``k`` contiguous buckets over similarity
   (the paper uses 50);
2. within each bucket, the probability of every match is the fraction of true
   matches in that bucket, estimated from a labeled sample (or gold standard).

Empty buckets inherit an interpolated probability from their neighbours so the
calibrator is total over [0, 1].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.matching.tuple_matching import CandidateMatch, TupleMatch, TupleMapping

_MIN_PROBABILITY = 1e-3
_MAX_PROBABILITY = 1.0 - 1e-3


def _clamp(probability: float) -> float:
    """Keep probabilities away from 0/1 so log-likelihoods stay finite."""
    return min(max(probability, _MIN_PROBABILITY), _MAX_PROBABILITY)


@dataclass
class SimilarityCalibrator:
    """Bucket-based similarity-to-probability calibration."""

    num_buckets: int = 50
    _bucket_probabilities: list[float] = field(default_factory=list, repr=False)

    def _bucket_of(self, similarity: float) -> int:
        similarity = min(max(similarity, 0.0), 1.0)
        index = int(similarity * self.num_buckets)
        return min(index, self.num_buckets - 1)

    def fit(self, similarities: Sequence[float], labels: Sequence[bool]) -> "SimilarityCalibrator":
        """Estimate per-bucket probabilities from labeled similarities."""
        if len(similarities) != len(labels):
            raise ValueError("similarities and labels must have the same length")
        positives = [0] * self.num_buckets
        totals = [0] * self.num_buckets
        for similarity, label in zip(similarities, labels):
            bucket = self._bucket_of(similarity)
            totals[bucket] += 1
            if label:
                positives[bucket] += 1

        raw: list[float | None] = []
        for bucket in range(self.num_buckets):
            if totals[bucket] == 0:
                raw.append(None)
            else:
                raw.append(positives[bucket] / totals[bucket])

        self._bucket_probabilities = self._interpolate(raw)
        return self

    @staticmethod
    def _interpolate(raw: list[float | None]) -> list[float]:
        """Fill empty buckets by linear interpolation between known neighbours."""
        n = len(raw)
        known = [i for i, value in enumerate(raw) if value is not None]
        if not known:
            # No labels at all: fall back to the identity mapping
            # (probability = bucket midpoint), which keeps the pipeline usable.
            return [(i + 0.5) / n for i in range(n)]
        filled = list(raw)
        first, last = known[0], known[-1]
        for i in range(first):
            filled[i] = raw[first]
        for i in range(last + 1, n):
            filled[i] = raw[last]
        for left, right in zip(known, known[1:]):
            span = right - left
            for i in range(left + 1, right):
                weight = (i - left) / span
                filled[i] = raw[left] * (1 - weight) + raw[right] * weight
        return [float(value) for value in filled]

    def probability(self, similarity: float) -> float:
        """Calibrated match probability for a similarity score."""
        if not self._bucket_probabilities:
            raise RuntimeError("calibrator must be fit before use")
        return _clamp(self._bucket_probabilities[self._bucket_of(similarity)])

    @property
    def is_fit(self) -> bool:
        return bool(self._bucket_probabilities)


def calibrate_matches(
    candidates: Iterable[CandidateMatch],
    true_pairs: set[tuple[str, str]],
    *,
    num_buckets: int = 50,
    sample_fraction: float = 1.0,
    min_probability: float = 0.0,
) -> TupleMapping:
    """Turn scored candidates into a probabilistic :class:`TupleMapping`.

    ``true_pairs`` plays the role of the labeled sample: the calibrator learns
    bucket probabilities from (a deterministic subsample of) the candidates
    labeled against it, then assigns every candidate its bucket probability.
    Candidates whose calibrated probability is below ``min_probability`` are
    dropped from the initial mapping.
    """
    candidates = list(candidates)
    if not candidates:
        return TupleMapping()

    if not 0.0 < sample_fraction <= 1.0:
        raise ValueError("sample_fraction must be in (0, 1]")
    stride = max(int(round(1.0 / sample_fraction)), 1)
    sample = candidates[::stride] if stride > 1 else candidates

    calibrator = SimilarityCalibrator(num_buckets)
    calibrator.fit(
        [candidate.similarity for candidate in sample],
        [(candidate.left_key, candidate.right_key) in true_pairs for candidate in sample],
    )

    mapping = TupleMapping()
    for candidate in candidates:
        probability = calibrator.probability(candidate.similarity)
        if probability < min_probability:
            continue
        mapping.add(
            TupleMatch(
                candidate.left_key,
                candidate.right_key,
                probability,
                candidate.similarity,
            )
        )
    return mapping

"""Schema matching and record linkage substrate.

Explain3D takes two kinds of matching information as input (Section 2.1):

* **Attribute matches** ``M_attr = (A_i phi A_j)`` with a semantic relation
  phi in {equivalent, less-general, more-general}.  The paper treats these as
  given; :mod:`repro.matching.schema_matcher` additionally derives them
  automatically from attribute names and value overlap so the full pipeline can
  run end-to-end.
* **Initial tuple mapping** ``M_tuple = {(t_i, t_j, p), ...}`` -- probabilistic
  tuple matches produced by record-linkage style similarity scoring
  (:mod:`repro.matching.tuple_matching`) calibrated into probabilities with the
  similarity-to-probability bucketing method of Section 5.1.2
  (:mod:`repro.matching.calibration`).
"""

from repro.matching.attribute_match import (
    AttributeMatch,
    AttributeMatching,
    SemanticRelation,
)
from repro.matching.similarity import (
    combined_similarity,
    normalized_euclidean_similarity,
    token_jaccard,
    tokenize,
    value_similarity,
)
from repro.matching.blocking import TokenBlocker, all_pairs
from repro.matching.features import (
    BatchScorer,
    TupleFeatureCache,
    batch_similarity,
    pair_similarity,
)
from repro.matching.tuple_matching import (
    CandidateMatch,
    TupleMatch,
    TupleMapping,
    generate_candidates,
)
from repro.matching.calibration import SimilarityCalibrator, calibrate_matches
from repro.matching.schema_matcher import SchemaMatcher, infer_attribute_matches

__all__ = [
    "SemanticRelation",
    "AttributeMatch",
    "AttributeMatching",
    "tokenize",
    "token_jaccard",
    "normalized_euclidean_similarity",
    "value_similarity",
    "combined_similarity",
    "TokenBlocker",
    "all_pairs",
    "TupleFeatureCache",
    "BatchScorer",
    "batch_similarity",
    "pair_similarity",
    "CandidateMatch",
    "TupleMatch",
    "TupleMapping",
    "generate_candidates",
    "SimilarityCalibrator",
    "calibrate_matches",
    "SchemaMatcher",
    "infer_attribute_matches",
]

"""Attribute matches and semantic relations (Definition 2.1).

An attribute match relates a set of attributes of one query's relation to a set
of attributes of the other with a semantic relation:

* ``EQUIVALENT`` (one-to-one mapping of instantiations),
* ``LESS_GENERAL`` (many-to-one: many left values map to one right value),
* ``MORE_GENERAL`` (one-to-many: one left value maps to many right values).

Two queries are *comparable* (Definition 2.2) iff at least one attribute match
exists between them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence


class SemanticRelation(enum.Enum):
    """The semantic relation phi between two sets of attributes."""

    EQUIVALENT = "=="
    LESS_GENERAL = "<="
    MORE_GENERAL = ">="

    def flipped(self) -> "SemanticRelation":
        """The relation seen from the other side (``A <= B`` iff ``B >= A``)."""
        if self is SemanticRelation.LESS_GENERAL:
            return SemanticRelation.MORE_GENERAL
        if self is SemanticRelation.MORE_GENERAL:
            return SemanticRelation.LESS_GENERAL
        return SemanticRelation.EQUIVALENT

    @property
    def left_degree_limited(self) -> bool:
        """True when each *left* tuple may match at most one right tuple.

        ``A_i <= A_j`` (less general, many-to-one) and equivalence both limit
        the degree of left tuples to one (Definition 3.2).
        """
        return self in (SemanticRelation.LESS_GENERAL, SemanticRelation.EQUIVALENT)

    @property
    def right_degree_limited(self) -> bool:
        """True when each *right* tuple may match at most one left tuple."""
        return self in (SemanticRelation.MORE_GENERAL, SemanticRelation.EQUIVALENT)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return {"==": "=", "<=": "<=", ">=": ">="}[self.value]


@dataclass(frozen=True)
class AttributeMatch:
    """A single attribute match ``(A_i phi A_j)``.

    ``left`` and ``right`` are tuples of attribute names in the two queries'
    provenance relations.  The paper notes that matches over attribute sets can
    be separated into single-attribute matches; most of the pipeline assumes
    that normal form (see :meth:`AttributeMatching.normalized`).
    """

    left: tuple[str, ...]
    right: tuple[str, ...]
    relation: SemanticRelation = SemanticRelation.EQUIVALENT

    @classmethod
    def single(
        cls, left: str, right: str, relation: SemanticRelation = SemanticRelation.EQUIVALENT
    ) -> "AttributeMatch":
        return cls((left,), (right,), relation)

    @property
    def is_single(self) -> bool:
        return len(self.left) == 1 and len(self.right) == 1

    def flipped(self) -> "AttributeMatch":
        """The same match with sides swapped."""
        return AttributeMatch(self.right, self.left, self.relation.flipped())

    def split(self) -> list["AttributeMatch"]:
        """Separate a set-valued match into per-attribute matches.

        ``(zip, city) <= (county)`` becomes ``(zip) <= (county)`` and
        ``(city) <= (county)``, as described in Section 2.1.
        """
        if self.is_single:
            return [self]
        pieces = []
        for left_attr in self.left:
            for right_attr in self.right:
                pieces.append(AttributeMatch((left_attr,), (right_attr,), self.relation))
        return pieces

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({', '.join(self.left)}) {self.relation} ({', '.join(self.right)})"


class AttributeMatching:
    """The full set of attribute matches ``M_attr(Q1, Q2)`` between two queries."""

    def __init__(self, matches: Iterable[AttributeMatch] = ()):
        self.matches = list(matches)

    def __len__(self) -> int:
        return len(self.matches)

    def __iter__(self) -> Iterator[AttributeMatch]:
        return iter(self.matches)

    def __bool__(self) -> bool:
        return bool(self.matches)

    def add(self, match: AttributeMatch) -> None:
        self.matches.append(match)

    @property
    def comparable(self) -> bool:
        """Definition 2.2: queries are comparable iff M_attr is non-empty."""
        return bool(self.matches)

    def normalized(self) -> "AttributeMatching":
        """All matches split into single-attribute matches."""
        pieces: list[AttributeMatch] = []
        for match in self.matches:
            pieces.extend(match.split())
        return AttributeMatching(pieces)

    def left_attributes(self) -> tuple[str, ...]:
        """Matching attributes on the left side, in first-seen order."""
        seen: list[str] = []
        for match in self.matches:
            for name in match.left:
                if name not in seen:
                    seen.append(name)
        return tuple(seen)

    def right_attributes(self) -> tuple[str, ...]:
        seen: list[str] = []
        for match in self.matches:
            for name in match.right:
                if name not in seen:
                    seen.append(name)
        return tuple(seen)

    def attribute_pairs(self) -> list[tuple[str, str]]:
        """Pairs ``(left_attr, right_attr)`` over the normalized matches."""
        return [
            (match.left[0], match.right[0]) for match in self.normalized()
        ]

    def dominant_relation(self) -> SemanticRelation:
        """The semantic relation governing tuple-mapping cardinality.

        When several matches are declared, equivalence is only claimed if all
        of them are equivalences; otherwise the first directional relation
        wins.  In practice the paper's datasets declare a single relation.
        """
        if not self.matches:
            return SemanticRelation.EQUIVALENT
        relations = {match.relation for match in self.matches}
        if relations == {SemanticRelation.EQUIVALENT}:
            return SemanticRelation.EQUIVALENT
        for match in self.matches:
            if match.relation is not SemanticRelation.EQUIVALENT:
                return match.relation
        return SemanticRelation.EQUIVALENT

    def flipped(self) -> "AttributeMatching":
        return AttributeMatching([match.flipped() for match in self.matches])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "AttributeMatching(" + "; ".join(str(m) for m in self.matches) + ")"


def matching(*pairs: Sequence) -> AttributeMatching:
    """Convenience constructor: ``matching(("program", "college", "<="))``.

    Each argument is ``(left, right)`` (equivalence) or ``(left, right, rel)``
    where ``rel`` is a :class:`SemanticRelation` or one of ``"=", "<=", ">="``.
    """
    result = AttributeMatching()
    lookup = {
        "=": SemanticRelation.EQUIVALENT,
        "==": SemanticRelation.EQUIVALENT,
        "<=": SemanticRelation.LESS_GENERAL,
        ">=": SemanticRelation.MORE_GENERAL,
    }
    for pair in pairs:
        if len(pair) == 2:
            left, right = pair
            relation = SemanticRelation.EQUIVALENT
        else:
            left, right, raw = pair
            relation = raw if isinstance(raw, SemanticRelation) else lookup[raw]
        result.add(AttributeMatch.single(left, right, relation))
    return result

"""Blocking strategies for candidate tuple-match generation.

Comparing all pairs of provenance tuples is quadratic; the IMDb workloads in
the paper have millions of candidate matches.  The :class:`TokenBlocker` is
*exact* with respect to the combined similarity of Section 5.1.2: a pair can
only score above zero if, on at least one matched attribute,

* the two values' token sets intersect (token Jaccard > 0),
* both values are numeric (normalized Euclidean similarity is never zero), or
* both token sets are empty and neither value is numeric (token Jaccard
  defines the both-empty case as 1.0 -- e.g. two NULLs).

The blocker emits exactly the union of those three pair sets, so no candidate
the combined similarity could score above zero is ever lost -- including
through numeric and NULL attributes, which the mean over matched attributes
can push above zero on their own.  Pairs are emitted in row-major ``(i, j)``
order, the same order :func:`all_pairs` produces, so downstream candidate
lists are identical to the unblocked path.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import chain
from typing import Iterator, Sequence

import numpy as np

from repro.matching.features import TupleFeatureCache


def all_pairs(left: Sequence, right: Sequence) -> Iterator[tuple[int, int]]:
    """Every (left index, right index) pair — exact but quadratic."""
    for i in range(len(left)):
        for j in range(len(right)):
            yield i, j


class TokenBlocker:
    """Exact blocking over the matched attributes.

    Feature caches may be supplied to avoid re-tokenizing values the caller
    has already cached (the tokenizer is invoked O(tuples), never O(pairs)).
    """

    def __init__(self, attribute_pairs: Sequence[tuple[str, str]]):
        self.attribute_pairs = list(attribute_pairs)

    def candidate_pairs(
        self,
        left_values: Sequence[dict],
        right_values: Sequence[dict],
        *,
        left_features: TupleFeatureCache | None = None,
        right_features: TupleFeatureCache | None = None,
    ) -> Iterator[tuple[int, int]]:
        """Yield candidate (left index, right index) pairs in row-major order."""
        matched = self._matched_sets(
            left_values, right_values, left_features=left_features, right_features=right_features
        )
        for i, bucket in enumerate(matched):
            for j in sorted(bucket):
                yield i, j

    def candidate_pair_arrays(
        self,
        left_values: Sequence[dict],
        right_values: Sequence[dict],
        *,
        left_features: TupleFeatureCache | None = None,
        right_features: TupleFeatureCache | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The candidate pairs as index arrays (row-major), skipping per-pair tuples."""
        matched = self._matched_sets(
            left_values, right_values, left_features=left_features, right_features=right_features
        )
        counts = np.fromiter((len(bucket) for bucket in matched), dtype=np.intp, count=len(matched))
        total = int(counts.sum())
        ii = np.repeat(np.arange(len(matched), dtype=np.intp), counts)
        jj = np.fromiter(
            chain.from_iterable(sorted(bucket) for bucket in matched), dtype=np.intp, count=total
        )
        return ii, jj

    def _matched_sets(
        self,
        left_values: Sequence[dict],
        right_values: Sequence[dict],
        *,
        left_features: TupleFeatureCache | None = None,
        right_features: TupleFeatureCache | None = None,
    ) -> list[set[int]]:
        """Per-left-tuple sets of candidate right indices."""
        left_attrs = [pair[0] for pair in self.attribute_pairs]
        right_attrs = [pair[1] for pair in self.attribute_pairs]
        if left_features is None:
            left_features = TupleFeatureCache(left_values, left_attrs)
        if right_features is None:
            right_features = TupleFeatureCache(right_values, right_attrs)

        matched: list[set[int]] = [set() for _ in range(left_features.num_tuples)]
        for left_attr, right_attr in self.attribute_pairs:
            a = left_features.attribute_position(left_attr)
            b = right_features.attribute_position(right_attr)

            # Index the right column: token -> rows, plus the numeric and the
            # empty (no tokens, not numeric) rows.  Numeric values keep their
            # digit tokens in the index -- they can intersect string tokens.
            token_index: dict[str, list[int]] = defaultdict(list)
            numeric_right: list[int] = []
            empty_right: list[int] = []
            for j in range(right_features.num_tuples):
                tokens = right_features.tokens[b][j]
                for token in tokens:
                    token_index[token].append(j)
                if right_features.is_numeric[b, j]:
                    numeric_right.append(j)
                elif not tokens:
                    empty_right.append(j)

            for i in range(left_features.num_tuples):
                bucket = matched[i]
                tokens = left_features.tokens[a][i]
                for token in tokens:
                    bucket.update(token_index.get(token, ()))
                if left_features.is_numeric[a, i]:
                    bucket.update(numeric_right)
                elif not tokens:
                    bucket.update(empty_right)

        return matched

"""Blocking strategies for candidate tuple-match generation.

Comparing all pairs of provenance tuples is quadratic; the IMDb workloads in
the paper have millions of candidate matches.  Token blocking only compares
tuples that share at least one token on a matched attribute, which preserves
every candidate the Jaccard similarity could score above zero.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Sequence

from repro.matching.similarity import tokenize


def all_pairs(left: Sequence, right: Sequence) -> Iterator[tuple[int, int]]:
    """Every (left index, right index) pair — exact but quadratic."""
    for i in range(len(left)):
        for j in range(len(right)):
            yield i, j


class TokenBlocker:
    """Token blocking over the matched attributes.

    Numeric attribute values are ignored for blocking (they rarely share
    tokens); if *no* string attribute is matched, the blocker degrades to the
    full cross product so that no candidate is lost.
    """

    def __init__(self, attribute_pairs: Sequence[tuple[str, str]]):
        self.attribute_pairs = list(attribute_pairs)

    def _tokens(self, values: dict, attributes: Iterable[str]) -> frozenset[str]:
        tokens: set[str] = set()
        for attribute in attributes:
            value = values.get(attribute)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                continue
            tokens |= tokenize(value)
        return frozenset(tokens)

    def candidate_pairs(
        self, left_values: Sequence[dict], right_values: Sequence[dict]
    ) -> Iterator[tuple[int, int]]:
        """Yield candidate (left index, right index) pairs sharing a token."""
        left_attrs = [pair[0] for pair in self.attribute_pairs]
        right_attrs = [pair[1] for pair in self.attribute_pairs]

        index: dict[str, list[int]] = defaultdict(list)
        any_tokens = False
        for j, values in enumerate(right_values):
            for token in self._tokens(values, right_attrs):
                index[token].append(j)
                any_tokens = True

        if not any_tokens:
            yield from all_pairs(left_values, right_values)
            return

        for i, values in enumerate(left_values):
            tokens = self._tokens(values, left_attrs)
            if not tokens:
                # Tuples without string tokens still need candidates; fall back
                # to comparing against everything on the right.
                for j in range(len(right_values)):
                    yield i, j
                continue
            seen: set[int] = set()
            for token in tokens:
                for j in index.get(token, ()):
                    if j not in seen:
                        seen.add(j)
                        yield i, j

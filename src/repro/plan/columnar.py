"""Columnar batches and vectorized predicate evaluation for the executor.

A :class:`ColumnBatch` is the unit of data flow between physical operators:
one plain Python list per attribute plus a parallel per-row lineage list.
Values stay ordinary Python objects end to end -- ``Row`` tuples (and hence
relation fingerprints, which hash ``repr`` of the values) are materialized
only at plan boundaries, and NumPy enters purely as a *mask* substrate:
predicate evaluation lowers to int64/float64 comparisons where the column's
declared type and contents make that exact, and falls back to the scalar
semantics of :func:`repro.relational.expressions._compare` everywhere else.

Exactness rules the fast paths obey:

* NULL is tracked in a separate boolean mask, so a FLOAT column holding a
  *data* NaN is distinguishable from NULL, and every comparison involving
  NULL is false -- exactly the interpreter's three-valued collapse.
* int64 columns compare against float constants only when every value is
  within 2**53 (exact in float64); huge integers take the scalar path, which
  uses Python's exact mixed-type comparison.
* ``And``/``Or`` evaluate children only over still-undecided rows, so a
  type-mismatched conjunct that the row-at-a-time path would have
  short-circuited past can never raise here either.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.relational.errors import ExecutionError
from repro.relational.expressions import (
    And,
    AttributeComparison,
    Comparison,
    Contains,
    IsNull,
    Membership,
    Not,
    Or,
    TruePredicate,
    _OPERATORS,
)
from repro.relational.relation import Row
from repro.relational.schema import DataType, Schema

# Largest magnitude exactly representable in float64: int values beyond this
# must not be silently cast for a comparison against a float constant.
_F64_EXACT_INT = 2 ** 53

_UNSET = object()


class ColumnBatch:
    """A batch of rows stored column-wise, with per-row lineage.

    ``columns`` holds one Python list per attribute (all the same length);
    ``lineage`` holds one frozenset per row.  Batches are immutable by
    convention -- operators build new column lists instead of mutating, which
    lets scans hand out zero-copy views of a relation's cached columns.
    """

    __slots__ = ("columns", "lineage", "_numeric")

    def __init__(self, columns: list[list], lineage: list):
        self.columns = columns
        self.lineage = lineage
        self._numeric: dict[int, object] = {}

    def __len__(self) -> int:
        return len(self.lineage)

    @property
    def width(self) -> int:
        return len(self.columns)

    # -- construction / materialization -------------------------------------------
    @classmethod
    def from_rows(cls, rows: Sequence[Row], width: int) -> "ColumnBatch":
        if rows:
            columns = [list(column) for column in zip(*(row.values for row in rows))]
        else:
            columns = [[] for _ in range(width)]
        return cls(columns, [row.lineage for row in rows])

    @classmethod
    def empty(cls, width: int) -> "ColumnBatch":
        return cls([[] for _ in range(width)], [])

    @classmethod
    def concat(cls, batches: Sequence["ColumnBatch"], width: int) -> "ColumnBatch":
        batches = [batch for batch in batches if len(batch)]
        if not batches:
            return cls.empty(width)
        if len(batches) == 1:
            return batches[0]
        columns: list[list] = [[] for _ in range(width)]
        lineage: list = []
        for batch in batches:
            for column, part in zip(columns, batch.columns):
                column.extend(part)
            lineage.extend(batch.lineage)
        return cls(columns, lineage)

    def to_rows(self) -> list[Row]:
        """Late materialization: the fingerprint-boundary handoff."""
        if not self.columns:
            return [Row((), lineage) for lineage in self.lineage]
        return [
            Row(values, lineage)
            for values, lineage in zip(zip(*self.columns), self.lineage)
        ]

    def value_tuples(self) -> list[tuple]:
        """The row value tuples (no Row allocation; lineage left aside)."""
        if not self.columns:
            return [()] * len(self)
        return list(zip(*self.columns))

    # -- row-set surgery -----------------------------------------------------------
    def take(self, indices: Sequence[int]) -> "ColumnBatch":
        lineage = self.lineage
        return ColumnBatch(
            [[column[i] for i in indices] for column in self.columns],
            [lineage[i] for i in indices],
        )

    def compress(self, mask) -> "ColumnBatch":
        """Rows where ``mask`` is true (a NumPy bool array of batch length)."""
        indices = np.flatnonzero(mask)
        if len(indices) == len(self.lineage):
            return self
        return self.take(indices.tolist())

    def select(self, indices: Sequence[int]) -> "ColumnBatch":
        """Column projection: O(width) list-reference shuffle, zero copy."""
        return ColumnBatch([self.columns[i] for i in indices], self.lineage)

    def slice(self, start: int, stop: int) -> "ColumnBatch":
        return ColumnBatch(
            [column[start:stop] for column in self.columns],
            self.lineage[start:stop],
        )

    # -- numeric views -------------------------------------------------------------
    def numeric(self, index: int, dtype: DataType):
        """``(values, notnull, float_safe)`` NumPy view of a column, or ``None``.

        The view is exact by construction: it is only produced when every
        non-NULL value is a genuine int (INTEGER) or float (FLOAT), so no
        silent truncation can change a comparison's outcome.  Cached per
        batch -- several predicates over one column build the arrays once.
        """
        cached = self._numeric.get(index, _UNSET)
        if cached is not _UNSET:
            return cached
        view = _numeric_view(self.columns[index], dtype)
        self._numeric[index] = view
        return view


def _numeric_view(column: list, dtype: DataType):
    count = len(column)
    if dtype is DataType.INTEGER:
        if not all(value is None or type(value) is int for value in column):
            return None
        try:
            values = np.fromiter(
                (0 if value is None else value for value in column),
                dtype=np.int64,
                count=count,
            )
        except (TypeError, ValueError, OverflowError):
            return None
        float_safe = bool(np.all(np.abs(values) <= _F64_EXACT_INT)) if count else True
    elif dtype is DataType.FLOAT:
        if not all(value is None or type(value) is float for value in column):
            return None
        values = np.fromiter(
            (np.nan if value is None else value for value in column),
            dtype=np.float64,
            count=count,
        )
        float_safe = True
    else:
        return None
    notnull = np.fromiter(
        (value is not None for value in column), dtype=bool, count=count
    )
    return values, notnull, float_safe


def chunk_batches(batch: ColumnBatch, size: int) -> Iterator[ColumnBatch]:
    """Split a batch into chunks of at most ``size`` rows (empty -> nothing)."""
    count = len(batch)
    if count == 0:
        return
    if count <= size:
        yield batch
        return
    for start in range(0, count, size):
        yield batch.slice(start, start + size)


# ---------------------------------------------------------------------------
# Vectorized predicate evaluation
# ---------------------------------------------------------------------------

def predicate_mask(predicate, batch: ColumnBatch, schema: Schema, active=None):
    """Boolean row mask of ``predicate`` over ``batch``.

    Mirrors :meth:`Predicate.__call__` over a row dict bit for bit, including
    NULL handling, ``And``/``Or`` short-circuiting (children are evaluated
    only over rows the previous children left undecided, so they can never
    raise where the row-at-a-time path would not), and :class:`ExecutionError`
    on type-mismatched comparisons.  Unknown predicate types fall back to the
    per-row dict evaluation, restricted to the active rows.
    """
    if active is None:
        active = np.ones(len(batch), dtype=bool)
    return _mask(predicate, batch, schema, active)


def _mask(predicate, batch: ColumnBatch, schema: Schema, active):
    if isinstance(predicate, TruePredicate):
        return active.copy()
    if isinstance(predicate, And):
        current = active
        for child in predicate.children:
            if not current.any():
                break
            current = _mask(child, batch, schema, current)
        return current
    if isinstance(predicate, Or):
        accepted = np.zeros(len(batch), dtype=bool)
        remaining = active.copy()
        for child in predicate.children:
            if not remaining.any():
                break
            child_mask = _mask(child, batch, schema, remaining)
            accepted |= child_mask
            remaining &= ~child_mask
        return accepted
    if isinstance(predicate, Not):
        return active & ~_mask(predicate.child, batch, schema, active)
    if isinstance(predicate, Comparison):
        return _compare_const(
            batch, schema, predicate.attribute, predicate.op, predicate.value, active
        )
    if isinstance(predicate, AttributeComparison):
        return _compare_columns(
            batch, schema, predicate.left, predicate.op, predicate.right, active
        )
    if isinstance(predicate, Membership):
        return _membership(batch, schema, predicate, active)
    if isinstance(predicate, Contains):
        return _contains(batch, schema, predicate, active)
    if isinstance(predicate, IsNull):
        return _is_null(batch, schema, predicate, active)
    return _fallback(batch, schema, predicate, active)


def _column_index(schema: Schema, name: str) -> int | None:
    """Attribute position, or None -- a missing name reads as NULL, exactly
    like ``record.get`` does on the row-at-a-time path."""
    return schema.index(name) if name in schema else None


def _operator(op: str):
    func = _OPERATORS.get(op)
    if func is None:
        raise ExecutionError(f"unsupported comparison operator {op!r}")
    return func


def _compare_const(batch, schema, name, op, value, active):
    func = _operator(op)
    count = len(batch)
    index = _column_index(schema, name)
    if index is None or value is None:
        return np.zeros(count, dtype=bool)
    vectors = (
        batch.numeric(index, schema.attributes[index].dtype)
        if not isinstance(value, bool) and isinstance(value, (int, float))
        else None
    )
    if vectors is not None:
        values, notnull, float_safe = vectors
        operand = None
        if values.dtype == np.int64:
            if type(value) is int and -(2 ** 63) <= value < 2 ** 63:
                operand = (values, np.int64(value))
            elif type(value) is float and float_safe:
                operand = (values.astype(np.float64), np.float64(value))
        else:  # float64
            if type(value) is float or abs(value) <= _F64_EXACT_INT:
                operand = (values, np.float64(value))
        if operand is not None:
            left, right = operand
            with np.errstate(invalid="ignore"):
                result = func(left, right)
            return active & notnull & result
    column = batch.columns[index]
    out = np.zeros(count, dtype=bool)
    for i in np.flatnonzero(active):
        left = column[i]
        if left is None:
            continue
        try:
            out[i] = bool(func(left, value))
        except TypeError as exc:
            raise ExecutionError(f"cannot compare {left!r} {op} {value!r}") from exc
    return out


def _compare_columns(batch, schema, left_name, op, right_name, active):
    func = _operator(op)
    count = len(batch)
    left_index = _column_index(schema, left_name)
    right_index = _column_index(schema, right_name)
    if left_index is None or right_index is None:
        return np.zeros(count, dtype=bool)
    left_vec = batch.numeric(left_index, schema.attributes[left_index].dtype)
    right_vec = batch.numeric(right_index, schema.attributes[right_index].dtype)
    if left_vec is not None and right_vec is not None:
        left_values, left_notnull, left_safe = left_vec
        right_values, right_notnull, right_safe = right_vec
        operands = None
        if left_values.dtype == right_values.dtype:
            operands = (left_values, right_values)
        elif left_values.dtype == np.int64 and left_safe:
            operands = (left_values.astype(np.float64), right_values)
        elif right_values.dtype == np.int64 and right_safe:
            operands = (left_values, right_values.astype(np.float64))
        if operands is not None:
            with np.errstate(invalid="ignore"):
                result = func(operands[0], operands[1])
            return active & left_notnull & right_notnull & result
    left_column = batch.columns[left_index]
    right_column = batch.columns[right_index]
    out = np.zeros(count, dtype=bool)
    for i in np.flatnonzero(active):
        left, right = left_column[i], right_column[i]
        if left is None or right is None:
            continue
        try:
            out[i] = bool(func(left, right))
        except TypeError as exc:
            raise ExecutionError(f"cannot compare {left!r} {op} {right!r}") from exc
    return out


def _membership(batch, schema, predicate: Membership, active):
    count = len(batch)
    index = _column_index(schema, predicate.attribute)
    if index is None:
        return np.zeros(count, dtype=bool)
    column = batch.columns[index]
    values = predicate.values
    out = np.zeros(count, dtype=bool)
    for i in np.flatnonzero(active):
        value = column[i]
        out[i] = value is not None and value in values
    return out


def _contains(batch, schema, predicate: Contains, active):
    count = len(batch)
    index = _column_index(schema, predicate.attribute)
    if index is None:
        return np.zeros(count, dtype=bool)
    column = batch.columns[index]
    needle = predicate.needle
    if not predicate.case_sensitive:
        needle = needle.lower()
    out = np.zeros(count, dtype=bool)
    for i in np.flatnonzero(active):
        value = column[i]
        if value is None:
            continue
        haystack = str(value)
        if not predicate.case_sensitive:
            haystack = haystack.lower()
        out[i] = needle in haystack
    return out


def _is_null(batch, schema, predicate: IsNull, active):
    count = len(batch)
    index = _column_index(schema, predicate.attribute)
    if index is None:
        # record.get(missing) is None: IS NULL holds everywhere.
        return np.zeros(count, dtype=bool) if predicate.negate else active.copy()
    column = batch.columns[index]
    null_mask = np.fromiter(
        (value is None for value in column), dtype=bool, count=count
    )
    return active & (~null_mask if predicate.negate else null_mask)


def _fallback(batch, schema, predicate, active):
    """Row-at-a-time evaluation of an unknown predicate type (active rows only)."""
    names = schema.names
    columns = batch.columns
    out = np.zeros(len(batch), dtype=bool)
    for i in np.flatnonzero(active):
        record = {name: columns[j][i] for j, name in enumerate(names)}
        out[i] = bool(predicate(record))
    return out

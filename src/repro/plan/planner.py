"""Lowering logical trees into physical plans, with EXPLAIN support.

:func:`plan_query` / :func:`plan_node` run the rule-based optimizer of
:mod:`repro.plan.optimizer` and lower the result into the batch operators of
:mod:`repro.plan.physical`:

* ``Join`` nodes with equality keys become :class:`HashJoinExec` (composite
  key over every pair, build side picked by estimated cardinality); key-less
  joins fall back to :class:`NestedLoopJoinExec`;
* common subplans -- logically identical subtrees, keyed by their content
  fingerprint -- are lowered to one shared operator that executes once per
  plan run;
* every operator carries an estimated row count (from base-relation
  cardinalities and simple selectivity heuristics) which, together with the
  per-operator actual row counts and timings collected at run time, feeds the
  printable/JSON EXPLAIN tree.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional

from repro.relational.errors import ExecutionError
from repro.relational.query import (
    Aggregate,
    Difference,
    Join,
    Project,
    Query,
    QueryNode,
    Scan,
    Select,
    Union,
    _canonical_description,
)
from repro.relational.relation import Relation
from repro.plan.optimizer import RewriteLog, infer_schema, optimize
from repro.plan.physical import (
    AggregateExec,
    AntiJoinExec,
    DistinctExec,
    ExecutionContext,
    FilterExec,
    HashJoinExec,
    NestedLoopJoinExec,
    PhysicalOperator,
    ProjectExec,
    ScanExec,
    UnionExec,
)


def logical_fingerprint(node: QueryNode) -> str:
    """A stable content hash of a logical subtree (name-independent).

    Two structurally identical subtrees share a fingerprint, which is what
    keys common-subplan deduplication and the service's plan cache.
    """
    digest = hashlib.sha256()
    digest.update(repr(_canonical_description(node)).encode())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Cardinality estimation
# ---------------------------------------------------------------------------

_SELECT_SELECTIVITY = 0.33
_DEFAULT_BASE_ROWS = 1000


def estimate_rows(node: QueryNode, db, _memo: dict | None = None) -> int:
    """A coarse row-count estimate used to order join inputs (build side).

    ``_memo`` (an ``id(node) -> estimate`` dict scoped to one lowering pass)
    keeps repeated estimation over the same tree linear instead of quadratic;
    the nodes must stay alive for the memo's lifetime, which the lowering
    pass guarantees by holding the optimized tree.
    """
    if _memo is not None:
        cached = _memo.get(id(node))
        if cached is not None:
            return cached
    value = _estimate_rows(node, db, _memo)
    if _memo is not None:
        _memo[id(node)] = value
    return value


def _estimate_rows(node: QueryNode, db, memo: dict | None) -> int:
    if isinstance(node, Scan):
        try:
            return len(db.relation(node.relation))
        except Exception:
            return _DEFAULT_BASE_ROWS
    if isinstance(node, Select):
        return max(1, int(estimate_rows(node.child, db, memo) * _SELECT_SELECTIVITY))
    if isinstance(node, Project):
        child = estimate_rows(node.child, db, memo)
        return max(1, child // 2) if node.distinct else child
    if isinstance(node, Join):
        left = estimate_rows(node.left, db, memo)
        right = estimate_rows(node.right, db, memo)
        if node.on:
            return max(left, right)
        if node.condition is not None:
            return max(1, int(left * right * _SELECT_SELECTIVITY))
        return left * right
    if isinstance(node, Union):
        return sum(estimate_rows(member, db, memo) for member in node.inputs)
    if isinstance(node, Difference):
        return estimate_rows(node.left, db, memo)
    if isinstance(node, Aggregate):
        if node.group_by:
            return max(1, estimate_rows(node.child, db, memo) // 3)
        return 1
    return _DEFAULT_BASE_ROWS


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------

class _Lowering:
    """One lowering pass: logical fingerprints -> shared physical operators."""

    def __init__(self, db):
        self.db = db
        self.operators: list[PhysicalOperator] = []
        self.by_fingerprint: dict[str, PhysicalOperator] = {}
        self.shared_subplans = 0
        self._estimates: dict[int, int] = {}  # id(node) memo for this pass

    def lower(self, node: QueryNode) -> PhysicalOperator:
        fingerprint = logical_fingerprint(node)
        existing = self.by_fingerprint.get(fingerprint)
        if existing is not None:
            existing.shared = True
            self.shared_subplans += 1
            return existing
        op = self._build(node)
        if op.op_id < 0:  # helper operators register themselves in _build
            self._register(op, node)
        self.by_fingerprint[fingerprint] = op
        return op

    def _register(self, op: PhysicalOperator, node: QueryNode) -> PhysicalOperator:
        """Assign the operator its id, row estimate and stats slot."""
        op.op_id = len(self.operators)
        op.estimated_rows = estimate_rows(node, self.db, self._estimates)
        self.operators.append(op)
        return op

    def _build(self, node: QueryNode) -> PhysicalOperator:
        if isinstance(node, Scan):
            return ScanExec(node.relation, self.db, infer_schema(node, self.db))
        if isinstance(node, Select):
            return FilterExec(self.lower(node.child), node.predicate)
        if isinstance(node, Project):
            projected = ProjectExec(self.lower(node.child), node.attributes)
            if not node.distinct:
                return projected
            # The inner projection is an operator of its own: register it so
            # it gets a distinct op_id (stats slot) and a row estimate (equal
            # to its child's -- a bag projection passes every row through).
            self._register(projected, node.child)
            return DistinctExec(projected)
        if isinstance(node, Join):
            return self._build_join(node)
        if isinstance(node, Union):
            if not node.inputs:
                raise ExecutionError("union requires at least one input")
            return UnionExec([self.lower(member) for member in node.inputs])
        if isinstance(node, Difference):
            return AntiJoinExec(self.lower(node.left), self.lower(node.right), node.on)
        if isinstance(node, Aggregate):
            child = self.lower(node.child)
            return AggregateExec(child, node, infer_schema(node, self.db))
        raise ExecutionError(f"no physical operator for node type {type(node).__name__}")

    def _build_join(self, node: Join) -> PhysicalOperator:
        left = self.lower(node.left)
        right = self.lower(node.right)
        if not node.on:
            return NestedLoopJoinExec(left, right, node.condition)
        # The interpreter's first on-pair matches via dict equality (NULL =
        # NULL holds); every further pair is null-rejecting.  The composite
        # hash key reproduces exactly that split.
        plain_pairs = node.on[:1]
        strict_pairs = node.on[1:]
        build_left = estimate_rows(node.left, self.db, self._estimates) < estimate_rows(
            node.right, self.db, self._estimates
        )
        return HashJoinExec(
            left,
            right,
            plain_pairs,
            strict_pairs,
            node.condition,
            build_left=build_left,
        )


# ---------------------------------------------------------------------------
# The plan object
# ---------------------------------------------------------------------------

@dataclass
class PlanRunStats:
    """Aggregate counters of one plan execution."""

    rows_out: int = 0
    seconds: float = 0.0
    operators: dict[int, dict] = field(default_factory=dict)


class PhysicalPlan:
    """An executable physical plan for one logical tree over one database.

    Plans are immutable once built and hold no per-run state, so one plan can
    be cached and executed concurrently from many service threads.  Each
    :meth:`execute` returns a fresh :class:`~repro.relational.relation.Relation`
    that is fingerprint-identical (rows, order, lineage) to evaluating the
    original logical tree with the naive interpreter.
    """

    def __init__(
        self,
        node: QueryNode,
        optimized: QueryNode,
        root: PhysicalOperator,
        db,
        *,
        rewrites: RewriteLog,
        operators: list[PhysicalOperator],
        shared_subplans: int = 0,
        query: Optional[Query] = None,
    ):
        self.node = node
        self.optimized = optimized
        self.root = root
        self.db = db
        self.rewrites = rewrites
        self.operators = operators
        self.shared_subplans = shared_subplans
        self.query = query
        self.fingerprint = logical_fingerprint(node)

    # -- execution ----------------------------------------------------------------
    def execute(self) -> Relation:
        relation, _ = self.execute_with_stats()
        return relation

    def execute_with_stats(self) -> tuple[Relation, "PlanRunStats"]:
        import time

        ctx = ExecutionContext()
        started = time.perf_counter()
        rows = self.root.rows(ctx)
        elapsed = time.perf_counter() - started
        stats = PlanRunStats(
            rows_out=len(rows),
            seconds=elapsed,
            operators={
                op_id: op_stats.as_dict() for op_id, op_stats in ctx.stats.items()
            },
        )
        return Relation(self.root.schema, rows), stats

    # -- EXPLAIN ------------------------------------------------------------------
    def explain(self, *, run: bool = False) -> "PlanExplanation":
        """The plan tree, optionally annotated with actual rows and timings."""
        stats = None
        if run:
            _, stats = self.execute_with_stats()
        return PlanExplanation(self, stats)

    def describe(self, *, run: bool = False) -> str:
        return self.explain(run=run).describe()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PhysicalPlan({self.root!r}, {len(self.operators)} operators)"


class PlanExplanation:
    """Printable / JSON-serializable EXPLAIN output of a physical plan."""

    def __init__(self, plan: PhysicalPlan, run_stats: PlanRunStats | None = None):
        self.plan = plan
        self.run_stats = run_stats

    def _node_dict(self, op: PhysicalOperator) -> dict:
        payload: dict = {
            "operator": op.name,
            "detail": op.detail(),
            "estimated_rows": op.estimated_rows,
        }
        if op.shared:
            payload["shared"] = True
        if self.run_stats is not None:
            payload.update(self.run_stats.operators.get(op.op_id, {}))
        children = [self._node_dict(child) for child in op.children]
        if children:
            payload["children"] = children
        return payload

    def to_dict(self) -> dict:
        payload: dict = {
            "planner": "optimized",
            "fingerprint": self.plan.fingerprint,
            "rewrites": list(self.plan.rewrites.applied),
            "shared_subplans": self.plan.shared_subplans,
            "plan": self._node_dict(self.plan.root),
        }
        if self.plan.query is not None:
            payload["query"] = self.plan.query.name
        if self.run_stats is not None:
            payload["rows_out"] = self.run_stats.rows_out
            payload["seconds"] = round(self.run_stats.seconds, 6)
        return payload

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    def describe(self) -> str:
        """A pg-style indented plan tree with per-operator annotations."""
        lines: list[str] = []
        if self.plan.query is not None:
            lines.append(f"Plan for {self.plan.query.name}")
        if self.plan.rewrites.applied:
            lines.append(f"rewrites: {', '.join(self.plan.rewrites.applied)}")

        def walk(op: PhysicalOperator, prefix: str, is_last: bool, is_root: bool):
            parts = [op.name]
            detail = op.detail()
            if detail:
                parts.append(f"[{detail}]")
            parts.append(f"est={op.estimated_rows}")
            if op.shared:
                parts.append("shared")
            if self.run_stats is not None:
                op_stats = self.run_stats.operators.get(op.op_id)
                if op_stats:
                    parts.append(f"rows={op_stats['rows']}")
                    parts.append(f"time={op_stats['seconds'] * 1000:.2f}ms")
            connector = "" if is_root else ("└─ " if is_last else "├─ ")
            lines.append(prefix + connector + " ".join(parts))
            child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
            for index, child in enumerate(op.children):
                walk(child, child_prefix, index == len(op.children) - 1, False)

        walk(self.plan.root, "", True, True)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------

def plan_node(node: QueryNode, db, *, optimize_tree: bool = True) -> PhysicalPlan:
    """Plan a logical tree: optimize (unless disabled) and lower to operators."""
    if optimize_tree:
        optimized, log = optimize(node, db)
    else:
        optimized, log = node, RewriteLog()
    lowering = _Lowering(db)
    root = lowering.lower(optimized)
    return PhysicalPlan(
        node,
        optimized,
        root,
        db,
        rewrites=log,
        operators=lowering.operators,
        shared_subplans=lowering.shared_subplans,
    )


def plan_query(query: Query, db, *, optimize_tree: bool = True) -> PhysicalPlan:
    """Plan a named query's full tree (projection/aggregate root included)."""
    plan = plan_node(query.root, db, optimize_tree=optimize_tree)
    plan.query = query
    return plan

"""Lowering logical trees into physical plans, with EXPLAIN support.

:func:`plan_query` / :func:`plan_node` run the rule-based optimizer of
:mod:`repro.plan.optimizer` and lower the result into the batch operators of
:mod:`repro.plan.physical`:

* ``Join`` nodes with equality keys become :class:`HashJoinExec` (composite
  key over every pair, build side picked by estimated cardinality); key-less
  joins fall back to :class:`NestedLoopJoinExec`;
* common subplans -- logically identical subtrees, keyed by their content
  fingerprint -- are lowered to one shared operator that executes once per
  plan run;
* every operator carries an estimated row count (from base-relation
  cardinalities and simple selectivity heuristics) which, together with the
  per-operator actual row counts and timings collected at run time, feeds the
  printable/JSON EXPLAIN tree.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional

from repro.relational.errors import ExecutionError
from repro.relational.query import (
    Aggregate,
    Difference,
    Join,
    Project,
    Query,
    QueryNode,
    Scan,
    Select,
    Union,
    _canonical_description,
)
from repro.relational.relation import Relation
from repro.plan.optimizer import RewriteLog, infer_schema, optimize
from repro.reliability.faults import FAULTS
from repro.plan.physical import (
    AggregateExec,
    AntiJoinExec,
    DistinctExec,
    ExecutionContext,
    FilterExec,
    HashJoinExec,
    MultiJoinExec,
    NestedLoopJoinExec,
    PhysicalOperator,
    ProjectExec,
    ScanExec,
    UnionExec,
)
from repro.stats.cost import CostModel, JoinInput, JoinKeyConstraint, choose_join_order


def logical_fingerprint(node: QueryNode) -> str:
    """A stable content hash of a logical subtree (name-independent).

    Two structurally identical subtrees share a fingerprint, which is what
    keys common-subplan deduplication and the service's plan cache.
    """
    digest = hashlib.sha256()
    digest.update(repr(_canonical_description(node)).encode())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Cardinality estimation
# ---------------------------------------------------------------------------

# Hash-table setup cost (in row units) of the nested-loop-vs-hash decision:
# a keyed join whose estimated nested-loop work is below build + probe + this
# constant lowers to a nested loop instead of a hash join.
_HASH_SETUP_COST = 16


def estimate_rows(node: QueryNode, db, _memo: dict | None = None) -> int:
    """Estimated output row count of a logical node over ``db``.

    Uses ANALYZE statistics when the database has been analyzed
    (``db.analyze()``) and the original coarse heuristics otherwise; the
    heavy lifting lives in :class:`repro.stats.cost.CostModel`.  ``_memo`` is
    accepted for backward compatibility but unused -- the cost model
    memoizes internally.
    """
    del _memo
    return CostModel(db).estimated_rows(node)


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------

class _Lowering:
    """One lowering pass: logical fingerprints -> shared physical operators."""

    def __init__(self, db):
        self.db = db
        self.cost = CostModel(db)  # statistics-aware when db.analyze() ran
        self.operators: list[PhysicalOperator] = []
        self.by_fingerprint: dict[str, PhysicalOperator] = {}
        self.shared_subplans = 0

    def lower(self, node: QueryNode) -> PhysicalOperator:
        fingerprint = logical_fingerprint(node)
        existing = self.by_fingerprint.get(fingerprint)
        if existing is not None:
            existing.shared = True
            self.shared_subplans += 1
            return existing
        op = self._build(node)
        if op.op_id < 0:  # helper operators register themselves in _build
            self._register(op, node)
        self.by_fingerprint[fingerprint] = op
        return op

    def _register(self, op: PhysicalOperator, node: QueryNode) -> PhysicalOperator:
        """Assign the operator its id, row estimate and stats slot."""
        op.op_id = len(self.operators)
        op.estimated_rows = self.cost.estimated_rows(node)
        self.operators.append(op)
        return op

    def _build(self, node: QueryNode) -> PhysicalOperator:
        if isinstance(node, Scan):
            return ScanExec(node.relation, self.db, infer_schema(node, self.db))
        if isinstance(node, Select):
            return FilterExec(self.lower(node.child), node.predicate)
        if isinstance(node, Project):
            projected = ProjectExec(self.lower(node.child), node.attributes)
            if not node.distinct:
                return projected
            # The inner projection is an operator of its own: register it so
            # it gets a distinct op_id (stats slot) and a row estimate (equal
            # to its child's -- a bag projection passes every row through).
            self._register(projected, node.child)
            return DistinctExec(projected)
        if isinstance(node, Join):
            return self._build_join(node)
        if isinstance(node, Union):
            if not node.inputs:
                raise ExecutionError("union requires at least one input")
            return UnionExec([self.lower(member) for member in node.inputs])
        if isinstance(node, Difference):
            return AntiJoinExec(self.lower(node.left), self.lower(node.right), node.on)
        if isinstance(node, Aggregate):
            child = self.lower(node.child)
            return AggregateExec(child, node, infer_schema(node, self.db))
        raise ExecutionError(f"no physical operator for node type {type(node).__name__}")

    def _build_join(self, node: Join) -> PhysicalOperator:
        if self.cost.has_statistics:
            multi = self._try_multi_join(node)
            if multi is not None:
                return multi
        left = self.lower(node.left)
        right = self.lower(node.right)
        if not node.on:
            return NestedLoopJoinExec(left, right, node.condition)
        # The interpreter's first on-pair matches via dict equality (NULL =
        # NULL holds); every further pair is null-rejecting.  The composite
        # hash key reproduces exactly that split.
        plain_pairs = node.on[:1]
        strict_pairs = node.on[1:]
        left_rows = self.cost.estimated_rows(node.left)
        right_rows = self.cost.estimated_rows(node.right)
        if (
            self.cost.has_statistics
            and left_rows * right_rows <= left_rows + right_rows + _HASH_SETUP_COST
        ):
            # Tiny inputs: scanning beats building a hash table.  The keyed
            # nested loop replicates the plain/strict pair semantics exactly.
            return NestedLoopJoinExec(
                left,
                right,
                node.condition,
                plain_pairs=plain_pairs,
                strict_pairs=strict_pairs,
            )
        return HashJoinExec(
            left,
            right,
            plain_pairs,
            strict_pairs,
            node.condition,
            build_left=left_rows < right_rows,
        )

    # -- statistics-driven join reordering -----------------------------------------
    @staticmethod
    def _flattenable(node: QueryNode) -> bool:
        """Whether a join can melt into a multi-join: keyed, no residual
        condition (conditions are evaluated over *partial* rows by the
        interpreter, so joins carrying one stay at their original spot)."""
        return isinstance(node, Join) and bool(node.on) and node.condition is None

    def _try_multi_join(self, node: Join) -> PhysicalOperator | None:
        """Flatten a tree of condition-free equi-joins and reorder it by cost.

        Returns ``None`` (fall back to binary lowering) when fewer than three
        inputs emerge or anything about the shape resists flattening.
        """
        if not self._flattenable(node):
            return None
        inputs: list[QueryNode] = []
        constraints: list[JoinKeyConstraint] = []

        def flatten(current: QueryNode) -> list[tuple[int, int]]:
            """Input-ordinal/column layout of a subtree's output schema.

            Joins melt into constraints; bag projections (which preserve row
            order, count and lineage) are transparent -- their layout simply
            drops the pruned columns, so the projection-pruning rewrite never
            hides a reorderable join chain.
            """
            if self._flattenable(current):
                left_layout = flatten(current.left)
                right_layout = flatten(current.right)
                left_schema = infer_schema(current.left, self.db)
                right_schema = infer_schema(current.right, self.db)
                for position, (left_name, right_name) in enumerate(current.on):
                    a_input, a_col = left_layout[left_schema.index(left_name)]
                    b_input, b_col = right_layout[right_schema.index(right_name)]
                    constraints.append(
                        JoinKeyConstraint(
                            a_input, a_col, b_input, b_col, plain=position == 0
                        )
                    )
                return left_layout + right_layout
            if isinstance(current, Project) and not current.distinct:
                child_layout = flatten(current.child)
                child_schema = infer_schema(current.child, self.db)
                return [
                    child_layout[child_schema.index(name)]
                    for name in current.attributes
                ]
            ordinal = len(inputs)
            inputs.append(current)
            width = len(infer_schema(current, self.db))
            return [(ordinal, column) for column in range(width)]

        try:
            output_layout = flatten(node)
        except Exception:
            return None
        if len(inputs) < 3:
            return None

        labels: list[str] = []
        join_inputs: list[JoinInput] = []
        input_names: list[tuple[str, ...]] = []
        for ordinal, member in enumerate(inputs):
            names = infer_schema(member, self.db).names
            input_names.append(names)
            profiles = self.cost.profiles(member)
            rows = float(self.cost.estimated_rows(member))
            join_inputs.append(
                JoinInput(
                    rows=rows,
                    column_distinct=tuple(
                        profiles[name].distinct if name in profiles else max(1.0, rows)
                        for name in names
                    ),
                    column_null_fraction=tuple(
                        profiles[name].null_fraction if name in profiles else 0.0
                        for name in names
                    ),
                )
            )
            if isinstance(member, Scan):
                labels.append(member.relation)
            else:
                labels.append(f"{type(member).__name__}#{ordinal}")
        order = choose_join_order(join_inputs, constraints)
        key_labels = tuple(
            f"{labels[c.a_input]}.{input_names[c.a_input][c.a_col]}"
            f"={labels[c.b_input]}.{input_names[c.b_input][c.b_col]}"
            for c in constraints
        )
        children = [self.lower(member) for member in inputs]
        return MultiJoinExec(
            children,
            infer_schema(node, self.db),
            constraints,
            order,
            output_layout,
            labels=labels,
            key_labels=key_labels,
        )


def _q_error(estimated: int, actual: int) -> float:
    """The q-error of one operator: ``max(est/actual, actual/est)``, both
    clamped to >= 1 so empty results stay finite.  1.0 is a perfect estimate;
    the EXPLAIN surface reports it per operator after a run."""
    over = max(estimated, 1) / max(actual, 1)
    return round(max(over, 1.0 / over), 2)


# ---------------------------------------------------------------------------
# The plan object
# ---------------------------------------------------------------------------

@dataclass
class PlanRunStats:
    """Aggregate counters of one plan execution."""

    rows_out: int = 0
    seconds: float = 0.0
    operators: dict[int, dict] = field(default_factory=dict)


class PhysicalPlan:
    """An executable physical plan for one logical tree over one database.

    Plans are immutable once built and hold no per-run state, so one plan can
    be cached and executed concurrently from many service threads.  Each
    :meth:`execute` returns a fresh :class:`~repro.relational.relation.Relation`
    that is fingerprint-identical (rows, order, lineage) to evaluating the
    original logical tree with the naive interpreter.
    """

    def __init__(
        self,
        node: QueryNode,
        optimized: QueryNode,
        root: PhysicalOperator,
        db,
        *,
        rewrites: RewriteLog,
        operators: list[PhysicalOperator],
        shared_subplans: int = 0,
        query: Optional[Query] = None,
        used_statistics: bool = False,
    ):
        self.node = node
        self.optimized = optimized
        self.root = root
        self.db = db
        self.rewrites = rewrites
        self.operators = operators
        self.shared_subplans = shared_subplans
        self.query = query
        self.used_statistics = used_statistics
        self.fingerprint = logical_fingerprint(node)

    # -- execution ----------------------------------------------------------------
    def execute(self, *, batch_size: int | None = None) -> Relation:
        relation, _ = self.execute_with_stats(batch_size=batch_size)
        return relation

    def execute_with_stats(
        self, *, batch_size: int | None = None
    ) -> tuple[Relation, "PlanRunStats"]:
        import time

        ctx = ExecutionContext(batch_size=batch_size)
        started = time.perf_counter()
        rows = self.root.rows(ctx)
        elapsed = time.perf_counter() - started
        stats = PlanRunStats(
            rows_out=len(rows),
            seconds=elapsed,
            operators={
                op_id: op_stats.as_dict() for op_id, op_stats in ctx.stats.items()
            },
        )
        return Relation(self.root.schema, rows), stats

    # -- EXPLAIN ------------------------------------------------------------------
    def explain(self, *, run: bool = False) -> "PlanExplanation":
        """The plan tree, optionally annotated with actual rows and timings."""
        stats = None
        if run:
            _, stats = self.execute_with_stats()
        return PlanExplanation(self, stats)

    def describe(self, *, run: bool = False) -> str:
        return self.explain(run=run).describe()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PhysicalPlan({self.root!r}, {len(self.operators)} operators)"


class PlanExplanation:
    """Printable / JSON-serializable EXPLAIN output of a physical plan."""

    def __init__(self, plan: PhysicalPlan, run_stats: PlanRunStats | None = None):
        self.plan = plan
        self.run_stats = run_stats

    def _node_dict(self, op: PhysicalOperator, seen: set[int]) -> dict:
        payload: dict = {
            "operator": op.name,
            "detail": op.detail(),
            "estimated_rows": op.estimated_rows,
        }
        if op.shared:
            payload["shared"] = True
        if op.op_id in seen:
            # A deduplicated common subplan: the tree references it from more
            # than one parent, but its actual row counts (and children) are
            # reported once, at the first occurrence -- summing the JSON tree
            # must never double-count the work it did.
            payload["reference"] = True
            return payload
        seen.add(op.op_id)
        if self.run_stats is not None:
            op_stats = self.run_stats.operators.get(op.op_id, {})
            payload.update(op_stats)
            if op_stats and op.estimated_rows is not None:
                payload["q_error"] = _q_error(op.estimated_rows, op_stats["rows"])
        children = [self._node_dict(child, seen) for child in op.children]
        if children:
            payload["children"] = children
        return payload

    def to_dict(self) -> dict:
        payload: dict = {
            "planner": "optimized",
            "cost_model": "statistics" if self.plan.used_statistics else "heuristic",
            "fingerprint": self.plan.fingerprint,
            "rewrites": list(self.plan.rewrites.applied),
            "shared_subplans": self.plan.shared_subplans,
            "plan": self._node_dict(self.plan.root, set()),
        }
        if self.plan.query is not None:
            payload["query"] = self.plan.query.name
        if self.run_stats is not None:
            payload["rows_out"] = self.run_stats.rows_out
            payload["seconds"] = round(self.run_stats.seconds, 6)
        return payload

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    def describe(self) -> str:
        """A pg-style indented plan tree with per-operator annotations."""
        lines: list[str] = []
        if self.plan.query is not None:
            lines.append(f"Plan for {self.plan.query.name}")
        if self.plan.used_statistics:
            lines.append("cost model: statistics (ANALYZE)")
        if self.plan.rewrites.applied:
            lines.append(f"rewrites: {', '.join(self.plan.rewrites.applied)}")
        seen: set[int] = set()

        def walk(op: PhysicalOperator, prefix: str, is_last: bool, is_root: bool):
            parts = [op.name]
            detail = op.detail()
            if detail:
                parts.append(f"[{detail}]")
            parts.append(f"est={op.estimated_rows}")
            if op.shared:
                parts.append("shared")
            reference = op.op_id in seen
            if reference:
                parts.append("(ref)")
            else:
                seen.add(op.op_id)
                if self.run_stats is not None:
                    op_stats = self.run_stats.operators.get(op.op_id)
                    if op_stats:
                        parts.append(f"rows={op_stats['rows']}")
                        if op.estimated_rows is not None:
                            parts.append(
                                f"q={_q_error(op.estimated_rows, op_stats['rows'])}"
                            )
                        parts.append(f"time={op_stats['seconds'] * 1000:.2f}ms")
            connector = "" if is_root else ("└─ " if is_last else "├─ ")
            lines.append(prefix + connector + " ".join(parts))
            if reference:
                return
            child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
            for index, child in enumerate(op.children):
                walk(child, child_prefix, index == len(op.children) - 1, False)

        walk(self.plan.root, "", True, True)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------

def plan_node(node: QueryNode, db, *, optimize_tree: bool = True) -> PhysicalPlan:
    """Plan a logical tree: optimize (unless disabled) and lower to operators."""
    # Chaos hook: a failure here must degrade to the fingerprint-reference
    # naive interpreter in the service's ladder, never fail the request.
    FAULTS.check("plan.lower")
    if optimize_tree:
        optimized, log = optimize(node, db)
    else:
        optimized, log = node, RewriteLog()
    lowering = _Lowering(db)
    root = lowering.lower(optimized)
    return PhysicalPlan(
        node,
        optimized,
        root,
        db,
        rewrites=log,
        operators=lowering.operators,
        shared_subplans=lowering.shared_subplans,
        used_statistics=lowering.cost.has_statistics,
    )


def plan_query(query: Query, db, *, optimize_tree: bool = True) -> PhysicalPlan:
    """Plan a named query's full tree (projection/aggregate root included)."""
    plan = plan_node(query.root, db, optimize_tree=optimize_tree)
    plan.query = query
    return plan

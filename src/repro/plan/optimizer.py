"""Rule-based logical optimizer over the relational query AST.

The optimizer rewrites a :class:`~repro.relational.query.QueryNode` tree into
an equivalent tree that the physical planner can lower into faster operators.
Every rewrite is **exact**: the optimized tree produces the same rows, in the
same order, with the same per-row lineage sets as the input tree -- it remains
executable by the naive interpreter, which is how the equivalence suite
validates each rule in isolation.

Rules (applied in order, each to fixpoint):

* ``merge_selects`` -- ``Select(Select(x, p1), p2)`` becomes one conjunctive
  selection so that pushdown sees every conjunct at once;
* ``pushdown_select`` -- selection conjuncts sink through Project (when they
  only reference projected attributes), Union (into every input) and Join
  (side-local conjuncts move onto their side; cross-side equality conjuncts
  become join keys);
* ``extract_equi_keys`` -- equality conjuncts of a join's extra ``condition``
  move into the ``on`` key list, turning nested-loop joins into hash joins;
* ``prune_projections`` -- columns no operator above ever reads are dropped
  with narrow ``Project`` nodes above join inputs and difference right sides.

Predicates the optimizer cannot introspect (ad-hoc callables that are not
:class:`~repro.relational.expressions.Predicate` trees) disable the rules that
would need their attribute sets -- the plan still runs, just unoptimized at
that spot.

A subtlety worth documenting: the naive executor matches its *first* ``on``
pair by dictionary equality, under which ``NULL = NULL`` holds, while every
further pair and every ``condition`` conjunct is null-rejecting.  When a rule
promotes a condition conjunct into the first key of a previously key-less
join it therefore adds an ``IS NOT NULL`` guard on the left attribute, so the
rewritten tree keeps the condition's null-rejecting semantics exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.errors import RelationalError
from repro.relational.executor import Database
from repro.relational.expressions import (
    And,
    AttributeComparison,
    Comparison,
    Contains,
    IsNull,
    Membership,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.relational.query import (
    Aggregate,
    Difference,
    Join,
    Project,
    QueryNode,
    Scan,
    Select,
    Union,
)
from repro.relational.schema import Attribute, DataType, Schema, concat_names


# ---------------------------------------------------------------------------
# Logical schema inference
# ---------------------------------------------------------------------------

def infer_schema(node: QueryNode, db: Database) -> Schema:
    """The output schema a node produces when evaluated against ``db``.

    Mirrors exactly what the executor builds: joins concatenate with ``_r``
    disambiguation, unions take the first input's schema, aggregates append a
    FLOAT column named after the alias.
    """
    if isinstance(node, Scan):
        return db.relation(node.relation).schema
    if isinstance(node, Select):
        return infer_schema(node.child, db)
    if isinstance(node, Project):
        return infer_schema(node.child, db).project(list(node.attributes))
    if isinstance(node, Join):
        return infer_schema(node.left, db).concat(infer_schema(node.right, db))
    if isinstance(node, Union):
        return infer_schema(node.inputs[0], db)
    if isinstance(node, Difference):
        return infer_schema(node.left, db)
    if isinstance(node, Aggregate):
        out = Attribute(node.alias, DataType.FLOAT)
        child = infer_schema(node.child, db)
        if node.group_by:
            return child.project(list(node.group_by)).extend([out])
        return Schema([out])
    raise RelationalError(f"cannot infer a schema for node type {type(node).__name__}")


# ---------------------------------------------------------------------------
# Predicate introspection helpers
# ---------------------------------------------------------------------------

_KNOWN_LEAVES = (Comparison, AttributeComparison, Membership, Contains, IsNull, TruePredicate)


def is_known_predicate(predicate) -> bool:
    """Whether every node of the predicate tree is an introspectable type.

    Ad-hoc callables satisfy the executor's contract but expose no attribute
    sets, so no rewrite involving them is provably exact.
    """
    if isinstance(predicate, _KNOWN_LEAVES):
        return True
    if isinstance(predicate, Not):
        return is_known_predicate(predicate.child)
    if isinstance(predicate, (And, Or)):
        return all(is_known_predicate(child) for child in predicate.children)
    return False


def conjuncts_of(predicate: Predicate) -> list[Predicate]:
    """Flatten nested conjunctions into a list of conjuncts."""
    if isinstance(predicate, And):
        parts: list[Predicate] = []
        for child in predicate.children:
            parts.extend(conjuncts_of(child))
        return parts
    return [predicate]


def conjoin(parts: list[Predicate]) -> Predicate | None:
    """Re-assemble conjuncts (None for an empty list, no 1-tuple And wrapper)."""
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return And(*parts)


def rename_predicate(predicate: Predicate, mapping: dict[str, str]) -> Predicate:
    """The predicate with attribute names substituted via ``mapping``.

    Only called on known predicate trees (see :func:`is_known_predicate`).
    """
    if isinstance(predicate, Comparison):
        return Comparison(mapping.get(predicate.attribute, predicate.attribute),
                          predicate.op, predicate.value)
    if isinstance(predicate, AttributeComparison):
        return AttributeComparison(mapping.get(predicate.left, predicate.left),
                                   predicate.op,
                                   mapping.get(predicate.right, predicate.right))
    if isinstance(predicate, Membership):
        return Membership(mapping.get(predicate.attribute, predicate.attribute),
                          predicate.values)
    if isinstance(predicate, Contains):
        return Contains(mapping.get(predicate.attribute, predicate.attribute),
                        predicate.needle, predicate.case_sensitive)
    if isinstance(predicate, IsNull):
        return IsNull(mapping.get(predicate.attribute, predicate.attribute),
                      predicate.negate)
    if isinstance(predicate, Not):
        return Not(rename_predicate(predicate.child, mapping))
    if isinstance(predicate, And):
        return And(*(rename_predicate(child, mapping) for child in predicate.children))
    if isinstance(predicate, Or):
        return Or(*(rename_predicate(child, mapping) for child in predicate.children))
    return predicate  # TruePredicate


# ---------------------------------------------------------------------------
# The rewrite pass
# ---------------------------------------------------------------------------

@dataclass
class RewriteLog:
    """Which rules fired where, recorded for EXPLAIN output and golden tests."""

    applied: list[str] = field(default_factory=list)

    def note(self, rule: str, detail: str = "") -> None:
        self.applied.append(f"{rule}({detail})" if detail else rule)


def _join_rename_map(node: Join, db: Database) -> tuple[Schema, Schema, dict[str, str]]:
    """(left schema, right schema, right-original -> combined-name map)."""
    left_schema = infer_schema(node.left, db)
    right_schema = infer_schema(node.right, db)
    _, renamed = concat_names(left_schema.names, right_schema.names)
    return left_schema, right_schema, renamed


def _merge_selects(node: Select, log: RewriteLog) -> QueryNode:
    child = node.child
    if isinstance(child, Select):
        log.note("merge_selects")
        merged = conjoin(conjuncts_of(child.predicate) + conjuncts_of(node.predicate))
        return _merge_selects(Select(child.child, merged), log)
    return node


def _push_into_join(
    select: Select, join: Join, db: Database, log: RewriteLog
) -> QueryNode | None:
    """Sink a selection's conjuncts into a join; None when nothing moves."""
    if not is_known_predicate(select.predicate):
        return None
    left_schema, right_schema, renamed = _join_rename_map(join, db)
    left_names = set(left_schema.names)
    combined_to_right = {combined: original for original, combined in renamed.items()}

    to_left: list[Predicate] = []
    to_right: list[Predicate] = []
    new_keys: list[tuple[str, str]] = []
    residual: list[Predicate] = []
    for conjunct in conjuncts_of(select.predicate):
        attrs = conjunct.attributes()
        if attrs and attrs <= left_names:
            to_left.append(conjunct)
        elif attrs and all(name in combined_to_right for name in attrs):
            to_right.append(rename_predicate(conjunct, combined_to_right))
        elif (
            isinstance(conjunct, AttributeComparison)
            and conjunct.op in ("=", "==")
            and conjunct.left in left_names
            and conjunct.right in combined_to_right
        ):
            new_keys.append((conjunct.left, combined_to_right[conjunct.right]))
        elif (
            isinstance(conjunct, AttributeComparison)
            and conjunct.op in ("=", "==")
            and conjunct.right in left_names
            and conjunct.left in combined_to_right
        ):
            new_keys.append((conjunct.right, combined_to_right[conjunct.left]))
        else:
            residual.append(conjunct)
    if not to_left and not to_right and not new_keys:
        return None

    new_left = join.left
    if to_left:
        log.note("pushdown_select", "join-left")
        new_left = Select(new_left, conjoin(to_left))
    new_right = join.right
    if to_right:
        log.note("pushdown_select", "join-right")
        new_right = Select(new_right, conjoin(to_right))
    on = join.on
    if new_keys:
        log.note("extract_equi_keys", "from-where")
        if not on:
            # The first on-pair matches NULL = NULL (dict equality in the
            # executor); the condition it replaces was null-rejecting, so
            # guard the promoted pair explicitly.
            residual.insert(0, IsNull(new_keys[0][0], negate=True))
        on = on + tuple(new_keys)
    rewritten: QueryNode = Join(new_left, new_right, on=on, condition=join.condition)
    remaining = conjoin(residual)
    if remaining is not None:
        rewritten = Select(rewritten, remaining)
    return rewritten


def _pushdown_select(node: Select, db: Database, log: RewriteLog) -> QueryNode:
    child = node.child
    if isinstance(child, Project):
        if (
            is_known_predicate(node.predicate)
            and node.predicate.attributes() <= set(child.attributes)
        ):
            # Exact for DISTINCT too: the predicate reads projected values
            # only, so duplicate groups pass or fail as one -- the same rows
            # survive and merge the same lineage either way.
            log.note("pushdown_select", "through-project")
            return Project(
                _pushdown_select(Select(child.child, node.predicate), db, log),
                child.attributes,
                distinct=child.distinct,
            )
        return node
    if isinstance(child, Union):
        log.note("pushdown_select", "through-union")
        return Union(
            tuple(
                _pushdown_select(Select(member, node.predicate), db, log)
                for member in child.inputs
            )
        )
    if isinstance(child, Join):
        rewritten = _push_into_join(node, child, db, log)
        if rewritten is not None:
            return rewritten
    return node


def _extract_equi_keys(node: Join, db: Database, log: RewriteLog) -> Join:
    """Move equality conjuncts of the extra condition into the key list."""
    if node.condition is None or not is_known_predicate(node.condition):
        return node
    left_schema, right_schema, renamed = _join_rename_map(node, db)
    left_names = set(left_schema.names)
    combined_to_right = {combined: original for original, combined in renamed.items()}
    keys: list[tuple[str, str]] = []
    guards: list[Predicate] = []
    residual: list[Predicate] = []
    for conjunct in conjuncts_of(node.condition):
        if isinstance(conjunct, AttributeComparison) and conjunct.op in ("=", "=="):
            if conjunct.left in left_names and conjunct.right in combined_to_right:
                keys.append((conjunct.left, combined_to_right[conjunct.right]))
                continue
            if conjunct.right in left_names and conjunct.left in combined_to_right:
                keys.append((conjunct.right, combined_to_right[conjunct.left]))
                continue
        residual.append(conjunct)
    if not keys:
        return node
    log.note("extract_equi_keys", "from-condition")
    if not node.on:
        guards.append(IsNull(keys[0][0], negate=True))  # see module docstring
    return Join(
        node.left,
        node.right,
        on=node.on + tuple(keys),
        condition=conjoin(guards + residual),
    )


# ---------------------------------------------------------------------------
# Projection pruning
# ---------------------------------------------------------------------------

def _narrow(node: QueryNode, needed: set[str], db: Database, log: RewriteLog) -> QueryNode:
    """Prune inside ``node``, then drop columns outside ``needed`` if any."""
    pruned = _prune(node, set(needed), db, log)
    names = infer_schema(pruned, db).names
    kept = tuple(name for name in names if name in needed)
    if kept == names:
        return pruned
    log.note("prune_projections", ",".join(sorted(set(names) - set(kept))))
    return Project(pruned, kept, distinct=False)


def _prune(
    node: QueryNode, required: set[str] | None, db: Database, log: RewriteLog
) -> QueryNode:
    """Drop columns no operator above reads.

    ``required`` is the set of output names the parent needs (``None`` = all;
    the subtree's schema is then preserved exactly).  A pruned subtree may
    keep a *superset* of ``required`` -- join keys stay, and a join whose
    narrowing would change the ``_r`` rename scheme of any kept column is
    left wide rather than risk renaming drift.
    """
    if isinstance(node, Select):
        if required is not None and is_known_predicate(node.predicate):
            child_required = required | node.predicate.attributes()
        else:
            child_required = None
        return Select(_prune(node.child, child_required, db, log), node.predicate)
    if isinstance(node, Project):
        return Project(
            _prune(node.child, set(node.attributes), db, log),
            node.attributes,
            distinct=node.distinct,
        )
    if isinstance(node, Aggregate):
        child_required = set(node.group_by)
        if node.attribute is not None:
            child_required.add(node.attribute)
        return Aggregate(
            _prune(node.child, child_required, db, log),
            node.function,
            node.attribute,
            group_by=node.group_by,
            alias=node.alias,
        )
    if isinstance(node, Union):
        # Members must keep identical schemas; prune inside, never narrow.
        return Union(tuple(_prune(member, None, db, log) for member in node.inputs))
    if isinstance(node, Difference):
        left_required = None if required is None else required | set(node.on)
        return Difference(
            _prune(node.left, left_required, db, log),
            _narrow(node.right, set(node.on), db, log),
            on=node.on,
        )
    if isinstance(node, Join):
        return _prune_join(node, required, db, log)
    return node


def _prune_join(
    node: Join, required: set[str] | None, db: Database, log: RewriteLog
) -> Join:
    left_schema, right_schema, renamed = _join_rename_map(node, db)
    condition_known = node.condition is None or is_known_predicate(node.condition)
    if required is None or not condition_known:
        # Parent (or an opaque condition) needs every column: recurse without
        # narrowing so the output schema is untouched.
        return Join(
            _prune(node.left, None, db, log),
            _prune(node.right, None, db, log),
            on=node.on,
            condition=node.condition,
        )
    needed_combined = set(required)
    if node.condition is not None:
        needed_combined |= node.condition.attributes()
    needed_left = {n for n in left_schema.names if n in needed_combined}
    needed_left |= {pair[0] for pair in node.on}
    needed_right = {
        original for original, combined in renamed.items() if combined in needed_combined
    }
    needed_right |= {pair[1] for pair in node.on}

    new_left = _narrow(node.left, needed_left, db, log)
    new_right = _narrow(node.right, needed_right, db, log)
    candidate = Join(new_left, new_right, on=node.on, condition=node.condition)

    # Narrowing a side can change the _r disambiguation of the concatenated
    # schema; accept the pruned join only if every kept right column maps to
    # the same combined name as before, so references above stay valid.
    _, new_renamed = concat_names(
        infer_schema(new_left, db).names, infer_schema(new_right, db).names
    )
    if all(new_renamed[name] == renamed[name] for name in new_renamed):
        return candidate
    return Join(
        _prune(node.left, None, db, log),
        _prune(node.right, None, db, log),
        on=node.on,
        condition=node.condition,
    )


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

_MAX_PASSES = 10


def _rewrite_once(node: QueryNode, db: Database, log: RewriteLog) -> QueryNode:
    """One bottom-up pass of the select/join rules."""
    if isinstance(node, Select):
        node = Select(_rewrite_once(node.child, db, log), node.predicate)
        node = _merge_selects(node, log)
        if isinstance(node, Select):
            return _pushdown_select(node, db, log)
        return node
    if isinstance(node, Project):
        return Project(
            _rewrite_once(node.child, db, log), node.attributes, distinct=node.distinct
        )
    if isinstance(node, Aggregate):
        return Aggregate(
            _rewrite_once(node.child, db, log),
            node.function,
            node.attribute,
            group_by=node.group_by,
            alias=node.alias,
        )
    if isinstance(node, Join):
        rebuilt = Join(
            _rewrite_once(node.left, db, log),
            _rewrite_once(node.right, db, log),
            on=node.on,
            condition=node.condition,
        )
        return _extract_equi_keys(rebuilt, db, log)
    if isinstance(node, Union):
        return Union(tuple(_rewrite_once(member, db, log) for member in node.inputs))
    if isinstance(node, Difference):
        return Difference(
            _rewrite_once(node.left, db, log),
            _rewrite_once(node.right, db, log),
            on=node.on,
        )
    return node


def optimize(node: QueryNode, db: Database) -> tuple[QueryNode, RewriteLog]:
    """Optimize a logical tree; returns the rewritten tree and the rule log.

    The result is always executable by the naive interpreter and produces a
    fingerprint-identical relation (rows, order, lineage) -- asserted by the
    planner test suite on every dataset catalog query and the SQL fuzzer.
    """
    log = RewriteLog()
    current = node
    for _ in range(_MAX_PASSES):
        before = len(log.applied)
        current = _rewrite_once(current, db, log)
        if len(log.applied) == before:
            break
    current = _prune(current, None, db, log)
    return current, log

"""Logical/physical query planning: optimizer, batch operators, EXPLAIN.

The naive interpreter of :mod:`repro.relational.executor` walks the logical
AST row by row.  This package splits that into the classic two layers:

* :mod:`repro.plan.optimizer` -- exact, rule-based rewrites of the logical
  tree (selection pushdown, equi-join key extraction, projection pruning);
* :mod:`repro.plan.physical` -- batch physical operators (``ScanExec``,
  ``FilterExec``, ``HashJoinExec``, ``AggregateExec``, ...) with per-operator
  row counts and timings;
* :mod:`repro.plan.planner` -- lowering, cardinality estimates, build-side
  selection, common-subplan deduplication, and the :class:`PhysicalPlan` /
  EXPLAIN surface.

Planned execution is fingerprint-identical to the interpreter -- including
per-row why-provenance lineage -- which the planner test suite and the CI
fuzz-equivalence step assert continuously.  Entry points::

    plan = plan_query(query, db)          # -> PhysicalPlan
    relation = plan.execute()             # fingerprint-equal to execute(query, db)
    print(plan.describe(run=True))        # EXPLAIN ANALYZE-style tree
    execute(query, db, planner="optimized")   # one-shot planned execution
"""

from repro.plan.optimizer import RewriteLog, infer_schema, optimize
from repro.plan.columnar import ColumnBatch, chunk_batches, predicate_mask
from repro.plan.physical import (
    BATCH_SIZE,
    AggregateExec,
    AntiJoinExec,
    DistinctExec,
    ExecutionContext,
    FilterExec,
    HashJoinExec,
    MultiJoinExec,
    NestedLoopJoinExec,
    PhysicalOperator,
    ProjectExec,
    ScanExec,
    UnionExec,
)
from repro.plan.planner import (
    PhysicalPlan,
    PlanExplanation,
    PlanRunStats,
    estimate_rows,
    logical_fingerprint,
    plan_node,
    plan_query,
)

__all__ = [
    "optimize",
    "infer_schema",
    "RewriteLog",
    "BATCH_SIZE",
    "ColumnBatch",
    "chunk_batches",
    "predicate_mask",
    "PhysicalOperator",
    "ScanExec",
    "FilterExec",
    "ProjectExec",
    "DistinctExec",
    "HashJoinExec",
    "MultiJoinExec",
    "NestedLoopJoinExec",
    "UnionExec",
    "AntiJoinExec",
    "AggregateExec",
    "ExecutionContext",
    "PhysicalPlan",
    "PlanExplanation",
    "PlanRunStats",
    "plan_node",
    "plan_query",
    "estimate_rows",
    "logical_fingerprint",
]

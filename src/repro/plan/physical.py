"""Physical operators: a columnar batch execution model with per-op stats.

Each operator consumes :class:`~repro.plan.columnar.ColumnBatch` objects
(per-attribute value vectors plus a per-row lineage index) from its children
and yields batches of its own.  Row tuples are materialized *late* -- only at
the plan boundary (:meth:`PhysicalOperator.rows`) where results become
relations and fingerprints are taken.  The contract mirrors the naive
tree-walking interpreter exactly -- same rows, same order, same per-row
lineage sets -- so planned execution is fingerprint-interchangeable with it.

Operators are stateless across executions: all run state (per-operator row
counts and timings, memoized results of shared subplans, the batch size)
lives in an :class:`ExecutionContext` created per :meth:`PhysicalPlan.execute`
call, which keeps cached plans safely shareable between service threads.
The batch size is a context knob (``ExecutionContext(batch_size=...)``,
overridable via the ``REPRO_BATCH_SIZE`` environment variable) rather than a
hard-wired constant; chunking can change per-operator batch *counts* but
never rows, order or lineage.

NULL semantics in :class:`HashJoinExec` deserve a note.  The naive executor
matches its first ``on`` pair through dictionary lookups, under which
``NULL = NULL`` *holds*, while every further pair is null-rejecting.  The
hash join therefore hashes on a composite key whose leading component uses
plain equality (``None`` participates) and whose strict components exclude
``None`` rows from both sides -- dict equality over non-None values is then
exactly the null-rejecting comparison the interpreter applies.
"""

from __future__ import annotations

import os
import time
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.plan.columnar import ColumnBatch, chunk_batches, predicate_mask
from repro.relational.errors import ExecutionError, SchemaError
from repro.relational.expressions import Predicate
from repro.relational.query import Aggregate
from repro.relational.relation import Row
from repro.relational.schema import Schema

# Default rows per batch; per-run override via ExecutionContext(batch_size=...)
# or the REPRO_BATCH_SIZE environment variable.
BATCH_SIZE = 1024

# The unit of data flow between operators.
Batch = ColumnBatch


def _default_batch_size() -> int:
    raw = os.environ.get("REPRO_BATCH_SIZE", "")
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return BATCH_SIZE


class OperatorStats:
    """Per-operator run counters (one set per execution context).

    ``rows`` counts *rows*, never batches -- chunking and shared-subplan
    replay must not change it -- and a memoized replay marks ``reused``
    without re-counting the producer's work.
    """

    __slots__ = ("rows", "batches", "seconds", "reused")

    def __init__(self):
        self.rows = 0
        self.batches = 0
        self.seconds = 0.0
        self.reused = False

    def as_dict(self) -> dict:
        payload = {
            "rows": self.rows,
            "batches": self.batches,
            "seconds": round(self.seconds, 6),
        }
        if self.reused:
            payload["reused"] = True
        return payload


class ExecutionContext:
    """Run state of one plan execution: stats per operator, shared-result
    memo, and the batch size for this run."""

    def __init__(self, batch_size: int | None = None):
        self.batch_size = (
            max(1, int(batch_size)) if batch_size is not None else _default_batch_size()
        )
        self.stats: dict[int, OperatorStats] = {}
        self.memo: dict[int, ColumnBatch] = {}

    def stats_for(self, op: "PhysicalOperator") -> OperatorStats:
        if op.op_id not in self.stats:
            self.stats[op.op_id] = OperatorStats()
        return self.stats[op.op_id]


class PhysicalOperator:
    """Base class of all physical operators.

    Subclasses implement :meth:`batches`; callers use :meth:`run`, which adds
    timing, row counting and -- for operators lowered from a deduplicated
    common subplan (``shared=True``) -- result memoization, so a subtree that
    appears twice in the logical plan executes once.
    """

    name = "Operator"

    def __init__(self, schema: Schema, children: Sequence["PhysicalOperator"] = ()):
        self.schema = schema
        self.children = tuple(children)
        self.op_id = -1  # assigned by the planner
        self.shared = False
        self.estimated_rows: int | None = None

    def detail(self) -> str:
        """A one-line operator description for EXPLAIN output."""
        return ""

    def batches(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        raise NotImplementedError

    def run(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        stats = ctx.stats_for(self)
        if self.shared and self.op_id in ctx.memo:
            stats.reused = True
            yield ctx.memo[self.op_id]
            return
        collected: list[ColumnBatch] | None = [] if self.shared else None
        iterator = self.batches(ctx)
        while True:
            started = time.perf_counter()
            try:
                batch = next(iterator)
            except StopIteration:
                stats.seconds += time.perf_counter() - started
                break
            stats.seconds += time.perf_counter() - started
            stats.rows += len(batch)
            stats.batches += 1
            if collected is not None:
                collected.append(batch)
            yield batch
        if collected is not None:
            ctx.memo[self.op_id] = ColumnBatch.concat(collected, len(self.schema))

    def collect(self, ctx: ExecutionContext) -> ColumnBatch:
        """Fully materialize this operator's output as one columnar batch."""
        return ColumnBatch.concat(list(self.run(ctx)), len(self.schema))

    def rows(self, ctx: ExecutionContext) -> list[Row]:
        """Fully materialize this operator's output as row tuples.

        This is the fingerprint boundary: the only place the columnar
        pipeline builds :class:`Row` objects.
        """
        out: list[Row] = []
        for batch in self.run(ctx):
            out.extend(batch.to_rows())
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extra = self.detail()
        return f"{self.name}({extra})" if extra else self.name


def _batch_from_tuples(
    tuples: Sequence[tuple], lineage: list, width: int
) -> ColumnBatch:
    if tuples:
        columns = [list(column) for column in zip(*tuples)]
    else:
        columns = [[] for _ in range(width)]
    return ColumnBatch(columns, list(lineage))


# Strict-NULL key sentinel: a row whose strict component is NULL can never
# match.  A dedicated object (not None) -- a *plain* key component may itself
# legitimately be None, since plain equality lets NULL = NULL hold.
_NO_MATCH = object()


def _join_keys(batch: ColumnBatch, plain: Sequence[int], strict: Sequence[int]):
    """Per-row composite join keys; ``_NO_MATCH`` marks a strict-NULL row.

    With a single plain component and no strict ones, the raw value *is* the
    key -- dict equality over raw values and over 1-tuples is identical, and
    skipping the tuple allocation matters on the probe hot path.
    """
    plains = [batch.columns[i] for i in plain]
    stricts = [batch.columns[i] for i in strict]
    if not stricts:
        if len(plains) == 1:
            return plains[0]
        if not plains:
            return [()] * len(batch)
        return list(zip(*plains))
    keys: list = []
    for row in range(len(batch)):
        strict_values = tuple(column[row] for column in stricts)
        if any(value is None for value in strict_values):
            keys.append(_NO_MATCH)
            continue
        keys.append(tuple(column[row] for column in plains) + strict_values)
    return keys


def _gather_join(
    left: ColumnBatch, right: ColumnBatch, li: Sequence[int], ri: Sequence[int]
) -> ColumnBatch:
    """Assemble joined output columns from matched (left, right) index lists."""
    columns = [[column[i] for i in li] for column in left.columns]
    columns += [[column[j] for j in ri] for column in right.columns]
    left_lineage, right_lineage = left.lineage, right.lineage
    lineage = [left_lineage[i] | right_lineage[j] for i, j in zip(li, ri)]
    return ColumnBatch(columns, lineage)


class ScanExec(PhysicalOperator):
    """Emit a base relation's rows, assigning singleton lineage when missing.

    Uses the relation's cached column vectors
    (:meth:`~repro.relational.relation.Relation.column_data`): a relation
    that fits one batch is handed out as a zero-copy columnar view.
    """

    name = "ScanExec"

    def __init__(self, relation_name: str, db, schema: Schema):
        super().__init__(schema)
        self.relation_name = relation_name
        self.db = db

    def detail(self) -> str:
        return self.relation_name

    def batches(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        base = self.db.relation(self.relation_name)
        columns, lineage = base.column_data()
        yield from chunk_batches(ColumnBatch(columns, lineage), ctx.batch_size)


class FilterExec(PhysicalOperator):
    """Streaming selection: the predicate evaluates as a vectorized mask."""

    name = "FilterExec"

    def __init__(self, child: PhysicalOperator, predicate: Predicate):
        super().__init__(child.schema, (child,))
        self.predicate = predicate

    def detail(self) -> str:
        return repr(self.predicate)

    def batches(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        predicate = self.predicate
        schema = self.schema
        for batch in self.children[0].run(ctx):
            kept = batch.compress(predicate_mask(predicate, batch, schema))
            if len(kept):
                yield kept


class ProjectExec(PhysicalOperator):
    """Streaming projection (bag semantics; lineage preserved): an O(width)
    column-reference shuffle, no per-row work at all."""

    name = "ProjectExec"

    def __init__(self, child: PhysicalOperator, attributes: Sequence[str]):
        super().__init__(child.schema.project(list(attributes)), (child,))
        self.attributes = tuple(attributes)
        self._indices = [child.schema.index(name) for name in attributes]

    def detail(self) -> str:
        return ", ".join(self.attributes)

    def batches(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        indices = self._indices
        for batch in self.children[0].run(ctx):
            yield batch.select(indices)


class DistinctExec(PhysicalOperator):
    """Duplicate elimination; lineages of duplicates are merged (blocking)."""

    name = "DistinctExec"

    def __init__(self, child: PhysicalOperator):
        super().__init__(child.schema, (child,))

    def batches(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        seen: dict[tuple, int] = {}
        tuples: list[tuple] = []
        lineage: list = []
        for batch in self.children[0].run(ctx):
            for values, row_lineage in zip(batch.value_tuples(), batch.lineage):
                slot = seen.get(values)
                if slot is None:
                    seen[values] = len(tuples)
                    tuples.append(values)
                    lineage.append(row_lineage)
                else:
                    lineage[slot] = lineage[slot] | row_lineage
        yield from chunk_batches(
            _batch_from_tuples(tuples, lineage, len(self.schema)), ctx.batch_size
        )


class HashJoinExec(PhysicalOperator):
    """Equi-join via a composite hash key, preserving the interpreter's order.

    ``plain_pairs`` (at most one: the original first ``on`` pair) use plain
    dictionary equality; ``strict_pairs`` are null-rejecting.  ``build_left``
    picks the build side by estimated cardinality -- when the *left* side is
    built, matches are collected as index pairs and sorted back into the
    probe-from-left order the interpreter produces, so output order (and
    hence the result fingerprint) never depends on the build-side choice.
    Both sides are keyed and probed directly on their column vectors; output
    columns are gathered from the matched index lists.
    """

    name = "HashJoinExec"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        plain_pairs: Sequence[tuple[str, str]],
        strict_pairs: Sequence[tuple[str, str]],
        condition: Optional[Predicate] = None,
        *,
        build_left: bool = False,
    ):
        super().__init__(left.schema.concat(right.schema), (left, right))
        self.plain_pairs = tuple(plain_pairs)
        self.strict_pairs = tuple(strict_pairs)
        self.condition = condition
        self.build_left = build_left
        self._left_plain = [left.schema.index(l) for l, _ in self.plain_pairs]
        self._right_plain = [right.schema.index(r) for _, r in self.plain_pairs]
        self._left_strict = [left.schema.index(l) for l, _ in self.strict_pairs]
        self._right_strict = [right.schema.index(r) for _, r in self.strict_pairs]

    def detail(self) -> str:
        keys = ", ".join(
            f"{l}={r}" for l, r in self.plain_pairs + self.strict_pairs
        )
        side = "left" if self.build_left else "right"
        text = f"keys=[{keys}] build={side}"
        if self.condition is not None:
            text += f" condition={self.condition!r}"
        return text

    def batches(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        left = self.children[0].collect(ctx)
        right = self.children[1].collect(ctx)
        left_keys = _join_keys(left, self._left_plain, self._left_strict)
        right_keys = _join_keys(right, self._right_plain, self._right_strict)

        li: list[int] = []
        ri: list[int] = []
        if not self.build_left:
            buckets: dict = {}
            for j, key in enumerate(right_keys):
                if key is not _NO_MATCH:
                    buckets.setdefault(key, []).append(j)
            for i, key in enumerate(left_keys):
                if key is _NO_MATCH:
                    continue
                matched = buckets.get(key)
                if matched:
                    for j in matched:
                        li.append(i)
                        ri.append(j)
        else:
            buckets = {}
            for i, key in enumerate(left_keys):
                if key is not _NO_MATCH:
                    buckets.setdefault(key, []).append(i)
            pairs: list[tuple[int, int]] = []
            for j, key in enumerate(right_keys):
                if key is _NO_MATCH:
                    continue
                matched = buckets.get(key)
                if matched:
                    for i in matched:
                        pairs.append((i, j))
            pairs.sort()
            li = [pair[0] for pair in pairs]
            ri = [pair[1] for pair in pairs]

        joined = _gather_join(left, right, li, ri)
        if self.condition is not None:
            joined = joined.compress(
                predicate_mask(self.condition, joined, self.schema)
            )
        yield from chunk_batches(joined, ctx.batch_size)


class NestedLoopJoinExec(PhysicalOperator):
    """Nested-loop join: the key-less fallback, and -- with key pairs -- the
    cost model's choice for tiny keyed inputs where a hash table is pure
    overhead.

    ``plain_pairs`` match with the interpreter's dictionary semantics
    (identity-or-equality, so ``NULL = NULL`` holds); ``strict_pairs`` are
    null-rejecting.  Probe order is left-outer / right-inner, which is
    exactly the interpreter's hash-probe output order.  The key-less theta
    join builds bounded cross-product slabs and evaluates the condition as
    one vectorized mask per slab.
    """

    name = "NestedLoopJoinExec"

    # Target cross-product pairs per slab of the key-less path.
    _CROSS_SLAB = 1 << 16

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        condition: Optional[Predicate] = None,
        *,
        plain_pairs: Sequence[tuple[str, str]] = (),
        strict_pairs: Sequence[tuple[str, str]] = (),
    ):
        super().__init__(left.schema.concat(right.schema), (left, right))
        self.condition = condition
        self.plain_pairs = tuple(plain_pairs)
        self.strict_pairs = tuple(strict_pairs)
        self._plain = [
            (left.schema.index(l), right.schema.index(r)) for l, r in self.plain_pairs
        ]
        self._strict = [
            (left.schema.index(l), right.schema.index(r)) for l, r in self.strict_pairs
        ]

    def detail(self) -> str:
        if self.plain_pairs or self.strict_pairs:
            keys = ", ".join(
                f"{l}={r}" for l, r in self.plain_pairs + self.strict_pairs
            )
            text = f"keys=[{keys}]"
            if self.condition is not None:
                text += f" condition={self.condition!r}"
            return text
        return f"condition={self.condition!r}" if self.condition is not None else "cross"

    def batches(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        left = self.children[0].collect(ctx)
        right = self.children[1].collect(ctx)
        left_count, right_count = len(left), len(right)
        if left_count == 0 or right_count == 0:
            return
        if self._plain or self._strict:
            yield from self._keyed(left, right, ctx)
            return
        # Key-less: bounded cross-product slabs, vectorized condition.
        slab = max(1, self._CROSS_SLAB // right_count)
        right_indices = list(range(right_count))
        for start in range(0, left_count, slab):
            stop = min(start + slab, left_count)
            li = [i for i in range(start, stop) for _ in range(right_count)]
            ri = right_indices * (stop - start)
            joined = _gather_join(left, right, li, ri)
            if self.condition is not None:
                joined = joined.compress(
                    predicate_mask(self.condition, joined, self.schema)
                )
            yield from chunk_batches(joined, ctx.batch_size)

    def _keyed(
        self, left: ColumnBatch, right: ColumnBatch, ctx: ExecutionContext
    ) -> Iterator[ColumnBatch]:
        plain_columns = [
            (left.columns[li], right.columns[ri]) for li, ri in self._plain
        ]
        strict_columns = [
            (left.columns[li], right.columns[ri]) for li, ri in self._strict
        ]
        li_out: list[int] = []
        ri_out: list[int] = []
        for i in range(len(left)):
            for j in range(len(right)):
                matched = True
                for left_column, right_column in plain_columns:
                    lval, rval = left_column[i], right_column[j]
                    # Identity-or-equality is exactly how the interpreter's
                    # dict lookup compares bucket keys.
                    if lval is not rval and lval != rval:
                        matched = False
                        break
                if not matched:
                    continue
                for left_column, right_column in strict_columns:
                    lval, rval = left_column[i], right_column[j]
                    if lval is None or rval is None or lval != rval:
                        matched = False
                        break
                if matched:
                    li_out.append(i)
                    ri_out.append(j)
        joined = _gather_join(left, right, li_out, ri_out)
        if self.condition is not None:
            joined = joined.compress(
                predicate_mask(self.condition, joined, self.schema)
            )
        yield from chunk_batches(joined, ctx.batch_size)


class MultiJoinExec(PhysicalOperator):
    """An n-ary equi-join executed in a cost-chosen order, output restored.

    The planner flattens a tree of condition-free equi-joins into one
    operator whose ``children`` are the join inputs in their *original*
    left-to-right order and whose ``constraints`` address key pairs by
    (input ordinal, column position).  ``order`` is the execution order the
    cost model picked; intermediate "partial tuples" are just per-input row
    positions, hash-joined step by step (building on whichever side is
    smaller at run time) against the inputs' column vectors.

    Because the interpreter's output of any tree of keyed joins is ordered
    lexicographically by the leaf row positions (probe-from-left, bucket
    lists in build order), sorting the final position tuples in original
    input order and gathering values input by input reproduces the naive
    result exactly -- rows, order and lineage -- no matter which execution
    order ran.  ``plain`` constraints match via dictionary semantics
    (``NULL = NULL`` holds, as for the interpreter's first ``on`` pair);
    strict constraints drop NULL rows on both sides.

    ``output_layout`` maps every output column to its (input ordinal, column
    position) source, which lets the planner flatten *through* bag
    projections sitting between the joins -- projected-away columns simply
    never appear in the layout.
    """

    name = "MultiJoinExec"

    def __init__(
        self,
        inputs: Sequence[PhysicalOperator],
        schema: Schema,
        constraints: Sequence,
        order: Sequence[int],
        output_layout: Sequence[tuple[int, int]],
        *,
        labels: Sequence[str] = (),
        key_labels: Sequence[str] = (),
    ):
        super().__init__(schema, inputs)
        if len(output_layout) != len(schema):
            raise ExecutionError(
                "multi-join output layout does not match its schema arity"
            )
        for ordinal, column in output_layout:
            if not (0 <= ordinal < len(inputs)) or not (
                0 <= column < len(inputs[ordinal].schema)
            ):
                raise ExecutionError(
                    f"multi-join layout entry ({ordinal}, {column}) out of range"
                )
        if sorted(order) != list(range(len(inputs))):
            raise ExecutionError(f"invalid multi-join order {order!r}")
        self.output_layout = tuple(output_layout)
        self.constraints = tuple(constraints)
        self.order = tuple(order)
        self.labels = tuple(labels) if labels else tuple(
            f"#{index}" for index in range(len(inputs))
        )
        self.key_labels = tuple(key_labels)

    def detail(self) -> str:
        ordered = ", ".join(self.labels[index] for index in self.order)
        text = f"order=[{ordered}]"
        if self.key_labels:
            text += f" keys=[{', '.join(self.key_labels)}]"
        return text

    def batches(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        inputs = [child.collect(ctx) for child in self.children]
        columns_per_input = [batch.columns for batch in inputs]
        lineage_per_input = [batch.lineage for batch in inputs]
        counts = [len(batch) for batch in inputs]
        order = self.order
        # Partial tuples hold one row position per joined input, aligned with
        # the order in which inputs were joined; ``slot_of`` maps an input
        # ordinal to its slot in the partial tuples.
        slot_of: dict[int, int] = {order[0]: 0}
        partials: list[tuple[int, ...]] = [(pos,) for pos in range(counts[order[0]])]
        for next_input in order[1:]:
            if partials:
                partials = self._join_step(
                    partials, slot_of, next_input, columns_per_input, counts
                )
            slot_of[next_input] = len(slot_of)

        count = len(self.children)
        slots = [slot_of[index] for index in range(count)]
        positions = sorted(
            tuple(partial[slots[index]] for index in range(count))
            for partial in partials
        )
        out_columns = [
            [columns_per_input[ordinal][column][position_tuple[ordinal]]
             for position_tuple in positions]
            for ordinal, column in self.output_layout
        ]
        out_lineage: list = []
        for position_tuple in positions:
            lineage: frozenset = frozenset()
            for index, pos in enumerate(position_tuple):
                lineage |= lineage_per_input[index][pos]
            out_lineage.append(lineage)
        yield from chunk_batches(
            ColumnBatch(out_columns, out_lineage), ctx.batch_size
        )

    def _join_step(
        self,
        partials: list[tuple[int, ...]],
        slot_of: dict[int, int],
        next_input: int,
        columns_per_input: list[list[list]],
        counts: list[int],
    ) -> list[tuple[int, ...]]:
        """Join the accumulated partials with one more input."""
        partial_components: list[tuple[int, int, bool]] = []  # (slot, col, strict)
        next_components: list[tuple[int, bool]] = []  # (col, strict)
        for constraint in self.constraints:
            if constraint.a_input == next_input and constraint.b_input in slot_of:
                near_col, far_input, far_col = (
                    constraint.a_col, constraint.b_input, constraint.b_col,
                )
            elif constraint.b_input == next_input and constraint.a_input in slot_of:
                near_col, far_input, far_col = (
                    constraint.b_col, constraint.a_input, constraint.a_col,
                )
            else:
                continue
            partial_components.append(
                (slot_of[far_input], far_col, not constraint.plain)
            )
            next_components.append((near_col, not constraint.plain))
        # Which input each partial slot points at, for key extraction.
        input_of_slot = {slot: index for index, slot in slot_of.items()}

        def partial_key(partial: tuple[int, ...]):
            key = []
            for slot, col, strict in partial_components:
                value = columns_per_input[input_of_slot[slot]][col][partial[slot]]
                if strict and value is None:
                    return None
                key.append(value)
            return tuple(key)

        next_columns = columns_per_input[next_input]
        next_count = counts[next_input]

        def next_key(pos: int):
            key = []
            for col, strict in next_components:
                value = next_columns[col][pos]
                if strict and value is None:
                    return None
                key.append(value)
            return tuple(key)

        if not next_components:
            # Disconnected step (no key reaches the joined set): cross product.
            return [
                partial + (pos,)
                for partial in partials
                for pos in range(next_count)
            ]
        out: list[tuple[int, ...]] = []
        if len(partials) <= next_count:
            buckets: dict[tuple, list[tuple[int, ...]]] = {}
            for partial in partials:
                key = partial_key(partial)
                if key is not None:
                    buckets.setdefault(key, []).append(partial)
            for pos in range(next_count):
                key = next_key(pos)
                if key is None:
                    continue
                for partial in buckets.get(key, ()):
                    out.append(partial + (pos,))
        else:
            positions: dict[tuple, list[int]] = {}
            for pos in range(next_count):
                key = next_key(pos)
                if key is not None:
                    positions.setdefault(key, []).append(pos)
            for partial in partials:
                key = partial_key(partial)
                if key is None:
                    continue
                for pos in positions.get(key, ()):
                    out.append(partial + (pos,))
        return out


class UnionExec(PhysicalOperator):
    """Bag union: concatenate the inputs (schema names must agree)."""

    name = "UnionExec"

    def __init__(self, inputs: Sequence[PhysicalOperator]):
        if not inputs:
            raise ExecutionError("union requires at least one input")
        first = inputs[0]
        for other in inputs[1:]:
            if other.schema.names != first.schema.names:
                raise SchemaError(
                    f"union requires identical schemas: {first.schema.names} "
                    f"vs {other.schema.names}"
                )
        super().__init__(first.schema, inputs)

    def batches(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        for child in self.children:
            yield from child.run(ctx)


class AntiJoinExec(PhysicalOperator):
    """Difference: left rows whose key tuple does not appear on the right."""

    name = "AntiJoinExec"

    def __init__(
        self, left: PhysicalOperator, right: PhysicalOperator, on: Sequence[str]
    ):
        super().__init__(left.schema, (left, right))
        self.on = tuple(on)
        self._left_indices = [left.schema.index(name) for name in self.on]
        self._right_indices = [right.schema.index(name) for name in self.on]

    def detail(self) -> str:
        return f"on=[{', '.join(self.on)}]"

    def batches(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        right = self.children[1].collect(ctx)
        if self._right_indices:
            right_keys = set(
                zip(*(right.columns[i] for i in self._right_indices))
            )
        else:
            right_keys = {()} if len(right) else set()
        left_indices = self._left_indices
        for batch in self.children[0].run(ctx):
            if left_indices:
                keys = zip(*(batch.columns[i] for i in left_indices))
            else:
                keys = iter([()] * len(batch))
            mask = np.fromiter(
                (key not in right_keys for key in keys),
                dtype=bool,
                count=len(batch),
            )
            kept = batch.compress(mask)
            if len(kept):
                yield kept


class AggregateExec(PhysicalOperator):
    """Grouped or scalar aggregation over column vectors, mirroring the
    interpreter bit for bit.

    Group order is first-seen; lineage is the union over the group; an empty
    non-COUNT scalar aggregate yields the explicit NULL row.  Delegates to
    :func:`repro.relational.executor.aggregate_columns`, the same core the
    interpreter's row path wraps, so the two paths cannot drift.
    """

    name = "AggregateExec"

    def __init__(self, child: PhysicalOperator, node: Aggregate, schema: Schema):
        super().__init__(schema, (child,))
        self.node = node

    def detail(self) -> str:
        target = self.node.attribute if self.node.attribute is not None else "*"
        text = f"{self.node.function.value}({target})"
        if self.node.group_by:
            text += f" group by {', '.join(self.node.group_by)}"
        return text

    def batches(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        from repro.relational.executor import aggregate_columns

        child = self.children[0]
        collected = child.collect(ctx)
        result = aggregate_columns(
            self.node, child.schema, collected.columns, collected.lineage
        )
        yield from chunk_batches(
            ColumnBatch.from_rows(result, len(self.schema)), ctx.batch_size
        )

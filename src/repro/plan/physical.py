"""Physical operators: a batch iterator execution model with per-op stats.

Each operator consumes batches (lists of :class:`~repro.relational.relation.Row`)
from its children and yields batches of its own.  The contract mirrors the
naive tree-walking interpreter exactly -- same rows, same order, same per-row
lineage sets -- so planned execution is fingerprint-interchangeable with it.

Operators are stateless across executions: all run state (per-operator row
counts and timings, memoized results of shared subplans) lives in an
:class:`ExecutionContext` created per :meth:`PhysicalPlan.execute` call, which
keeps cached plans safely shareable between service threads.

NULL semantics in :class:`HashJoinExec` deserve a note.  The naive executor
matches its first ``on`` pair through dictionary lookups, under which
``NULL = NULL`` *holds*, while every further pair is null-rejecting.  The
hash join therefore hashes on a composite key whose leading component uses
plain equality (``None`` participates) and whose strict components exclude
``None`` rows from both sides -- dict equality over non-None values is then
exactly the null-rejecting comparison the interpreter applies.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.relational.errors import ExecutionError, SchemaError
from repro.relational.expressions import Predicate
from repro.relational.query import Aggregate
from repro.relational.relation import Relation, Row
from repro.relational.schema import Schema

BATCH_SIZE = 1024

Batch = list[Row]


@dataclass
class OperatorStats:
    """Per-operator run counters (one set per execution context)."""

    rows: int = 0
    batches: int = 0
    seconds: float = 0.0
    reused: bool = False

    def as_dict(self) -> dict:
        payload = {
            "rows": self.rows,
            "batches": self.batches,
            "seconds": round(self.seconds, 6),
        }
        if self.reused:
            payload["reused"] = True
        return payload


class ExecutionContext:
    """Run state of one plan execution: stats per operator, shared-result memo."""

    def __init__(self):
        self.stats: dict[int, OperatorStats] = {}
        self.memo: dict[int, list[Row]] = {}

    def stats_for(self, op: "PhysicalOperator") -> OperatorStats:
        if op.op_id not in self.stats:
            self.stats[op.op_id] = OperatorStats()
        return self.stats[op.op_id]


class PhysicalOperator:
    """Base class of all physical operators.

    Subclasses implement :meth:`batches`; callers use :meth:`run`, which adds
    timing, row counting and -- for operators lowered from a deduplicated
    common subplan (``shared=True``) -- result memoization, so a subtree that
    appears twice in the logical plan executes once.
    """

    name = "Operator"

    def __init__(self, schema: Schema, children: Sequence["PhysicalOperator"] = ()):
        self.schema = schema
        self.children = tuple(children)
        self.op_id = -1  # assigned by the planner
        self.shared = False
        self.estimated_rows: int | None = None

    def detail(self) -> str:
        """A one-line operator description for EXPLAIN output."""
        return ""

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        raise NotImplementedError

    def run(self, ctx: ExecutionContext) -> Iterator[Batch]:
        stats = ctx.stats_for(self)
        if self.shared and self.op_id in ctx.memo:
            stats.reused = True
            yield ctx.memo[self.op_id]
            return
        collected: list[Row] | None = [] if self.shared else None
        iterator = self.batches(ctx)
        while True:
            started = time.perf_counter()
            try:
                batch = next(iterator)
            except StopIteration:
                stats.seconds += time.perf_counter() - started
                break
            stats.seconds += time.perf_counter() - started
            stats.rows += len(batch)
            stats.batches += 1
            if collected is not None:
                collected.extend(batch)
            yield batch
        if collected is not None:
            ctx.memo[self.op_id] = collected

    def rows(self, ctx: ExecutionContext) -> list[Row]:
        """Fully materialize this operator's output."""
        out: list[Row] = []
        for batch in self.run(ctx):
            out.extend(batch)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extra = self.detail()
        return f"{self.name}({extra})" if extra else self.name


def _rebatch(rows: Sequence[Row]) -> Iterator[Batch]:
    for start in range(0, len(rows), BATCH_SIZE):
        yield list(rows[start : start + BATCH_SIZE])


class ScanExec(PhysicalOperator):
    """Emit a base relation's rows, assigning singleton lineage when missing."""

    name = "ScanExec"

    def __init__(self, relation_name: str, db, schema: Schema):
        super().__init__(schema)
        self.relation_name = relation_name
        self.db = db

    def detail(self) -> str:
        return self.relation_name

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        base = self.db.relation(self.relation_name)
        batch: Batch = []
        for index, row in enumerate(base):
            lineage = row.lineage or frozenset({f"{self.relation_name}:{index}"})
            batch.append(Row(row.values, lineage))
            if len(batch) >= BATCH_SIZE:
                yield batch
                batch = []
        if batch:
            yield batch


class FilterExec(PhysicalOperator):
    """Streaming selection: rows of the child satisfying the predicate."""

    name = "FilterExec"

    def __init__(self, child: PhysicalOperator, predicate: Predicate):
        super().__init__(child.schema, (child,))
        self.predicate = predicate

    def detail(self) -> str:
        return repr(self.predicate)

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        names = self.schema.names
        predicate = self.predicate
        for batch in self.children[0].run(ctx):
            kept = [row for row in batch if predicate(dict(zip(names, row.values)))]
            if kept:
                yield kept


class ProjectExec(PhysicalOperator):
    """Streaming projection (bag semantics; lineage preserved)."""

    name = "ProjectExec"

    def __init__(self, child: PhysicalOperator, attributes: Sequence[str]):
        super().__init__(child.schema.project(list(attributes)), (child,))
        self.attributes = tuple(attributes)
        self._indices = [child.schema.index(name) for name in attributes]

    def detail(self) -> str:
        return ", ".join(self.attributes)

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        indices = self._indices
        for batch in self.children[0].run(ctx):
            yield [
                Row(tuple(row.values[i] for i in indices), row.lineage) for row in batch
            ]


class DistinctExec(PhysicalOperator):
    """Duplicate elimination; lineages of duplicates are merged (blocking)."""

    name = "DistinctExec"

    def __init__(self, child: PhysicalOperator):
        super().__init__(child.schema, (child,))

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        seen: dict[tuple, frozenset] = {}
        order: list[tuple] = []
        for batch in self.children[0].run(ctx):
            for row in batch:
                if row.values in seen:
                    seen[row.values] = seen[row.values] | row.lineage
                else:
                    seen[row.values] = row.lineage
                    order.append(row.values)
        yield from _rebatch([Row(values, seen[values]) for values in order])


class HashJoinExec(PhysicalOperator):
    """Equi-join via a composite hash key, preserving the interpreter's order.

    ``plain_pairs`` (at most one: the original first ``on`` pair) use plain
    dictionary equality; ``strict_pairs`` are null-rejecting.  ``build_left``
    picks the build side by estimated cardinality -- when the *left* side is
    built, matches are collected as index pairs and sorted back into the
    probe-from-left order the interpreter produces, so output order (and
    hence the result fingerprint) never depends on the build-side choice.
    """

    name = "HashJoinExec"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        plain_pairs: Sequence[tuple[str, str]],
        strict_pairs: Sequence[tuple[str, str]],
        condition: Optional[Predicate] = None,
        *,
        build_left: bool = False,
    ):
        super().__init__(left.schema.concat(right.schema), (left, right))
        self.plain_pairs = tuple(plain_pairs)
        self.strict_pairs = tuple(strict_pairs)
        self.condition = condition
        self.build_left = build_left
        self._left_plain = [left.schema.index(l) for l, _ in self.plain_pairs]
        self._right_plain = [right.schema.index(r) for _, r in self.plain_pairs]
        self._left_strict = [left.schema.index(l) for l, _ in self.strict_pairs]
        self._right_strict = [right.schema.index(r) for _, r in self.strict_pairs]

    def detail(self) -> str:
        keys = ", ".join(
            f"{l}={r}" for l, r in self.plain_pairs + self.strict_pairs
        )
        side = "left" if self.build_left else "right"
        text = f"keys=[{keys}] build={side}"
        if self.condition is not None:
            text += f" condition={self.condition!r}"
        return text

    def _key(self, row: Row, plain: list[int], strict: list[int]):
        """The composite key, or None when a strict component is NULL."""
        strict_values = tuple(row.values[i] for i in strict)
        if any(value is None for value in strict_values):
            return None
        return tuple(row.values[i] for i in plain) + strict_values

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        names = self.schema.names
        condition = self.condition
        left_rows = self.children[0].rows(ctx)
        right_op = self.children[1]

        def emit(pairs: Iterator[tuple[Row, Row]]) -> Iterator[Batch]:
            batch: Batch = []
            for lrow, rrow in pairs:
                combined = lrow.values + rrow.values
                if condition is not None and not condition(dict(zip(names, combined))):
                    continue
                batch.append(Row(combined, lrow.lineage | rrow.lineage))
                if len(batch) >= BATCH_SIZE:
                    yield batch
                    batch = []
            if batch:
                yield batch

        if not self.build_left:
            buckets: dict[tuple, list[Row]] = defaultdict(list)
            for rrow in right_op.rows(ctx):
                key = self._key(rrow, self._right_plain, self._right_strict)
                if key is not None:
                    buckets[key].append(rrow)

            def probe_left() -> Iterator[tuple[Row, Row]]:
                for lrow in left_rows:
                    key = self._key(lrow, self._left_plain, self._left_strict)
                    if key is None:
                        continue
                    for rrow in buckets.get(key, ()):
                        yield lrow, rrow

            yield from emit(probe_left())
            return

        build: dict[tuple, list[tuple[int, Row]]] = defaultdict(list)
        for index, lrow in enumerate(left_rows):
            key = self._key(lrow, self._left_plain, self._left_strict)
            if key is not None:
                build[key].append((index, lrow))
        matches: list[tuple[int, int, Row, Row]] = []
        for right_index, rrow in enumerate(right_op.rows(ctx)):
            key = self._key(rrow, self._right_plain, self._right_strict)
            if key is None:
                continue
            for left_index, lrow in build.get(key, ()):
                matches.append((left_index, right_index, lrow, rrow))
        matches.sort(key=lambda item: (item[0], item[1]))
        yield from emit((lrow, rrow) for _, _, lrow, rrow in matches)


class NestedLoopJoinExec(PhysicalOperator):
    """Nested-loop join: the key-less fallback, and -- with key pairs -- the
    cost model's choice for tiny keyed inputs where a hash table is pure
    overhead.

    ``plain_pairs`` match with the interpreter's dictionary semantics
    (identity-or-equality, so ``NULL = NULL`` holds); ``strict_pairs`` are
    null-rejecting.  Probe order is left-outer / right-inner, which is
    exactly the interpreter's hash-probe output order.
    """

    name = "NestedLoopJoinExec"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        condition: Optional[Predicate] = None,
        *,
        plain_pairs: Sequence[tuple[str, str]] = (),
        strict_pairs: Sequence[tuple[str, str]] = (),
    ):
        super().__init__(left.schema.concat(right.schema), (left, right))
        self.condition = condition
        self.plain_pairs = tuple(plain_pairs)
        self.strict_pairs = tuple(strict_pairs)
        self._plain = [
            (left.schema.index(l), right.schema.index(r)) for l, r in self.plain_pairs
        ]
        self._strict = [
            (left.schema.index(l), right.schema.index(r)) for l, r in self.strict_pairs
        ]

    def detail(self) -> str:
        if self.plain_pairs or self.strict_pairs:
            keys = ", ".join(
                f"{l}={r}" for l, r in self.plain_pairs + self.strict_pairs
            )
            text = f"keys=[{keys}]"
            if self.condition is not None:
                text += f" condition={self.condition!r}"
            return text
        return f"condition={self.condition!r}" if self.condition is not None else "cross"

    def _matches(self, lrow: Row, rrow: Row) -> bool:
        for li, ri in self._plain:
            lval, rval = lrow.values[li], rrow.values[ri]
            # Identity-or-equality is exactly how the interpreter's dict
            # lookup compares bucket keys.
            if lval is not rval and lval != rval:
                return False
        for li, ri in self._strict:
            lval, rval = lrow.values[li], rrow.values[ri]
            if lval is None or rval is None or lval != rval:
                return False
        return True

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        names = self.schema.names
        condition = self.condition
        keyed = bool(self._plain or self._strict)
        right_rows = self.children[1].rows(ctx)
        batch: Batch = []
        for lbatch in self.children[0].run(ctx):
            for lrow in lbatch:
                for rrow in right_rows:
                    if keyed and not self._matches(lrow, rrow):
                        continue
                    combined = lrow.values + rrow.values
                    if condition is not None and not condition(
                        dict(zip(names, combined))
                    ):
                        continue
                    batch.append(Row(combined, lrow.lineage | rrow.lineage))
                    if len(batch) >= BATCH_SIZE:
                        yield batch
                        batch = []
        if batch:
            yield batch


class MultiJoinExec(PhysicalOperator):
    """An n-ary equi-join executed in a cost-chosen order, output restored.

    The planner flattens a tree of condition-free equi-joins into one
    operator whose ``children`` are the join inputs in their *original*
    left-to-right order and whose ``constraints`` address key pairs by
    (input ordinal, column position).  ``order`` is the execution order the
    cost model picked; intermediate "partial tuples" are just per-input row
    positions, hash-joined step by step (building on whichever side is
    smaller at run time).

    Because the interpreter's output of any tree of keyed joins is ordered
    lexicographically by the leaf row positions (probe-from-left, bucket
    lists in build order), sorting the final position tuples in original
    input order and concatenating values input by input reproduces the naive
    result exactly -- rows, order and lineage -- no matter which execution
    order ran.  ``plain`` constraints match via dictionary semantics
    (``NULL = NULL`` holds, as for the interpreter's first ``on`` pair);
    strict constraints drop NULL rows on both sides.

    ``output_layout`` maps every output column to its (input ordinal, column
    position) source, which lets the planner flatten *through* bag
    projections sitting between the joins -- projected-away columns simply
    never appear in the layout.
    """

    name = "MultiJoinExec"

    def __init__(
        self,
        inputs: Sequence[PhysicalOperator],
        schema: Schema,
        constraints: Sequence,
        order: Sequence[int],
        output_layout: Sequence[tuple[int, int]],
        *,
        labels: Sequence[str] = (),
        key_labels: Sequence[str] = (),
    ):
        super().__init__(schema, inputs)
        if len(output_layout) != len(schema):
            raise ExecutionError(
                "multi-join output layout does not match its schema arity"
            )
        for ordinal, column in output_layout:
            if not (0 <= ordinal < len(inputs)) or not (
                0 <= column < len(inputs[ordinal].schema)
            ):
                raise ExecutionError(
                    f"multi-join layout entry ({ordinal}, {column}) out of range"
                )
        if sorted(order) != list(range(len(inputs))):
            raise ExecutionError(f"invalid multi-join order {order!r}")
        self.output_layout = tuple(output_layout)
        self.constraints = tuple(constraints)
        self.order = tuple(order)
        self.labels = tuple(labels) if labels else tuple(
            f"#{index}" for index in range(len(inputs))
        )
        self.key_labels = tuple(key_labels)

    def detail(self) -> str:
        ordered = ", ".join(self.labels[index] for index in self.order)
        text = f"order=[{ordered}]"
        if self.key_labels:
            text += f" keys=[{', '.join(self.key_labels)}]"
        return text

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        rows_per_input = [child.rows(ctx) for child in self.children]
        order = self.order
        # Partial tuples hold one row position per joined input, aligned with
        # the order in which inputs were joined; ``slot_of`` maps an input
        # ordinal to its slot in the partial tuples.
        slot_of: dict[int, int] = {order[0]: 0}
        partials: list[tuple[int, ...]] = [
            (pos,) for pos in range(len(rows_per_input[order[0]]))
        ]
        for next_input in order[1:]:
            if partials:
                partials = self._join_step(
                    partials, slot_of, next_input, rows_per_input
                )
            slot_of[next_input] = len(slot_of)

        count = len(self.children)
        slots = [slot_of[index] for index in range(count)]
        positions = sorted(
            tuple(partial[slots[index]] for index in range(count))
            for partial in partials
        )
        layout = self.output_layout
        batch: Batch = []
        for position_tuple in positions:
            values = tuple(
                rows_per_input[ordinal][position_tuple[ordinal]].values[column]
                for ordinal, column in layout
            )
            lineage: frozenset = frozenset()
            for index, pos in enumerate(position_tuple):
                lineage |= rows_per_input[index][pos].lineage
            batch.append(Row(values, lineage))
            if len(batch) >= BATCH_SIZE:
                yield batch
                batch = []
        if batch:
            yield batch

    def _join_step(
        self,
        partials: list[tuple[int, ...]],
        slot_of: dict[int, int],
        next_input: int,
        rows_per_input: list[list[Row]],
    ) -> list[tuple[int, ...]]:
        """Join the accumulated partials with one more input."""
        next_rows = rows_per_input[next_input]
        partial_components: list[tuple[int, int, bool]] = []  # (slot, col, strict)
        next_components: list[tuple[int, bool]] = []  # (col, strict)
        for constraint in self.constraints:
            if constraint.a_input == next_input and constraint.b_input in slot_of:
                near_col, far_input, far_col = (
                    constraint.a_col, constraint.b_input, constraint.b_col,
                )
            elif constraint.b_input == next_input and constraint.a_input in slot_of:
                near_col, far_input, far_col = (
                    constraint.b_col, constraint.a_input, constraint.a_col,
                )
            else:
                continue
            partial_components.append(
                (slot_of[far_input], far_col, not constraint.plain)
            )
            next_components.append((near_col, not constraint.plain))
        # Which input each partial slot points at, for key extraction.
        input_of_slot = {slot: index for index, slot in slot_of.items()}

        def partial_key(partial: tuple[int, ...]):
            key = []
            for slot, col, strict in partial_components:
                value = rows_per_input[input_of_slot[slot]][partial[slot]].values[col]
                if strict and value is None:
                    return None
                key.append(value)
            return tuple(key)

        def next_key(row: Row):
            key = []
            for col, strict in next_components:
                value = row.values[col]
                if strict and value is None:
                    return None
                key.append(value)
            return tuple(key)

        if not next_components:
            # Disconnected step (no key reaches the joined set): cross product.
            return [
                partial + (pos,)
                for partial in partials
                for pos in range(len(next_rows))
            ]
        out: list[tuple[int, ...]] = []
        if len(partials) <= len(next_rows):
            buckets: dict[tuple, list[tuple[int, ...]]] = defaultdict(list)
            for partial in partials:
                key = partial_key(partial)
                if key is not None:
                    buckets[key].append(partial)
            for pos, row in enumerate(next_rows):
                key = next_key(row)
                if key is None:
                    continue
                for partial in buckets.get(key, ()):
                    out.append(partial + (pos,))
        else:
            positions: dict[tuple, list[int]] = defaultdict(list)
            for pos, row in enumerate(next_rows):
                key = next_key(row)
                if key is not None:
                    positions[key].append(pos)
            for partial in partials:
                key = partial_key(partial)
                if key is None:
                    continue
                for pos in positions.get(key, ()):
                    out.append(partial + (pos,))
        return out


class UnionExec(PhysicalOperator):
    """Bag union: concatenate the inputs (schema names must agree)."""

    name = "UnionExec"

    def __init__(self, inputs: Sequence[PhysicalOperator]):
        if not inputs:
            raise ExecutionError("union requires at least one input")
        first = inputs[0]
        for other in inputs[1:]:
            if other.schema.names != first.schema.names:
                raise SchemaError(
                    f"union requires identical schemas: {first.schema.names} "
                    f"vs {other.schema.names}"
                )
        super().__init__(first.schema, inputs)

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        for child in self.children:
            yield from child.run(ctx)


class AntiJoinExec(PhysicalOperator):
    """Difference: left rows whose key tuple does not appear on the right."""

    name = "AntiJoinExec"

    def __init__(
        self, left: PhysicalOperator, right: PhysicalOperator, on: Sequence[str]
    ):
        super().__init__(left.schema, (left, right))
        self.on = tuple(on)
        self._left_indices = [left.schema.index(name) for name in self.on]
        self._right_indices = [right.schema.index(name) for name in self.on]

    def detail(self) -> str:
        return f"on=[{', '.join(self.on)}]"

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        right_keys = {
            tuple(row.values[i] for i in self._right_indices)
            for row in self.children[1].rows(ctx)
        }
        left_indices = self._left_indices
        for batch in self.children[0].run(ctx):
            kept = [
                row
                for row in batch
                if tuple(row.values[i] for i in left_indices) not in right_keys
            ]
            if kept:
                yield kept


class AggregateExec(PhysicalOperator):
    """Grouped or scalar aggregation, mirroring the interpreter bit for bit.

    Group order is first-seen; lineage is the union over the group; an empty
    non-COUNT scalar aggregate yields the explicit NULL row.
    """

    name = "AggregateExec"

    def __init__(self, child: PhysicalOperator, node: Aggregate, schema: Schema):
        super().__init__(schema, (child,))
        self.node = node

    def detail(self) -> str:
        target = self.node.attribute if self.node.attribute is not None else "*"
        text = f"{self.node.function.value}({target})"
        if self.node.group_by:
            text += f" group by {', '.join(self.node.group_by)}"
        return text

    def batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        from repro.relational.executor import aggregate_rows

        child = self.children[0]
        result = aggregate_rows(self.node, child.schema, child.rows(ctx))
        yield from _rebatch(result)

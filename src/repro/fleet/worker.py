"""Worker-pod lifecycle for the fleet: spawn, readiness, heartbeat, drain.

A *worker* is one full ``python -m repro.service`` daemon in its own process
(its own GIL, job queue and in-memory caches), started on an ephemeral port
with the fleet's shared spill directory mounted write-through.  This module
owns the lifecycle:

* **spawn** -- ``subprocess`` launch; the worker announces its URL on stdout
  and is then readiness-probed against ``GET /health`` until it answers;
* **heartbeat** -- periodic health probes (driven by the router's supervisor)
  update ``last_heartbeat``/``consecutive_failures`` and flip the worker to
  ``dead`` when the process exits or stops answering;
* **drain-then-exit** -- ``terminate()`` sends SIGTERM, which the daemon
  handles by draining in-flight jobs and persisting its caches before
  exiting 0; SIGKILL is the escalation, never the opener.

:func:`http_json` is the one transport primitive the fleet uses to talk to
workers: it returns ``(status, payload)`` for any HTTP response the worker
produced (typed errors included) and raises :class:`WorkerUnavailable` only
for *transport* failures -- connection refused/reset, timeouts -- which is
precisely the signal that triggers router failover.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from pathlib import Path


class WorkerError(RuntimeError):
    """A worker failed to start or misbehaved during lifecycle management."""


class WorkerUnavailable(ConnectionError):
    """A worker could not be reached at the transport level (failover signal)."""


def http_json(
    method: str, url: str, payload: dict | None = None, *, timeout: float = 30.0
) -> tuple[int, dict]:
    """One JSON-over-HTTP exchange: ``(status, body)`` or :class:`WorkerUnavailable`.

    HTTP error *responses* (4xx/5xx with a JSON envelope) are returned, not
    raised -- the worker is alive and answering, so the router must relay its
    answer rather than fail over.  Only transport-level failures raise.
    """
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read() or b"{}")
    except urllib.error.HTTPError as exc:
        body = exc.read()
        try:
            return exc.code, json.loads(body)
        except json.JSONDecodeError:
            return exc.code, {
                "error": {
                    "type": "OpaqueWorkerError",
                    "message": body.decode(errors="replace"),
                    "path": "",
                }
            }
    except (urllib.error.URLError, ConnectionError, TimeoutError, OSError) as exc:
        raise WorkerUnavailable(f"{method} {url}: {exc}") from exc


@dataclass
class WorkerSpec:
    """How to launch one worker daemon (shared by every pod in the fleet)."""

    spill_dir: str | Path | None = None
    cache_entries: int = 128
    report_cache_entries: int = 256
    job_workers: int = 2
    drain_seconds: float = 5.0
    default_deadline_seconds: float | None = None
    startup_timeout: float = 60.0
    extra_args: tuple[str, ...] = ()

    def argv(self) -> list[str]:
        args = [
            sys.executable, "-m", "repro.service",
            "--host", "127.0.0.1",
            "--port", "0",
            "--cache-entries", str(self.cache_entries),
            "--report-cache-entries", str(self.report_cache_entries),
            "--job-workers", str(self.job_workers),
            "--drain-seconds", str(self.drain_seconds),
        ]
        if self.spill_dir is not None:
            # The shared cache tier: every worker writes its artifacts
            # through to one directory and reads its siblings' for free.
            args += ["--spill-dir", str(self.spill_dir), "--spill-write-through"]
        if self.default_deadline_seconds is not None:
            args += ["--default-deadline-seconds", str(self.default_deadline_seconds)]
        args += list(self.extra_args)
        return args


class WorkerProcess:
    """One worker daemon process and its lifecycle state.

    ``state`` is one of ``new`` (constructed), ``ready`` (probed healthy),
    ``dead`` (process gone or unreachable) or ``stopped`` (we shut it down).
    """

    def __init__(self, name: str, spec: WorkerSpec | None = None):
        self.name = name
        self.spec = spec or WorkerSpec()
        self.process: subprocess.Popen | None = None
        self.url: str | None = None
        self.state = "new"
        self.last_heartbeat: float | None = None
        self.consecutive_failures = 0

    # -- spawn ------------------------------------------------------------------------
    def start(self) -> "WorkerProcess":
        """Spawn the daemon, read its announced URL, probe until ready."""
        if self.process is not None:
            raise WorkerError(f"worker {self.name} already started")
        env = dict(os.environ)
        # The worker must import repro exactly as this process does, no
        # matter what directory the fleet was launched from.
        src_dir = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if src_dir not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                src_dir + (os.pathsep + existing if existing else "")
            )
        self.process = subprocess.Popen(
            self.spec.argv(),
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        deadline = time.monotonic() + self.spec.startup_timeout
        line = self.process.stdout.readline()
        marker = "listening on "
        if marker not in line:
            self.kill()
            raise WorkerError(
                f"worker {self.name} did not announce its port: {line!r}"
            )
        self.url = line.split(marker, 1)[1].split()[0].rstrip("/")
        while True:
            if self.probe() is not None:
                self.state = "ready"
                return self
            if self.process.poll() is not None:
                self.state = "dead"
                raise WorkerError(
                    f"worker {self.name} exited during startup "
                    f"(code {self.process.returncode})"
                )
            if time.monotonic() > deadline:
                self.kill()
                raise WorkerError(
                    f"worker {self.name} never became healthy at {self.url}"
                )
            time.sleep(0.05)

    # -- liveness ---------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def probe(self, timeout: float = 3.0) -> dict | None:
        """One ``GET /health`` readiness/heartbeat probe; None when unreachable."""
        if self.url is None:
            return None
        try:
            status, payload = http_json("GET", f"{self.url}/health", timeout=timeout)
        except WorkerUnavailable:
            return None
        return payload if status == 200 else None

    def heartbeat(self, timeout: float = 3.0) -> dict | None:
        """Probe and record the outcome; flips state to ``dead`` on failure."""
        if not self.alive:
            self.state = "dead"
            self.consecutive_failures += 1
            return None
        health = self.probe(timeout)
        if health is None:
            self.consecutive_failures += 1
            if self.consecutive_failures >= 2:
                self.state = "dead"
            return None
        self.consecutive_failures = 0
        self.last_heartbeat = time.time()
        if self.state not in ("stopped",):
            self.state = "ready"
        return health

    # -- shutdown ---------------------------------------------------------------------
    def terminate(self, timeout: float | None = None) -> int | None:
        """SIGTERM drain-then-exit; escalates to SIGKILL after the grace window."""
        if self.process is None:
            return None
        grace = timeout if timeout is not None else self.spec.drain_seconds + 10.0
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=grace)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=10.0)
        self.state = "stopped"
        if self.process.stdout is not None:
            self.process.stdout.close()
        return self.process.returncode

    def kill(self) -> None:
        """SIGKILL, no drain -- the chaos path (and the startup-failure cleanup)."""
        if self.process is not None and self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=10.0)
        if self.process is not None and self.process.stdout is not None:
            self.process.stdout.close()
        self.state = "dead"

    def describe(self) -> dict:
        return {
            "name": self.name,
            "url": self.url,
            "state": self.state,
            "pid": self.process.pid if self.process is not None else None,
            "alive": self.alive,
            "last_heartbeat": self.last_heartbeat,
            "consecutive_failures": self.consecutive_failures,
        }


class StaticWorker:
    """A worker handle over an already-running daemon (no process ownership).

    Lets the router front servers it did not spawn: in-process
    ``serve_in_background`` daemons in tests, or externally managed pods.
    Lifecycle calls (:meth:`terminate`, :meth:`kill`) only update state --
    whoever started the daemon owns stopping it.
    """

    def __init__(self, name: str, url: str):
        self.name = name
        self.url = url.rstrip("/")
        self.state = "ready"
        self.last_heartbeat: float | None = None
        self.consecutive_failures = 0

    @property
    def alive(self) -> bool:
        return self.state != "dead"

    def probe(self, timeout: float = 3.0) -> dict | None:
        try:
            status, payload = http_json("GET", f"{self.url}/health", timeout=timeout)
        except WorkerUnavailable:
            return None
        return payload if status == 200 else None

    def heartbeat(self, timeout: float = 3.0) -> dict | None:
        health = self.probe(timeout)
        if health is None:
            self.consecutive_failures += 1
            if self.consecutive_failures >= 2:
                self.state = "dead"
            return None
        self.consecutive_failures = 0
        self.last_heartbeat = time.time()
        if self.state != "stopped":
            self.state = "ready"
        return health

    def terminate(self, timeout: float | None = None) -> int | None:
        self.state = "stopped"
        return None

    def kill(self) -> None:
        self.state = "dead"

    def describe(self) -> dict:
        return {
            "name": self.name,
            "url": self.url,
            "state": self.state,
            "pid": None,
            "alive": self.alive,
            "last_heartbeat": self.last_heartbeat,
            "consecutive_failures": self.consecutive_failures,
        }


class WorkerPool:
    """The fleet's worker pods: spawn N, replace the dead, stop them all."""

    def __init__(self, spec: WorkerSpec | None = None):
        self.spec = spec or WorkerSpec()
        self.workers: list[WorkerProcess] = []
        self._spawned = 0

    def spawn(self, count: int) -> list[WorkerProcess]:
        started = []
        for _ in range(count):
            worker = WorkerProcess(f"worker-{self._spawned}", self.spec)
            self._spawned += 1
            worker.start()
            self.workers.append(worker)
            started.append(worker)
        return started

    def respawn_dead(self) -> list[WorkerProcess]:
        """Replace every dead worker with a fresh pod (new name, new port).

        The replacement gets a *new* ring identity on purpose: the old node's
        arcs have already failed over, and re-adding a fresh name moves only
        ~1/N of the keyspace onto the newcomer instead of thrashing ownership
        back and forth.
        """
        replacements = []
        for worker in list(self.workers):
            if worker.state == "dead" or not worker.alive:
                if worker.state != "dead":
                    worker.state = "dead"
                self.workers.remove(worker)
                replacements.extend(self.spawn(1))
        return replacements

    def ready(self) -> list[WorkerProcess]:
        return [w for w in self.workers if w.state == "ready" and w.alive]

    def stop(self) -> None:
        for worker in self.workers:
            try:
                worker.terminate()
            except Exception:  # noqa: BLE001 - best-effort teardown
                worker.kill()

"""Run the sharded service fleet: ``python -m repro.fleet --workers N``.

Boots N ``repro.service`` worker daemons sharing one write-through spill
directory (the cross-process cache tier) behind a consistent-hash router
that speaks the single-daemon HTTP protocol -- point any existing
:class:`~repro.service.api.ServiceClient` at the router and nothing changes.

Smoke modes (both used by CI):

* ``--self-test`` boots a 2-worker fleet on ephemeral ports, drives the
  stock ``ServiceClient`` through register + explain + async-job round
  trips, asserts every routed answer is byte-identical to a direct
  single-daemon answer, verifies a late-joining worker reads its siblings'
  artifacts out of the shared tier, and checks SIGTERM drain exits 0.
* ``--chaos-smoke`` streams concurrent requests at the fleet and
  ``kill -9``-s one worker mid-stream: every request must still succeed
  (failover re-hash) with byte-identical answers.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import time

from repro.service.api import ServiceClient, serve_in_background
from repro.service.engine import ExplainService
from repro.fleet.router import FleetRouter, serve_router, serve_router_in_background
from repro.fleet.shared_cache import SharedCacheTier
from repro.fleet.worker import WorkerPool, WorkerSpec, http_json


# ---------------------------------------------------------------------------
# Demo workload: distinct database pairs so placement spreads over the ring
# ---------------------------------------------------------------------------

def demo_pair(index: int) -> tuple[str, dict, str, dict, dict]:
    """One synthetic database pair + explain payload, distinct per index.

    Each pair gets its own content (an extra program row keyed by the
    index), hence its own fingerprints, hence its own ring placement --
    which is what lets a multi-pair workload exercise more than one worker.
    """
    left_name, right_name = f"D1_{index}", f"D2_{index}"
    left = {
        left_name: [
            {"Program": "Accounting", "Degree": "B.S."},
            {"Program": "CS", "Degree": "B.A."},
            {"Program": "CS", "Degree": "B.S."},
            {"Program": "ECE", "Degree": "B.S."},
            {"Program": f"Minor{index}", "Degree": "B.S."},
        ]
    }
    right = {
        right_name: [
            {"Univ": "A", "Major": "Accounting"},
            {"Univ": "A", "Major": "CSE"},
            {"Univ": "A", "Major": "ECE"},
            {"Univ": "B", "Major": "Art"},
            {"Univ": "B", "Major": f"Minor{index}"},
        ]
    }
    payload = {
        "database_left": left_name,
        "query_left": {"name": "Q1", "kind": "count", "relation": left_name,
                       "attribute": "Program"},
        "database_right": right_name,
        "query_right": {
            "name": "Q2", "kind": "count", "relation": right_name,
            "attribute": "Major",
            "where": [{"column": "Univ", "op": "=", "value": "A"}],
        },
        "attribute_matches": [["Program", "Major"]],
        "config": {"partitioning": "none"},
    }
    return left_name, left, right_name, right, payload


def canonical_report(report: dict) -> str:
    """The byte-identity form of an explain response.

    Strips the fields that legitimately differ between servers --
    ``timings`` (wall clock), ``service`` (cache hit/miss provenance),
    ``fleet`` (which worker answered) and the wall-clock members of the
    solver ``stats`` block -- and canonicalizes the rest.  Two responses
    are *the same answer* iff these strings are equal.
    """
    trimmed = {
        key: value
        for key, value in report.items()
        if key not in ("timings", "service", "fleet")
    }
    if isinstance(trimmed.get("stats"), dict):
        trimmed["stats"] = {
            key: value
            for key, value in trimmed["stats"].items()
            if not key.endswith("_time")
        }
    return json.dumps(trimmed, sort_keys=True)


def _register_pairs(client: ServiceClient, pairs) -> None:
    for left_name, left, right_name, right, _ in pairs:
        client.register_database(left_name, left)
        client.register_database(right_name, right)


def _direct_baseline(pairs) -> dict[int, str]:
    """Canonical answers from a plain single daemon (no fleet, no spill)."""
    server, _ = serve_in_background(ExplainService(), port=0)
    try:
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}", timeout=60.0)
        _register_pairs(client, pairs)
        return {
            index: canonical_report(client.explain(pair[4]))
            for index, pair in enumerate(pairs)
        }
    finally:
        server.shutdown()


# ---------------------------------------------------------------------------
# Smoke modes
# ---------------------------------------------------------------------------

def self_test() -> int:
    """Fleet round trip + shared-tier reuse + SIGTERM drain, all asserted."""
    pairs = [demo_pair(index) for index in range(4)]
    baseline = _direct_baseline(pairs)

    tier = SharedCacheTier()
    pool = WorkerPool(WorkerSpec(spill_dir=tier.directory, drain_seconds=5.0))
    router = None
    server = None
    try:
        workers = pool.spawn(2)
        router = FleetRouter(workers, pool=pool, shared_cache=tier)
        server, _ = serve_router_in_background(router)
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}", timeout=60.0)

        health = client.health()
        assert health["live_workers"] == 2, f"fleet not fully live: {health}"
        _register_pairs(client, pairs)
        assert sorted(client.health()["registered_databases"]) == sorted(
            name for pair in pairs for name in (pair[0], pair[2])
        )

        served_by = set()
        for index, pair in enumerate(pairs):
            report = client.explain(pair[4])
            assert canonical_report(report) == baseline[index], (
                f"routed answer for pair {index} diverged from the direct daemon"
            )
            served_by.add(report["fleet"]["worker"])
        # Warm repeat: the owning worker's report cache answers.
        warm = client.explain(pairs[0][4])
        assert warm["service"]["cached_report"] is True, "repeat must be cached"

        # Async jobs route by the same key and return worker-prefixed ids.
        job = client.submit_job(pairs[1][4])
        assert ":" in job["id"], f"job id not worker-prefixed: {job}"
        final = client.wait_for_job(job["id"])
        assert final["state"] == "done", f"fleet job failed: {final}"

        # The shared tier: a late-joining worker must read its siblings'
        # artifacts off the shared spill instead of recomputing.
        newcomer = pool.spawn(1)[0]
        router._admit(newcomer)
        status, body = http_json(
            "POST", f"{newcomer.url}/explain", pairs[0][4], timeout=60.0
        )
        assert status == 200, f"newcomer explain failed: {body}"
        assert canonical_report(body) == baseline[0], (
            "newcomer's shared-tier answer diverged"
        )
        status, stats = http_json("GET", f"{newcomer.url}/stats", timeout=10.0)
        report_cache = stats["service"]["caches"]["report"]
        assert report_cache["spill_loads"] >= 1, (
            f"newcomer recomputed instead of reading the shared tier: {report_cache}"
        )

        # SIGTERM drain-then-exit: graceful termination is exit code 0.
        code = newcomer.terminate()
        assert code == 0, f"SIGTERM drain exited {code}, expected 0"

        fleet_health = client.health()
        shared = fleet_health["shared_cache"]
        assert shared["artifacts"] >= 1, f"shared tier never populated: {shared}"
        assert shared["quarantined"] == 0, f"quarantines in shared tier: {shared}"
        print(
            "fleet self-test ok: "
            f"{len(pairs)} pairs byte-identical via {len(served_by)} worker(s), "
            "async job + warm cache + shared-tier reuse "
            f"({report_cache['spill_loads']} spill loads) + SIGTERM drain passed"
        )
        return 0
    finally:
        if server is not None:
            server.shutdown()
        if router is not None:
            router.shutdown()
        pool.stop()
        tier.cleanup()


def chaos_smoke() -> int:
    """``kill -9`` one worker mid-stream; zero lost requests, identical bytes."""
    pairs = [demo_pair(index) for index in range(6)]
    baseline = _direct_baseline(pairs)

    tier = SharedCacheTier()
    pool = WorkerPool(WorkerSpec(spill_dir=tier.directory, drain_seconds=5.0))
    router = None
    server = None
    try:
        workers = pool.spawn(2)
        router = FleetRouter(workers, pool=pool, shared_cache=tier)
        server, _ = serve_router_in_background(router)
        host, port = server.server_address[:2]
        base_url = f"http://{host}:{port}"
        _register_pairs(ServiceClient(base_url, timeout=60.0), pairs)

        failures: list[str] = []
        mismatches: list[str] = []
        completed = 0
        lock = threading.Lock()
        kill_at = threading.Event()

        def _stream(rounds: int) -> None:
            nonlocal completed
            client = ServiceClient(base_url, timeout=60.0)
            for round_no in range(rounds):
                for index, pair in enumerate(pairs):
                    try:
                        report = client.explain(pair[4])
                    except Exception as exc:  # noqa: BLE001 - tallied below
                        with lock:
                            failures.append(f"pair {index} round {round_no}: {exc}")
                        continue
                    if canonical_report(report) != baseline[index]:
                        with lock:
                            mismatches.append(f"pair {index} round {round_no}")
                    with lock:
                        completed += 1
                        if completed >= len(pairs):
                            kill_at.set()

        threads = [
            threading.Thread(target=_stream, args=(3,), daemon=True)
            for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        # The chaos: once the stream is warmed up, SIGKILL a worker with
        # requests in flight.  No drain, no goodbye.
        assert kill_at.wait(timeout=120.0), "stream never warmed up"
        victim = workers[0]
        victim.process.kill()
        for thread in threads:
            thread.join(timeout=300.0)

        assert not failures, f"{len(failures)} request(s) lost to the kill: {failures[:5]}"
        assert not mismatches, f"answers diverged after failover: {mismatches[:5]}"
        health = ServiceClient(base_url, timeout=10.0).health()
        assert health["workers"][victim.name]["state"] == "dead", (
            f"victim never marked dead: {health['workers'][victim.name]}"
        )
        assert health["live_workers"] >= 1
        failovers = health["router"]["failovers"]
        print(
            f"fleet chaos smoke ok: {completed} requests, 0 failures, "
            f"0 divergent answers across kill -9 of {victim.name} "
            f"({failovers} failover(s), {health['router']['routed']} routed)"
        )
        return 0
    finally:
        if server is not None:
            server.shutdown()
        if router is not None:
            router.shutdown()
        pool.stop()
        tier.cleanup()


# ---------------------------------------------------------------------------
# The fleet daemon
# ---------------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Sharded Explain3D service fleet: router + N worker pods",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321,
                        help="router port (workers always bind ephemeral ports)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker pods to spawn")
    parser.add_argument("--replicas", type=int, default=64,
                        help="virtual nodes per worker on the hash ring")
    parser.add_argument("--spill-dir", default=None,
                        help="shared cache-tier directory (default: owned temp dir)")
    parser.add_argument("--cache-entries", type=int, default=128)
    parser.add_argument("--report-cache-entries", type=int, default=256)
    parser.add_argument("--job-workers", type=int, default=2,
                        help="concurrent async jobs per worker")
    parser.add_argument("--drain-seconds", type=float, default=10.0,
                        help="per-worker SIGTERM drain bound")
    parser.add_argument("--heartbeat-seconds", type=float, default=1.0,
                        help="supervisor probe interval")
    parser.add_argument("--no-respawn", action="store_true",
                        help="do not replace dead workers")
    parser.add_argument("--self-test", action="store_true",
                        help="boot a 2-worker fleet, assert round trips, exit")
    parser.add_argument("--chaos-smoke", action="store_true",
                        help="kill -9 a worker mid-stream, assert zero lost requests")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.chaos_smoke:
        return chaos_smoke()

    if args.workers < 1:
        parser.error("--workers must be at least 1")
    tier = SharedCacheTier(args.spill_dir)
    pool = WorkerPool(WorkerSpec(
        spill_dir=tier.directory,
        cache_entries=args.cache_entries,
        report_cache_entries=args.report_cache_entries,
        job_workers=args.job_workers,
        drain_seconds=args.drain_seconds,
    ))
    print(f"spawning {args.workers} worker pod(s)...", flush=True)
    workers = pool.spawn(args.workers)
    router = FleetRouter(
        workers,
        pool=pool,
        shared_cache=tier,
        replicas=args.replicas,
        respawn=not args.no_respawn,
        heartbeat_seconds=args.heartbeat_seconds,
    )
    server = serve_router(router, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    for worker in workers:
        print(f"  {worker.name} ready at {worker.url}", flush=True)
    print(
        f"fleet router listening on http://{host}:{port} "
        f"fronting {len(workers)} worker(s), shared cache at {tier.directory} "
        "(Ctrl-C to stop)",
        flush=True,
    )
    router.start_supervisor()

    stop_requested = threading.Event()

    def _on_sigterm(signum, frame):  # noqa: ARG001 - stdlib signature
        stop_requested.set()
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        pass  # not the main thread (embedded use): skip the handler

    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down fleet")
    finally:
        server.shutdown()
        # Drain-then-exit for the whole fleet: workers get SIGTERM and
        # persist their caches; the shared tier survives for the next boot
        # when --spill-dir was given (owned temp dirs are removed).
        router.shutdown()
        tier.cleanup()
    if stop_requested.is_set():
        print("fleet drained; exiting 0", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Consistent-hash ring with virtual nodes for the fleet router.

Each worker contributes ``replicas`` virtual points on a ring of sha256
positions; a key (in the fleet: the fingerprint of a request's database
pair) is owned by the first virtual point clockwise from the key's own
position.  Two properties matter for the fleet:

* **Stability under join/leave** -- adding or removing one worker moves only
  the keys that hashed into its arcs (~1/N of the keyspace), so the artifact
  caches of the surviving workers stay warm through membership churn.
* **Process-independent determinism** -- positions come from sha256, never
  from Python's per-process-salted ``hash()``, so the router, every worker
  and every test agree on ownership.

:meth:`HashRing.preference` yields the failover order: the owner first, then
each successive distinct node clockwise -- exactly the worker sequence the
router walks when one dies mid-request.
"""

from __future__ import annotations

import bisect
import hashlib
from collections import Counter
from typing import Iterable, Iterator


def ring_position(value: str) -> int:
    """A stable 64-bit ring position for any string (sha256-derived)."""
    digest = hashlib.sha256(value.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring mapping string keys to member nodes."""

    def __init__(self, nodes: Iterable[str] = (), *, replicas: int = 64):
        if replicas < 1:
            raise ValueError(f"replicas must be positive, got {replicas}")
        self.replicas = replicas
        self._nodes: set[str] = set()
        #: Sorted virtual-point positions and their owning node, kept aligned.
        self._points: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self.add(node)

    # -- membership -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def add(self, node: str) -> None:
        """Add a node (idempotent); moves ~1/N of the keyspace onto it."""
        if not node:
            raise ValueError("ring nodes must be non-empty names")
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.replicas):
            position = ring_position(f"{node}#{replica}")
            index = bisect.bisect_left(self._points, position)
            # sha256 collisions between distinct vnode labels are not a
            # practical concern, but keep insertion deterministic anyway:
            # ties resolve by node name.
            while (
                index < len(self._points)
                and self._points[index] == position
                and self._owners[index] < node
            ):
                index += 1
            self._points.insert(index, position)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        """Remove a node (idempotent); its arcs fall to their successors."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    # -- lookup ---------------------------------------------------------------------
    def node_for(self, key: str, *, exclude: frozenset[str] | set[str] = frozenset()) -> str:
        """The node owning ``key``, skipping any in ``exclude``.

        Raises :class:`LookupError` when no eligible node remains -- the
        router turns that into a 503 rather than routing into the void.
        """
        for node in self.preference(key):
            if node not in exclude:
                return node
        raise LookupError(f"no eligible node for key {key!r} (ring has {len(self)})")

    def preference(self, key: str, count: int | None = None) -> Iterator[str]:
        """Distinct nodes in failover order: the owner, then clockwise successors."""
        if not self._points:
            return
        limit = len(self._nodes) if count is None else min(count, len(self._nodes))
        start = bisect.bisect_right(self._points, ring_position(key))
        seen: set[str] = set()
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner in seen:
                continue
            seen.add(owner)
            yield owner
            if len(seen) >= limit:
                return

    # -- introspection ----------------------------------------------------------------
    def spread(self, keys: Iterable[str]) -> dict[str, int]:
        """How many of ``keys`` each node owns (balance diagnostics)."""
        counts: Counter[str] = Counter({node: 0 for node in self._nodes})
        for key in keys:
            counts[self.node_for(key)] += 1
        return dict(counts)

    def describe(self) -> dict:
        """JSON-safe ring summary for the router's /health payload."""
        return {
            "nodes": self.nodes(),
            "replicas": self.replicas,
            "virtual_points": len(self._points),
        }

"""The sharded multi-process service fleet: router, worker pods, shared cache.

``python -m repro.fleet --workers N`` starts N ``repro.service`` worker
daemons sharing one write-through spill directory (the cross-process cache
tier) behind a consistent-hash router that speaks the exact single-daemon
HTTP protocol -- :class:`~repro.service.api.ServiceClient` works unchanged.

Layers:

* :mod:`repro.fleet.ring` -- consistent hashing with virtual nodes (placement
  and failover order);
* :mod:`repro.fleet.worker` -- worker-pod lifecycle: spawn, readiness probe,
  heartbeat, SIGTERM drain-then-exit;
* :mod:`repro.fleet.router` -- idempotency-keyed routing with single-flight
  dedup, per-worker circuit breakers and dead-worker failover re-hash;
* :mod:`repro.fleet.shared_cache` -- observability over the shared spill tier.
"""

from repro.fleet.ring import HashRing, ring_position
from repro.fleet.router import (
    FleetRouter,
    NoWorkerAvailable,
    RouterHTTPServer,
    serve_router,
    serve_router_in_background,
)
from repro.fleet.shared_cache import (
    SHARED_TIERS,
    SharedCacheTier,
    aggregate_cache_stats,
)
from repro.fleet.worker import (
    StaticWorker,
    WorkerError,
    WorkerPool,
    WorkerProcess,
    WorkerSpec,
    WorkerUnavailable,
    http_json,
)

__all__ = [
    "HashRing",
    "ring_position",
    "FleetRouter",
    "NoWorkerAvailable",
    "RouterHTTPServer",
    "serve_router",
    "serve_router_in_background",
    "SHARED_TIERS",
    "SharedCacheTier",
    "aggregate_cache_stats",
    "StaticWorker",
    "WorkerError",
    "WorkerPool",
    "WorkerProcess",
    "WorkerSpec",
    "WorkerUnavailable",
    "http_json",
]

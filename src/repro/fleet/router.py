"""The fleet router: one front door, N worker pods, zero lost requests.

:class:`FleetRouter` speaks the exact JSON-over-HTTP protocol of the
single-process daemon (``repro.service.api``), so :class:`ServiceClient`
and every existing caller work unchanged against a fleet.  Behind the door:

* **Placement** -- requests route over a consistent-hash ring keyed by the
  fingerprint of their database pair (:mod:`repro.fleet.ring`), so all
  traffic for one dataset pair lands on one worker and its in-memory
  artifact caches stay hot.  Database registrations broadcast to *every*
  worker, which is what makes failover re-hash sound: any worker can serve
  any request, identically, because the pipeline is deterministic and the
  artifact keys are content fingerprints.
* **Idempotent request keys** -- every explain carries an idempotency key
  (fingerprint of the full request payload).  Concurrent identical requests
  coalesce onto one upstream call (single-flight), and a failover retry of
  the same request is safe by construction -- replaying a pure computation.
* **Failover** -- a transport-dead worker is removed from the ring and the
  request re-hashes onto the next worker in the key's preference order; the
  response is byte-identical because every worker computes the same answer.
* **Circuit breakers** -- per-worker, reusing
  :class:`~repro.reliability.breaker.BreakerRegistry`: a worker that keeps
  failing is skipped in preference order until its cool-down probe passes.
* **Supervision** -- an optional heartbeat thread probes workers, respawns
  dead pods (replaying database registrations onto the newcomer) and adds
  them back to the ring.
* **Live deltas** -- ``POST /ingest`` broadcasts a row-level delta batch to
  every live worker (single-flighted by delta id); all pods must agree on
  the post-delta fingerprint, and each pod's delta-aware invalidation drops
  write-through tombstones into the shared tier so siblings cannot resurrect
  artifacts of the previous database version.  Applied deltas are logged and
  replayed (after the base registration) onto respawned pods.
"""

from __future__ import annotations

import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.reliability.breaker import BreakerRegistry, CircuitOpenError
from repro.runs.errors import RunError
from repro.runs.spec import compile_runs_payload
from repro.service.api import error_payload
from repro.service.cache import fingerprint_of
from repro.service.metrics import LatencyRecorder, merge_endpoint_snapshots
from repro.fleet.ring import HashRing
from repro.fleet.shared_cache import SharedCacheTier, aggregate_cache_stats
from repro.fleet.worker import WorkerPool, WorkerUnavailable, http_json


class NoWorkerAvailable(RuntimeError):
    """Every eligible worker is dead or breaker-open for this request (503)."""


class _Flight:
    """One in-flight routed request that duplicates can latch onto."""

    __slots__ = ("done", "outcome", "error", "followers")

    def __init__(self):
        self.done = threading.Event()
        self.outcome: tuple[int, dict] | None = None
        self.error: BaseException | None = None
        self.followers = 0


class FleetRouter:
    """Routes service requests across worker pods; see the module docstring."""

    def __init__(
        self,
        workers,
        *,
        pool: WorkerPool | None = None,
        shared_cache: SharedCacheTier | None = None,
        replicas: int = 64,
        breaker_failures: int = 3,
        breaker_reset_seconds: float = 5.0,
        forward_timeout: float = 600.0,
        respawn: bool = False,
        heartbeat_seconds: float = 1.0,
    ):
        self._workers = {worker.name: worker for worker in workers}
        if not self._workers:
            raise ValueError("a fleet needs at least one worker")
        self.ring = HashRing(self._workers, replicas=replicas)
        self.pool = pool
        self.shared_cache = shared_cache
        self.forward_timeout = forward_timeout
        self.respawn = respawn
        self.heartbeat_seconds = heartbeat_seconds
        self.breakers = BreakerRegistry(
            failure_threshold=breaker_failures, reset_seconds=breaker_reset_seconds
        )
        self.metrics = LatencyRecorder()
        self._lock = threading.RLock()
        #: Replayed onto respawned/joining workers so any pod can serve
        #: any database.  Maps name -> the raw /databases payload.
        self._registrations: dict[str, dict] = {}
        #: Applied deltas per database, in order, replayed after the
        #: registration so a respawned pod converges on the live fingerprint.
        #: Cleared when a database is (re)registered from scratch.
        self._ingests: dict[str, list[dict]] = {}
        self._inflight: dict[str, _Flight] = {}
        self._counters = {
            "routed": 0, "failovers": 0, "coalesced": 0,
            "respawns": 0, "rejected": 0,
        }
        self._stop = threading.Event()
        self._supervisor: threading.Thread | None = None

    # -- request keys -----------------------------------------------------------------
    @staticmethod
    def placement_key(database_left: str, database_right: str) -> str:
        """The ring key of a database pair (order-sensitive, like the caches)."""
        return fingerprint_of(str(database_left), str(database_right))

    @staticmethod
    def request_key(payload: dict) -> str:
        """The idempotency key: a fingerprint of the full request payload."""
        return fingerprint_of(payload)

    # -- worker membership --------------------------------------------------------------
    def workers(self) -> dict:
        with self._lock:
            return dict(self._workers)

    def _mark_dead(self, name: str) -> None:
        """Drop a transport-dead worker from rotation; its arcs fail over."""
        with self._lock:
            worker = self._workers.get(name)
            if worker is not None and worker.state != "dead":
                worker.state = "dead"
            self.ring.remove(name)

    def _admit(self, worker) -> None:
        """Add a (re)spawned worker: replay registrations, then join the ring.

        Registrations -- and the deltas applied since each registration, in
        order -- replay *before* the ring add so the worker never receives a
        routed request for a database (or database version) it has not seen.
        """
        with self._lock:
            registrations = list(self._registrations.values())
            ingests = {name: list(deltas) for name, deltas in self._ingests.items()}
        for payload in registrations:
            http_json(
                "POST", f"{worker.url}/databases", payload,
                timeout=self.forward_timeout,
            )
        for deltas in ingests.values():
            for delta_payload in deltas:
                http_json(
                    "POST", f"{worker.url}/ingest", delta_payload,
                    timeout=self.forward_timeout,
                )
        with self._lock:
            self._workers[worker.name] = worker
            self.ring.add(worker.name)

    # -- supervision --------------------------------------------------------------------
    def start_supervisor(self) -> None:
        """Start the heartbeat/respawn loop (idempotent)."""
        if self._supervisor is not None:
            return
        self._supervisor = threading.Thread(
            target=self._supervise, name="fleet-supervisor", daemon=True
        )
        self._supervisor.start()

    def _supervise(self) -> None:
        while not self._stop.wait(self.heartbeat_seconds):
            try:
                self._heartbeat_once()
            except Exception:  # noqa: BLE001 - supervision must never die
                pass

    def _heartbeat_once(self) -> None:
        for name, worker in list(self.workers().items()):
            if worker.state == "dead":
                continue
            if worker.heartbeat() is None and worker.state == "dead":
                self._mark_dead(name)
        if self.respawn and self.pool is not None:
            for newcomer in self.pool.respawn_dead():
                try:
                    self._admit(newcomer)
                    with self._lock:
                        self._counters["respawns"] += 1
                except WorkerUnavailable:
                    newcomer.kill()

    def shutdown(self) -> None:
        self._stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
        if self.pool is not None:
            self.pool.stop()

    # -- forwarding --------------------------------------------------------------------
    def _forward(
        self, key: str, method: str, path: str, payload: dict | None
    ) -> tuple[int, dict, str]:
        """Forward to the key's preferred worker, failing over down the ring.

        Returns ``(status, body, worker_name)``.  Transport failures mark the
        worker dead and re-hash; HTTP responses -- including the worker's own
        typed errors -- are relayed as-is (the worker answered; its answer is
        the answer).  Breaker-open workers are skipped in preference order.
        """
        attempts = 0
        with self._lock:
            preference = list(self.ring.preference(key))
        for name in preference:
            worker = self._workers.get(name)
            if worker is None or worker.state == "dead" or worker.url is None:
                continue
            try:
                self.breakers.breaker(name).acquire()
            except CircuitOpenError:
                continue
            attempts += 1
            try:
                status, body = http_json(
                    method, f"{worker.url}{path}", payload,
                    timeout=self.forward_timeout,
                )
            except WorkerUnavailable:
                # The failover path: this worker is gone at the transport
                # level; requests re-hash onto the next node of the ring.
                self.breakers.record_failure(name)
                self._mark_dead(name)
                with self._lock:
                    self._counters["failovers"] += 1
                continue
            if status >= 500:
                self.breakers.record_failure(name)
            else:
                self.breakers.record_success(name)
            with self._lock:
                self._counters["routed"] += 1
            return status, body, name
        with self._lock:
            self._counters["rejected"] += 1
        raise NoWorkerAvailable(
            f"no live worker for this request after {attempts} attempt(s); "
            f"ring members: {self.ring.nodes()}"
        )

    def _single_flight(self, idempotency_key: str, call):
        """Coalesce concurrent identical requests onto one upstream execution."""
        with self._lock:
            flight = self._inflight.get(idempotency_key)
            if flight is None:
                flight = self._inflight[idempotency_key] = _Flight()
                leader = True
            else:
                flight.followers += 1
                self._counters["coalesced"] += 1
                leader = False
        if not leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.outcome
        try:
            flight.outcome = call()
            return flight.outcome
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                self._inflight.pop(idempotency_key, None)
            flight.done.set()

    # -- the routed API -----------------------------------------------------------------
    def register_database(self, payload: dict) -> tuple[int, dict]:
        """Broadcast a database registration to every live worker.

        Every worker must know every database for failover re-hash to be
        sound; the payload is also retained and replayed onto respawned
        pods.  All live workers must agree on the content fingerprint --
        a disagreement would mean divergent data and is a hard error.
        """
        name = str(payload.get("name", ""))
        responses: dict[str, dict] = {}
        status_out = 201
        for worker_name, worker in list(self.workers().items()):
            if worker.state == "dead" or worker.url is None:
                continue
            try:
                status, body = http_json(
                    "POST", f"{worker.url}/databases", payload,
                    timeout=self.forward_timeout,
                )
            except WorkerUnavailable:
                self._mark_dead(worker_name)
                continue
            if status >= 400:
                return status, body
            responses[worker_name] = body
        if not responses:
            raise NoWorkerAvailable("no live worker accepted the registration")
        fingerprints = {body.get("fingerprint") for body in responses.values()}
        if len(fingerprints) != 1:
            return 500, error_payload(
                "FleetConsistencyError",
                f"workers disagree on the fingerprint of {name!r}: {fingerprints}",
            )
        with self._lock:
            self._registrations[name] = payload
            # A (re)registration defines the database from scratch; earlier
            # deltas are folded into history and must not replay on top.
            self._ingests.pop(name, None)
        body = next(iter(responses.values()))
        body["workers"] = sorted(responses)
        return status_out, body

    def ingest(self, payload: dict) -> tuple[int, dict]:
        """Broadcast one delta batch to every live worker, coherently.

        Deltas, like registrations, go to *every* pod: failover re-hash is
        only sound if all workers hold the same database version.  The
        delta id (client-supplied or derived by the API layer) keys the
        single-flight latch, so a concurrent duplicate submission rides the
        in-flight broadcast instead of racing it; a later retry is absorbed
        by each worker's idempotent delta log.  All live workers must agree
        on the post-delta content fingerprint -- the shared disk tier's
        tombstones are content-addressed, so divergence would corrupt the
        fleet's cache coherence and is a hard error.
        """
        delta_id = str(payload.get("delta_id") or self.request_key(payload))
        return self._single_flight(
            f"ingest:{delta_id}", lambda: self._broadcast_ingest(payload)
        )

    def _broadcast_ingest(self, payload: dict) -> tuple[int, dict]:
        database = str(payload.get("database", ""))
        responses: dict[str, dict] = {}
        for worker_name, worker in list(self.workers().items()):
            if worker.state == "dead" or worker.url is None:
                continue
            try:
                status, body = http_json(
                    "POST", f"{worker.url}/ingest", payload,
                    timeout=self.forward_timeout,
                )
            except WorkerUnavailable:
                self._mark_dead(worker_name)
                continue
            if status >= 400:
                return status, body
            responses[worker_name] = body
        if not responses:
            raise NoWorkerAvailable("no live worker accepted the delta")
        fingerprints = {body.get("fingerprint") for body in responses.values()}
        if len(fingerprints) != 1:
            return 500, error_payload(
                "FleetConsistencyError",
                f"workers disagree on the post-delta fingerprint of "
                f"{database!r}: {fingerprints}",
            )
        with self._lock:
            self._ingests.setdefault(database, []).append(payload)
        body = next(iter(responses.values()))
        body["workers"] = sorted(responses)
        return 200, body

    def explain(self, payload: dict) -> tuple[int, dict]:
        """Route one explain: single-flight, placement by database pair, failover.

        A ``{"runs": ...}`` payload (the run-diff workload) is compiled at
        the router: the run pair's registrations -- records plus pinned
        dtypes -- broadcast to every worker exactly like any other database
        (and replay onto respawned pods), then the rewritten declarative
        payload routes normally.  Re-submitting the same runs lands on the
        same fingerprints, so placement stays sticky and the owning worker's
        report cache stays warm.
        """
        if isinstance(payload, dict) and "runs" in payload:
            compiled = compile_runs_payload(payload)
            for registration in compiled.registrations:
                status, body = self.register_database(registration)
                if status >= 400:
                    return status, body
            payload = compiled.explain_payload
        key = self.placement_key(
            payload.get("database_left", ""), payload.get("database_right", "")
        )
        idempotency_key = self.request_key(payload)

        def _call():
            status, body, worker = self._forward(key, "POST", "/explain", payload)
            if isinstance(body, dict) and status == 200:
                body.setdefault("fleet", {})
                body["fleet"].update(
                    {"worker": worker, "idempotency_key": idempotency_key}
                )
            return status, body

        return self._single_flight(idempotency_key, _call)

    def plan(self, payload: dict) -> tuple[int, dict]:
        key = self.placement_key(payload.get("database", ""), payload.get("database", ""))
        status, body, _ = self._forward(key, "POST", "/plan", payload)
        return status, body

    def analyze(self, payload: dict) -> tuple[int, dict]:
        key = self.placement_key(payload.get("database", ""), payload.get("database", ""))
        status, body, _ = self._forward(key, "POST", "/analyze", payload)
        return status, body

    # -- async jobs ---------------------------------------------------------------------
    #: Job references returned by the router are ``<worker>:<job-id>`` so
    #: status polls and cancels route back to the pod that owns the job.
    def submit_job(self, payload: dict) -> tuple[int, dict]:
        key = self.placement_key(
            payload.get("database_left", ""), payload.get("database_right", "")
        )
        status, body, worker = self._forward(key, "POST", "/jobs", payload)
        if status < 400 and isinstance(body, dict) and "id" in body:
            body["id"] = f"{worker}:{body['id']}"
        return status, body

    def _job_ref(self, ref: str) -> tuple[str, str] | None:
        worker, _, job_id = ref.partition(":")
        if not job_id or worker not in self._workers:
            return None
        return worker, job_id

    def _job_call(self, method: str, ref: str) -> tuple[int, dict]:
        parsed = self._job_ref(ref)
        if parsed is None:
            return 404, error_payload("UnknownJobError", f"unknown job {ref}")
        worker_name, job_id = parsed
        worker = self._workers[worker_name]
        if worker.state == "dead" or worker.url is None:
            # The owning pod died; its in-memory job state died with it.
            # Clients re-submit: the idempotency key dedupes on the new pod.
            return 404, error_payload(
                "JobLostError",
                f"worker {worker_name} holding job {job_id} is gone; "
                "re-submit the request (idempotency keys make this safe)",
            )
        try:
            status, body = http_json(
                method, f"{worker.url}/jobs/{job_id}", timeout=self.forward_timeout
            )
        except WorkerUnavailable:
            self._mark_dead(worker_name)
            return 404, error_payload(
                "JobLostError",
                f"worker {worker_name} holding job {job_id} is gone; "
                "re-submit the request (idempotency keys make this safe)",
            )
        if isinstance(body, dict) and "id" in body:
            body["id"] = f"{worker_name}:{body['id']}"
        return status, body

    def job_status(self, ref: str) -> tuple[int, dict]:
        return self._job_call("GET", ref)

    def cancel_job(self, ref: str) -> tuple[int, dict]:
        return self._job_call("DELETE", ref)

    # -- introspection ------------------------------------------------------------------
    def health(self) -> dict:
        """The fleet-level /health: workers, ring, shared tier, load metrics."""
        workers_payload: dict[str, dict] = {}
        worker_health: list[dict] = []
        for name, worker in self.workers().items():
            entry = worker.describe() if hasattr(worker, "describe") else {
                "name": name, "url": worker.url, "state": worker.state,
            }
            if worker.state != "dead":
                health = worker.probe() if hasattr(worker, "probe") else None
                if health is not None:
                    worker_health.append(health)
                    entry["health"] = {
                        key: health.get(key)
                        for key in ("status", "requests_served", "degradations")
                    }
            workers_payload[name] = entry
        live = [w for w in self.workers().values() if w.state != "dead"]
        with self._lock:
            counters = dict(self._counters)
            registered = sorted(self._registrations)
            inflight = len(self._inflight)
        payload = {
            "status": "ok" if len(live) == len(self._workers) else "degraded",
            "workers": workers_payload,
            "live_workers": len(live),
            "ring": self.ring.describe(),
            "registered_databases": registered,
            "router": {**counters, "inflight": inflight},
            "breakers": self.breakers.states(),
            "endpoints": self.metrics.snapshot(),
            "worker_endpoints": merge_endpoint_snapshots(
                [health.get("endpoints", {}) for health in worker_health]
            ),
        }
        if self.shared_cache is not None:
            payload["shared_cache"] = self.shared_cache.describe()
        return payload

    def stats(self) -> dict:
        """Aggregated fleet stats, including the per-tier shared-cache view."""
        per_worker: dict[str, dict] = {}
        cache_blocks: list[dict] = []
        for name, worker in self.workers().items():
            if worker.state == "dead" or worker.url is None:
                per_worker[name] = {"state": "dead"}
                continue
            try:
                status, body = http_json(
                    "GET", f"{worker.url}/stats", timeout=self.forward_timeout
                )
            except WorkerUnavailable:
                self._mark_dead(name)
                per_worker[name] = {"state": "dead"}
                continue
            if status == 200:
                per_worker[name] = body
                service = body.get("service", {})
                if "caches" in service:
                    cache_blocks.append(service["caches"])
        with self._lock:
            counters = dict(self._counters)
        payload = {
            "router": counters,
            "workers": per_worker,
            "shared_cache": aggregate_cache_stats(cache_blocks),
        }
        if self.shared_cache is not None:
            payload["shared_cache"]["disk"] = self.shared_cache.describe()
        return payload


# ---------------------------------------------------------------------------
# The router's HTTP front door
# ---------------------------------------------------------------------------

class RouterHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the router (mirrors the worker protocol)."""

    daemon_threads = True

    def __init__(self, address, router: FleetRouter):
        super().__init__(address, _RouterRequestHandler)
        self.router = router


class _RouterRequestHandler(BaseHTTPRequestHandler):
    server: RouterHTTPServer  # narrowed for type checkers

    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _send_json(self, payload: dict, status: int = 200) -> None:
        import json

        body = json.dumps(payload).encode()
        self._last_status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        import json

        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b""
        try:
            return json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid JSON body: {exc}") from exc

    def _endpoint(self, method: str) -> str:
        path = self.path
        if path.startswith("/jobs/"):
            path = "/jobs/{id}"
        elif path not in ("/health", "/stats", "/databases", "/explain",
                          "/plan", "/analyze", "/jobs", "/ingest"):
            path = "{unknown}"
        return f"{method} {path}"

    def _serve(self, method: str) -> None:
        self._last_status = 200
        start = time.perf_counter()
        try:
            self._route(method)
        except NoWorkerAvailable as exc:
            self._send_json(error_payload("NoWorkerAvailable", str(exc)), status=503)
        except ValueError as exc:
            kind = type(exc).__name__ if isinstance(exc, RunError) else "SpecError"
            self._send_json(
                error_payload(kind, str(exc), getattr(exc, "path", "")), status=400
            )
        except Exception as exc:  # noqa: BLE001 - surface as JSON, never a bare 500
            self._send_json(error_payload(type(exc).__name__, str(exc)), status=500)
        finally:
            self.server.router.metrics.observe(
                self._endpoint(method),
                time.perf_counter() - start,
                error=self._last_status >= 400,
            )

    def _route(self, method: str) -> None:
        router = self.server.router
        if method == "GET":
            if self.path == "/health":
                self._send_json(router.health())
            elif self.path == "/stats":
                self._send_json(router.stats())
            elif self.path.startswith("/jobs/"):
                status, body = router.job_status(self.path.removeprefix("/jobs/"))
                self._send_json(body, status=status)
            else:
                self._send_json(
                    error_payload("NotFound", f"unknown path {self.path}"), status=404
                )
        elif method == "POST":
            routes = {
                "/databases": router.register_database,
                "/explain": router.explain,
                "/plan": router.plan,
                "/analyze": router.analyze,
                "/ingest": router.ingest,
                "/jobs": router.submit_job,
            }
            handler = routes.get(self.path)
            if handler is None:
                self._send_json(
                    error_payload("NotFound", f"unknown path {self.path}"), status=404
                )
                return
            status, body = handler(self._read_json())
            self._send_json(body, status=status)
        elif method == "DELETE":
            if self.path.startswith("/jobs/"):
                status, body = router.cancel_job(self.path.removeprefix("/jobs/"))
                self._send_json(body, status=status)
            else:
                self._send_json(
                    error_payload("NotFound", f"unknown path {self.path}"), status=404
                )

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._serve("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._serve("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._serve("DELETE")


def serve_router(
    router: FleetRouter, *, host: str = "127.0.0.1", port: int = 8320
) -> RouterHTTPServer:
    """Create (but do not start) the router's HTTP server."""
    return RouterHTTPServer((host, port), router)


def serve_router_in_background(
    router: FleetRouter, *, host: str = "127.0.0.1", port: int = 0
) -> tuple[RouterHTTPServer, threading.Thread]:
    """Start the router daemon on a background thread (port 0 = ephemeral)."""
    server = serve_router(router, host=host, port=port)
    thread = threading.Thread(
        target=server.serve_forever, name="fleet-router", daemon=True
    )
    thread.start()
    return server, thread

"""The fleet's shared artifact-cache tier over one content-addressed spill dir.

There is deliberately no cache *server* in the fleet: the shared tier **is**
the PR-2/PR-6 disk spill, pointed at one directory by every worker and
flipped to write-through (``--spill-write-through``), so an artifact computed
by worker 1 is a warm disk hit on worker 2.  Correctness needs no lock
manager, because the spill was built content-addressed and crash-safe:

* keys are fingerprints of the inputs, so two workers writing one key are
  writing byte-identical payloads -- the atomic ``os.replace`` makes either
  writer a correct winner and readers never observe a torn file;
* every file carries the checksummed envelope, so a reader racing a writer
  on a non-atomic filesystem quarantines and recomputes instead of serving
  garbage.

This module is the tier's *control plane*: :class:`SharedCacheTier` inspects
the directory (per-cache file counts, bytes, quarantines) for the router's
``/health``, and :func:`aggregate_cache_stats` folds per-worker cache
counters into per-tier totals -- memory hits vs. shared-disk hits vs. misses
-- so cross-worker reuse is observable, not just hoped for.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

#: The artifact caches that participate in the shared tier (the service's
#: spillable caches; ``plans`` opts out -- it holds live database references).
SHARED_TIERS = ("provenance", "stats", "features", "candidates", "problem", "report")


class SharedCacheTier:
    """One shared spill directory serving every worker of a fleet."""

    def __init__(self, directory: str | Path | None = None):
        if directory is None:
            self._owned = tempfile.TemporaryDirectory(prefix="repro-fleet-cache-")
            directory = self._owned.name
        else:
            self._owned = None
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def cleanup(self) -> None:
        """Remove the directory iff this tier created it (owned temp dirs)."""
        if self._owned is not None:
            self._owned.cleanup()

    def describe(self) -> dict:
        """JSON-safe on-disk snapshot: per-tier artifact counts and bytes."""
        tiers: dict[str, dict] = {}
        corrupt = 0
        orphaned_tmp = 0
        tombstones = 0
        for path in self.directory.iterdir():
            name = path.name
            if name.endswith(".corrupt"):
                corrupt += 1
                continue
            if name.endswith(".tmp"):
                orphaned_tmp += 1
                continue
            if name.endswith(".tomb"):
                tombstones += 1
                continue
            if not name.endswith(".pkl"):
                continue
            tier = name.split("-", 1)[0]
            slot = tiers.setdefault(tier, {"artifacts": 0, "bytes": 0})
            slot["artifacts"] += 1
            slot["bytes"] += path.stat().st_size
        return {
            "directory": str(self.directory),
            "tiers": tiers,
            "artifacts": sum(slot["artifacts"] for slot in tiers.values()),
            "bytes": sum(slot["bytes"] for slot in tiers.values()),
            "quarantined": corrupt,
            "orphaned_tmp": orphaned_tmp,
            "tombstones": tombstones,
        }


def aggregate_cache_stats(worker_cache_stats: list[dict]) -> dict:
    """Fold per-worker ``caches`` stats into per-tier fleet totals.

    Input: each worker's ``stats()["caches"]`` mapping (cache name ->
    counter dict).  Output distinguishes the three levels of the hierarchy:
    ``memory_hits`` (own LRU), ``shared_disk_hits`` (``spill_loads`` -- an
    artifact found in the shared tier, possibly computed by a sibling) and
    ``misses`` (computed from scratch).  Note the service counts a spill
    load as a hit *and* a spill load, so memory hits are reported net.
    """
    tiers: dict[str, dict] = {}
    for caches in worker_cache_stats:
        for name, stats in caches.items():
            slot = tiers.setdefault(
                name,
                {
                    "memory_hits": 0,
                    "shared_disk_hits": 0,
                    "misses": 0,
                    "spill_writes": 0,
                    "spill_errors": 0,
                },
            )
            spill_loads = stats.get("spill_loads", 0)
            slot["memory_hits"] += stats.get("hits", 0) - spill_loads
            slot["shared_disk_hits"] += spill_loads
            slot["misses"] += stats.get("misses", 0)
            slot["spill_writes"] += stats.get("spill_writes", 0)
            slot["spill_errors"] += stats.get("spill_errors", 0)
    totals = {
        key: sum(slot[key] for slot in tiers.values())
        for key in (
            "memory_hits", "shared_disk_hits", "misses",
            "spill_writes", "spill_errors",
        )
    }
    return {"tiers": tiers, "total": totals}

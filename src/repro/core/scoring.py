"""The probabilistic scoring model of Section 3.1 (Equations 1-6).

The objective of the EXP-3D problem is ``Pr(E | T1, T2, M_tuple)``, which the
paper decomposes (up to a constant factor) into

``Pr(T1, T2 | E) * Pr(M_tuple | T1, T2, E) * Pr(E)``

with tuple-independence and match-independence assumptions.  This module
provides:

* :class:`Priors` -- the a-priori probabilities ``alpha`` (a tuple is covered
  by both queries) and ``beta`` (a tuple's impact is correct), and the derived
  log-space constants of Equation (8);
* :class:`ExplanationScorer` -- evaluation of ``log Pr(E | T1, T2, M_tuple)``
  for an arbitrary candidate explanation set (used by the GREEDY baseline and
  by tests that cross-check the MILP optimum);
* :func:`derive_explanations_from_mapping` -- the deterministic construction
  of explanations implied by a chosen evidence mapping, used by the record
  linkage baselines (RSWOOSH, THRESHOLD, GREEDY).

Note on Equation (8): the paper's text assigns ``b = log(alpha) + log(beta)``
to the ``y = 0`` branch and ``c = log(alpha) + log(1 - beta)`` to ``y = 1``,
which contradicts its own Equation (3) (``y = 1`` means the impact is
unchanged).  We implement the semantically consistent version: an unchanged
impact scores ``log(alpha) + log(beta)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Sequence

from repro.core.canonical import CanonicalRelation
from repro.core.explanations import ExplanationSet, ProvenanceExplanation, ValueExplanation
from repro.graphs.bipartite import Side
from repro.matching.attribute_match import SemanticRelation
from repro.matching.tuple_matching import TupleMapping, TupleMatch

_PROB_FLOOR = 1e-3


def _clamp(probability: float) -> float:
    return min(max(probability, _PROB_FLOOR), 1.0 - _PROB_FLOOR)


@dataclass(frozen=True)
class Priors:
    """The prior probabilities ``alpha`` and ``beta`` (Section 3.1).

    Both lie in ``(0.5, 1]``: a tuple is more likely to be covered by both
    queries, and to have a correct impact, than not.  The paper does not state
    the values it uses; the defaults here (high ``alpha``, moderate ``beta``)
    encode that a tuple missing from one dataset is rarer than a reported value
    being off, which matches all three dataset families of the evaluation.
    """

    alpha: float = 0.95
    beta: float = 0.6

    def __post_init__(self):
        if not 0.5 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0.5, 1], got {self.alpha}")
        if not 0.5 < self.beta <= 1.0:
            raise ValueError(f"beta must be in (0.5, 1], got {self.beta}")
        # The log-space constants are consumed once per canonical tuple in the
        # scoring and MILP hot loops; compute them once at construction (the
        # dataclass is frozen, so alpha/beta can never change afterwards).
        object.__setattr__(self, "_removed", math.log(_clamp(1.0 - self.alpha)))
        object.__setattr__(
            self, "_kept_unchanged", math.log(_clamp(self.alpha)) + math.log(_clamp(self.beta))
        )
        object.__setattr__(
            self, "_kept_changed", math.log(_clamp(self.alpha)) + math.log(_clamp(1.0 - self.beta))
        )

    # -- the log-space constants of Equation (8) -----------------------------------
    @property
    def removed(self) -> float:
        """``a = log(1 - alpha)``: tuple is a provenance-based explanation."""
        return self._removed

    @property
    def kept_unchanged(self) -> float:
        """``log(alpha) + log(beta)``: tuple kept with its original impact."""
        return self._kept_unchanged

    @property
    def kept_changed(self) -> float:
        """``log(alpha) + log(1 - beta)``: tuple kept, impact corrected (value explanation)."""
        return self._kept_changed


@dataclass(frozen=True)
class MatchLogProbability:
    """Log-probability terms of one tuple match (Equation 9)."""

    selected: float
    rejected: float

    @classmethod
    def of(cls, probability: float) -> "MatchLogProbability":
        return _match_log_terms(probability)


@lru_cache(maxsize=1 << 16)
def _match_log_terms(probability: float) -> MatchLogProbability:
    """Memoized construction: match probabilities repeat heavily (calibration
    buckets them), and ``of`` is called per match in scoring, MILP building and
    partition merging."""
    probability = _clamp(probability)
    return MatchLogProbability(math.log(probability), math.log(1.0 - probability))


class ExplanationScorer:
    """Computes ``log Pr(E | T1, T2, M_tuple)`` for a candidate explanation set."""

    def __init__(
        self,
        canonical_left: CanonicalRelation,
        canonical_right: CanonicalRelation,
        initial_mapping: TupleMapping,
        priors: Priors = Priors(),
    ):
        self.canonical_left = canonical_left
        self.canonical_right = canonical_right
        self.initial_mapping = initial_mapping
        self.priors = priors

    # -- individual terms -----------------------------------------------------------
    def tuple_log_probability(
        self, *, removed: bool, impact_changed: bool
    ) -> float:
        """Equation (3) in log space; a removed tuple cannot also change impact."""
        if removed and impact_changed:
            return -math.inf
        if removed:
            return self.priors.removed
        if impact_changed:
            return self.priors.kept_changed
        return self.priors.kept_unchanged

    def match_log_probability(self, match: TupleMatch, *, selected: bool) -> float:
        terms = MatchLogProbability.of(match.probability)
        return terms.selected if selected else terms.rejected

    # -- whole explanation sets -------------------------------------------------------
    def score(self, explanations: ExplanationSet) -> float:
        """``log Pr(E | T1, T2, M_tuple)`` up to the constant dropped in Eq. (6)."""
        removed = explanations.provenance_identities()
        changed = explanations.value_identities()
        selected_pairs = explanations.evidence_pairs()

        total = 0.0
        for relation in (self.canonical_left, self.canonical_right):
            for canonical_tuple in relation:
                identity = (canonical_tuple.side.value, canonical_tuple.key)
                total += self.tuple_log_probability(
                    removed=identity in removed,
                    impact_changed=identity in changed,
                )
        for match in self.initial_mapping:
            total += self.match_log_probability(match, selected=match.pair in selected_pairs)
        return total

    def score_mapping(self, mapping: TupleMapping, relation: SemanticRelation) -> float:
        """Score of the explanation set *implied* by an evidence mapping."""
        explanations = derive_explanations_from_mapping(
            self.canonical_left, self.canonical_right, mapping, relation
        )
        return self.score(explanations)


def mapping_is_valid(
    mapping: TupleMapping | Iterable[TupleMatch], relation: SemanticRelation
) -> bool:
    """Definition 3.2: check the cardinality restrictions of a mapping."""
    left_degree: dict[str, int] = {}
    right_degree: dict[str, int] = {}
    for match in mapping:
        left_degree[match.left_key] = left_degree.get(match.left_key, 0) + 1
        right_degree[match.right_key] = right_degree.get(match.right_key, 0) + 1
    if relation.left_degree_limited and any(v > 1 for v in left_degree.values()):
        return False
    if relation.right_degree_limited and any(v > 1 for v in right_degree.values()):
        return False
    return True


def impact_equality_holds(
    canonical_left: CanonicalRelation,
    canonical_right: CanonicalRelation,
    explanations: ExplanationSet,
    *,
    tolerance: float = 1e-6,
) -> bool:
    """Definition 3.3: per-component impact equality of the refined relations."""
    removed = explanations.provenance_identities()
    new_impacts = {
        (e.side.value, e.key): e.new_impact for e in explanations.value
    }

    def refined_impact(canonical_tuple) -> float | None:
        identity = (canonical_tuple.side.value, canonical_tuple.key)
        if identity in removed:
            return None
        return new_impacts.get(identity, canonical_tuple.impact)

    # Build components over the *evidence* mapping.
    parent: dict[tuple[str, str], tuple[str, str]] = {}

    def find(node):
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(a, b):
        parent.setdefault(a, a)
        parent.setdefault(b, b)
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for canonical_tuple in list(canonical_left) + list(canonical_right):
        node = (canonical_tuple.side.value, canonical_tuple.key)
        parent.setdefault(node, node)
    for match in explanations.evidence:
        union((Side.LEFT.value, match.left_key), (Side.RIGHT.value, match.right_key))

    sums: dict[tuple[str, str], dict[str, float]] = {}
    for relation in (canonical_left, canonical_right):
        for canonical_tuple in relation:
            impact = refined_impact(canonical_tuple)
            if impact is None:
                continue
            root = find((canonical_tuple.side.value, canonical_tuple.key))
            bucket = sums.setdefault(root, {"L": 0.0, "R": 0.0})
            bucket[canonical_tuple.side.value] += impact

    return all(abs(bucket["L"] - bucket["R"]) <= tolerance for bucket in sums.values())


def is_complete(
    canonical_left: CanonicalRelation,
    canonical_right: CanonicalRelation,
    explanations: ExplanationSet,
    relation: SemanticRelation,
) -> bool:
    """Definition 3.4: valid evidence mapping + impact equality."""
    return mapping_is_valid(explanations.evidence, relation) and impact_equality_holds(
        canonical_left, canonical_right, explanations
    )


def derive_explanations_from_mapping(
    canonical_left: CanonicalRelation,
    canonical_right: CanonicalRelation,
    mapping: TupleMapping,
    relation: SemanticRelation,
    *,
    tolerance: float = 1e-9,
) -> ExplanationSet:
    """Explanations implied by a fixed evidence mapping.

    This is the construction the record-linkage baselines use (Section 5.1.3):
    tuples without a selected match become provenance-based explanations;
    within each matched component whose impacts disagree, the anchor tuple
    (the side allowed degree > 1, or the right side under equivalence) gets a
    value-based explanation correcting its impact to the other side's total.
    """
    matched_left: dict[str, list[TupleMatch]] = {}
    matched_right: dict[str, list[TupleMatch]] = {}
    for match in mapping:
        matched_left.setdefault(match.left_key, []).append(match)
        matched_right.setdefault(match.right_key, []).append(match)

    provenance: list[ProvenanceExplanation] = []
    for canonical_tuple in canonical_left:
        if canonical_tuple.key not in matched_left:
            provenance.append(ProvenanceExplanation(Side.LEFT, canonical_tuple.key))
    for canonical_tuple in canonical_right:
        if canonical_tuple.key not in matched_right:
            provenance.append(ProvenanceExplanation(Side.RIGHT, canonical_tuple.key))

    value: list[ValueExplanation] = []
    if relation.right_degree_limited and not relation.left_degree_limited:
        # One-to-many (left more general): components are anchored on left tuples.
        anchor_side, anchor_relation, other_relation = Side.LEFT, canonical_left, canonical_right
        anchored = matched_left
        other_key = "right_key"
    else:
        # Many-to-one or equivalence: components anchored on right tuples.
        anchor_side, anchor_relation, other_relation = Side.RIGHT, canonical_right, canonical_left
        anchored = matched_right
        other_key = "left_key"

    for anchor, matches in anchored.items():
        anchor_tuple = anchor_relation.get(anchor)
        if anchor_tuple is None:
            continue
        other_total = 0.0
        for match in matches:
            other = other_relation.get(getattr(match, other_key))
            if other is not None:
                other_total += other.impact
        if abs(other_total - anchor_tuple.impact) > tolerance:
            value.append(
                ValueExplanation(anchor_side, anchor, anchor_tuple.impact, other_total)
            )

    return ExplanationSet(provenance=provenance, value=value, evidence=TupleMapping(mapping))

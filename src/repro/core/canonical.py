"""Stage 1: canonicalization (Definition 3.1).

Canonicalization groups provenance tuples that share the same values on the
matched attributes and sums their impacts:

``T = pi_{A, I}(A G SUM(I) (P))``

Queries with AVG/MAX/MIN aggregation require a strict one-to-one mapping, so
their provenance relations are left un-grouped (each provenance tuple becomes
its own canonical tuple).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.graphs.bipartite import Side
from repro.matching.attribute_match import AttributeMatching
from repro.relational.provenance import ProvenanceRelation, ProvenanceTuple
from repro.relational.query import AggregateFunction


@dataclass(frozen=True)
class CanonicalTuple:
    """A canonical tuple: group-by values on the matched attributes plus total impact.

    ``members`` lists the keys of the provenance tuples collapsed into this
    canonical tuple; Stage 3 uses them to recover full attribute values for
    summarization.
    """

    key: str
    side: Side
    values: dict
    impact: float
    members: tuple[str, ...] = ()

    def value(self, attribute: str):
        return self.values.get(attribute)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CanonicalTuple({self.key}, I={self.impact:g}, {self.values})"


class CanonicalRelation:
    """The canonical relation ``T`` of a query (Definition 3.1)."""

    def __init__(
        self,
        side: Side,
        attributes: Sequence[str],
        tuples: Sequence[CanonicalTuple],
        *,
        label: str = "T",
        provenance: ProvenanceRelation | None = None,
    ):
        self.side = side
        self.attributes = tuple(attributes)
        self.tuples = list(tuples)
        self.label = label
        self.provenance = provenance
        self._by_key = {t.key: t for t in self.tuples}

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[CanonicalTuple]:
        return iter(self.tuples)

    def __getitem__(self, key: str) -> CanonicalTuple:
        return self._by_key[key]

    def __contains__(self, key: str) -> bool:
        return key in self._by_key

    def keys(self) -> list[str]:
        return [t.key for t in self.tuples]

    def get(self, key: str) -> CanonicalTuple | None:
        return self._by_key.get(key)

    def total_impact(self) -> float:
        return sum(t.impact for t in self.tuples)

    def impacts(self) -> dict[str, float]:
        return {t.key: t.impact for t in self.tuples}

    def provenance_members(self, key: str) -> list[ProvenanceTuple]:
        """The provenance tuples collapsed into canonical tuple ``key``."""
        if self.provenance is None:
            return []
        by_key = self.provenance.by_key()
        return [by_key[member] for member in self._by_key[key].members if member in by_key]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CanonicalRelation({self.label}, {self.side.value}, {len(self.tuples)} tuples, "
            f"total impact {self.total_impact():g})"
        )


def _matching_attributes(attribute_matches: AttributeMatching, side: Side) -> tuple[str, ...]:
    if side is Side.LEFT:
        return attribute_matches.left_attributes()
    return attribute_matches.right_attributes()


def canonicalize(
    provenance: ProvenanceRelation,
    attribute_matches: AttributeMatching,
    side: Side,
    *,
    label: str | None = None,
) -> CanonicalRelation:
    """Derive the canonical relation of a provenance relation.

    Tuples are grouped by the side's matching attributes and their impacts are
    summed.  Queries whose aggregate requires a one-to-one mapping
    (AVG/MAX/MIN) skip the grouping, per Section 3.1.
    """
    label = label or ("T1" if side is Side.LEFT else "T2")
    group_attributes = _matching_attributes(attribute_matches, side)
    if not group_attributes:
        raise ValueError(
            "cannot canonicalize: the attribute matching has no attributes on side "
            f"{side.value} (queries are not comparable)"
        )
    missing = [name for name in group_attributes if name not in provenance.attributes]
    if missing:
        raise ValueError(
            f"matching attributes {missing} are not attributes of provenance relation "
            f"{provenance.label} (has {list(provenance.attributes)})"
        )

    function = provenance.query.aggregate_function
    one_to_one = function is not None and function.requires_one_to_one

    tuples: list[CanonicalTuple] = []
    if one_to_one:
        for index, prov_tuple in enumerate(provenance):
            values = {name: prov_tuple.value(name) for name in group_attributes}
            tuples.append(
                CanonicalTuple(
                    key=f"{label}:{index}",
                    side=side,
                    values=values,
                    impact=prov_tuple.impact,
                    members=(prov_tuple.key,),
                )
            )
        return CanonicalRelation(side, group_attributes, tuples, label=label, provenance=provenance)

    groups: dict[tuple, list[ProvenanceTuple]] = {}
    order: list[tuple] = []
    for prov_tuple in provenance:
        group_key = tuple(prov_tuple.value(name) for name in group_attributes)
        if group_key not in groups:
            groups[group_key] = []
            order.append(group_key)
        groups[group_key].append(prov_tuple)

    for index, group_key in enumerate(order):
        members = groups[group_key]
        values = dict(zip(group_attributes, group_key))
        impact = sum(member.impact for member in members)
        tuples.append(
            CanonicalTuple(
                key=f"{label}:{index}",
                side=side,
                values=values,
                impact=impact,
                members=tuple(member.key for member in members),
            )
        )
    return CanonicalRelation(side, group_attributes, tuples, label=label, provenance=provenance)

"""The Explain3D facade: the user-facing entry point of the reproduction.

Typical usage::

    from repro import Explain3D, matching

    engine = Explain3D()
    report = engine.explain(
        query_left, db_left, query_right, db_right,
        attribute_matches=matching(("Program", "Major")),
    )
    print(report.describe())

The facade runs the three stages of the paper end to end: Stage 1 (provenance,
canonicalization, initial mapping), Stage 2 (partitioned MILP refinement) and
Stage 3 (pattern summarization).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.explanations import ExplanationSet
from repro.core.partitioning import PartitionedSolver, SolveConfig, SolveStats
from repro.core.problem import ExplainProblem, build_problem
from repro.core.scoring import Priors
from repro.core.summarize import ExplanationSummary, PatternSummarizer
from repro.graphs.weighting import WeightingParams
from repro.matching.attribute_match import AttributeMatching
from repro.matching.tuple_matching import TupleMapping
from repro.relational.executor import Database
from repro.relational.query import Query
from repro.solver.backends import MILPSolver


@dataclass
class Explain3DConfig:
    """End-to-end configuration of the Explain3D pipeline."""

    priors: Priors = field(default_factory=Priors)
    partitioning: str = "smart"
    batch_size: int = 1000
    weighting: WeightingParams = field(default_factory=WeightingParams)
    use_prepartitioning: bool = True
    num_buckets: int = 50
    min_similarity: float = 0.0
    min_match_probability: float = 0.0
    summarize: bool = True
    min_summary_precision: float = 0.75
    solver: Optional[MILPSolver] = None
    workers: Optional[int] = None   # None resolves to os.cpu_count(); 1 is sequential
    executor: str = "thread"

    def solve_config(self) -> SolveConfig:
        return SolveConfig(
            partitioning=self.partitioning,  # type: ignore[arg-type]
            batch_size=self.batch_size,
            weighting=self.weighting,
            use_prepartitioning=self.use_prepartitioning,
            solver=self.solver,
            workers=self.workers,
            executor=self.executor,  # type: ignore[arg-type]
        )


@dataclass
class ExplanationReport:
    """The full output of one Explain3D run."""

    problem: ExplainProblem
    explanations: ExplanationSet
    summary: ExplanationSummary
    stats: SolveStats
    timings: dict

    @property
    def evidence(self) -> TupleMapping:
        return self.explanations.evidence

    def describe(self, *, max_items: int = 10) -> str:
        """Human-readable report used by the examples."""
        lines = []
        if self.problem.result_left is not None and self.problem.result_right is not None:
            lines.append(
                f"Query results disagree: {self.problem.query_left.name} = "
                f"{self.problem.result_left:g} vs {self.problem.query_right.name} = "
                f"{self.problem.result_right:g}"
            )
        lines.append(self.explanations.describe(max_items=max_items))
        if self.summary.patterns or self.summary.residual_keys:
            lines.append("Summarized explanations:")
            lines.append(self.summary.describe())
        lines.append(
            f"Solved in {self.timings.get('total', 0.0):.3f}s "
            f"({self.stats.num_partitions} partition(s), "
            f"largest {self.stats.largest_partition} tuples)"
        )
        return "\n".join(lines)


class Explain3D:
    """The three-stage Explain3D framework (Section 3) with smart partitioning (Section 4)."""

    def __init__(self, config: Explain3DConfig | None = None):
        self.config = config or Explain3DConfig()

    # -- stage 1 -------------------------------------------------------------------------
    def build_problem(
        self,
        query_left: Query,
        db_left: Database,
        query_right: Query,
        db_right: Database,
        *,
        attribute_matches: AttributeMatching | None = None,
        tuple_mapping: TupleMapping | None = None,
        labeled_pairs: set[tuple[str, str]] | None = None,
    ) -> ExplainProblem:
        """Stage 1: provenance, canonicalization and the initial tuple mapping."""
        return build_problem(
            query_left,
            db_left,
            query_right,
            db_right,
            attribute_matches=attribute_matches,
            tuple_mapping=tuple_mapping,
            labeled_pairs=labeled_pairs,
            priors=self.config.priors,
            num_buckets=self.config.num_buckets,
            min_similarity=self.config.min_similarity,
            min_match_probability=self.config.min_match_probability,
        )

    # -- stages 2 and 3 ------------------------------------------------------------------
    def explain_problem(self, problem: ExplainProblem) -> ExplanationReport:
        """Stages 2-3 for an already constructed problem."""
        timings: dict[str, float] = {}

        solve_start = time.perf_counter()
        solver = PartitionedSolver(problem, self.config.solve_config())
        explanations = solver.solve()
        timings["solve"] = time.perf_counter() - solve_start

        summary = ExplanationSummary()
        if self.config.summarize:
            summarize_start = time.perf_counter()
            summarizer = PatternSummarizer(min_precision=self.config.min_summary_precision)
            summary = summarizer.summarize(
                explanations, problem.canonical_left, problem.canonical_right
            )
            timings["summarize"] = time.perf_counter() - summarize_start

        timings["total"] = sum(timings.values())
        return ExplanationReport(
            problem=problem,
            explanations=explanations,
            summary=summary,
            stats=solver.stats,
            timings=timings,
        )

    # -- end to end ----------------------------------------------------------------------
    def explain(
        self,
        query_left: Query,
        db_left: Database,
        query_right: Query,
        db_right: Database,
        *,
        attribute_matches: AttributeMatching | None = None,
        tuple_mapping: TupleMapping | None = None,
        labeled_pairs: set[tuple[str, str]] | None = None,
    ) -> ExplanationReport:
        """Run all three stages end to end."""
        build_start = time.perf_counter()
        problem = self.build_problem(
            query_left,
            db_left,
            query_right,
            db_right,
            attribute_matches=attribute_matches,
            tuple_mapping=tuple_mapping,
            labeled_pairs=labeled_pairs,
        )
        build_time = time.perf_counter() - build_start

        report = self.explain_problem(problem)
        report.timings["stage1"] = build_time
        report.timings["total"] += build_time
        return report

"""The Explain3D facade: the user-facing entry point of the reproduction.

Typical usage::

    from repro import Explain3D, matching

    engine = Explain3D()
    report = engine.explain(
        query_left, db_left, query_right, db_right,
        attribute_matches=matching(("Program", "Major")),
    )
    print(report.describe())

The facade runs the three stages of the paper end to end: Stage 1 (provenance,
canonicalization, initial mapping), Stage 2 (partitioned MILP refinement) and
Stage 3 (pattern summarization).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.core.explanations import ExplanationSet
from repro.core.partitioning import PartitionedSolver, SolveConfig, SolveStats
from repro.core.problem import ExplainProblem, build_problem
from repro.core.scoring import Priors
from repro.core.summarize import ExplanationSummary, PatternSummarizer
from repro.graphs.weighting import WeightingParams
from repro.matching.attribute_match import AttributeMatching
from repro.matching.tuple_matching import TupleMapping
from repro.relational.executor import Database
from repro.relational.query import Query
from repro.solver.backends import MILPSolver


@dataclass
class Explain3DConfig:
    """End-to-end configuration of the Explain3D pipeline."""

    priors: Priors = field(default_factory=Priors)
    partitioning: str = "smart"
    batch_size: int = 1000
    weighting: WeightingParams = field(default_factory=WeightingParams)
    use_prepartitioning: bool = True
    num_buckets: int = 50
    min_similarity: float = 0.0
    min_match_probability: float = 0.0
    summarize: bool = True
    min_summary_precision: float = 0.75
    solver: Optional[MILPSolver] = None
    workers: Optional[int] = None   # None resolves to os.cpu_count(); 1 is sequential
    executor: str = "thread"

    def solve_config(self) -> SolveConfig:
        return SolveConfig(
            partitioning=self.partitioning,  # type: ignore[arg-type]
            batch_size=self.batch_size,
            weighting=self.weighting,
            use_prepartitioning=self.use_prepartitioning,
            solver=self.solver,
            workers=self.workers,
            executor=self.executor,  # type: ignore[arg-type]
        )


@dataclass
class ExplanationReport:
    """The full output of one Explain3D run.

    ``degraded`` lists every degradation-ladder rung this run took (empty on
    a normal run): e.g. a deadline-bounded solve that returned the partial
    incumbent, or a skipped summarization.  Degradation is always explicit --
    a report produced through any fallback says so here rather than silently
    presenting different answers.
    """

    problem: ExplainProblem
    explanations: ExplanationSet
    summary: ExplanationSummary
    stats: SolveStats
    timings: dict
    degraded: list = field(default_factory=list)

    @property
    def evidence(self) -> TupleMapping:
        return self.explanations.evidence

    def describe(self, *, max_items: int = 10) -> str:
        """Human-readable report used by the examples."""
        lines = []
        if self.problem.result_left is not None and self.problem.result_right is not None:
            lines.append(
                f"Query results disagree: {self.problem.query_left.name} = "
                f"{self.problem.result_left:g} vs {self.problem.query_right.name} = "
                f"{self.problem.result_right:g}"
            )
        lines.append(self.explanations.describe(max_items=max_items))
        if self.summary.patterns or self.summary.residual_keys:
            lines.append("Summarized explanations:")
            lines.append(self.summary.describe())
        lines.append(
            f"Solved in {self.timings.get('total', 0.0):.3f}s "
            f"({self.stats.num_partitions} partition(s), "
            f"largest {self.stats.largest_partition} tuples)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Machine-readable report: the payload of the service layer's JSON API.

        Everything is JSON-safe (numpy scalars are unwrapped, unknown value
        types fall back to ``str``); ``json.dumps(report.to_dict())`` always
        succeeds.
        """
        problem = self.problem
        return _json_safe(
            {
                "query_left": {
                    "name": problem.query_left.name if problem.query_left else None,
                    "result": problem.result_left,
                },
                "query_right": {
                    "name": problem.query_right.name if problem.query_right else None,
                    "result": problem.result_right,
                },
                "disagreement": problem.disagreement,
                "statistics": problem.statistics(),
                "explanations": {
                    "objective": self.explanations.objective,
                    "provenance": [
                        {"side": e.side.value, "key": e.key} for e in self.explanations.provenance
                    ],
                    "value": [
                        {
                            "side": e.side.value,
                            "key": e.key,
                            "old_impact": e.old_impact,
                            "new_impact": e.new_impact,
                        }
                        for e in self.explanations.value
                    ],
                    "evidence": [
                        {
                            "left": m.left_key,
                            "right": m.right_key,
                            "probability": m.probability,
                            "similarity": m.similarity,
                        }
                        for m in self.evidence
                    ],
                },
                "summary": {
                    "patterns": [
                        {
                            "side": p.side.value,
                            "conditions": [list(condition) for condition in p.conditions],
                            "covered_targets": p.covered_targets,
                            "covered_others": p.covered_others,
                            "precision": p.precision,
                        }
                        for p in self.summary.patterns
                    ],
                    "residual_keys": [list(residual) for residual in self.summary.residual_keys],
                },
                "stats": asdict(self.stats),
                "timings": dict(self.timings),
                "degraded": list(self.degraded),
            }
        )

    def to_json(self, *, indent: int | None = None) -> str:
        """The report serialized as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)


def _json_safe(value):
    """Recursively convert a report structure into plain JSON types."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(item) for item in value]
    if hasattr(value, "item"):  # numpy scalars
        return _json_safe(value.item())
    return str(value)


class Explain3D:
    """The three-stage Explain3D framework (Section 3) with smart partitioning (Section 4)."""

    def __init__(self, config: Explain3DConfig | None = None):
        self.config = config or Explain3DConfig()

    # -- stage 1 -------------------------------------------------------------------------
    def build_problem(
        self,
        query_left: Query,
        db_left: Database,
        query_right: Query,
        db_right: Database,
        *,
        attribute_matches: AttributeMatching | None = None,
        tuple_mapping: TupleMapping | None = None,
        labeled_pairs: set[tuple[str, str]] | None = None,
    ) -> ExplainProblem:
        """Stage 1: provenance, canonicalization and the initial tuple mapping."""
        return build_problem(
            query_left,
            db_left,
            query_right,
            db_right,
            attribute_matches=attribute_matches,
            tuple_mapping=tuple_mapping,
            labeled_pairs=labeled_pairs,
            priors=self.config.priors,
            num_buckets=self.config.num_buckets,
            min_similarity=self.config.min_similarity,
            min_match_probability=self.config.min_match_probability,
        )

    # -- stages 2 and 3 ------------------------------------------------------------------
    def explain_problem(
        self,
        problem: ExplainProblem,
        *,
        stage1_seconds: float = 0.0,
        deadline=None,
        allow_partial: bool = False,
    ) -> ExplanationReport:
        """Stages 2-3 for an already constructed problem.

        ``stage1_seconds`` records how long the caller spent building the
        problem, so end-to-end timings stay consistent however Stage 1 ran
        (inline, cached, or injected).  ``deadline`` (a
        :class:`~repro.reliability.Deadline`) is observed at per-partition
        solver checkpoints; with ``allow_partial`` an expired deadline yields
        the incumbent explanation set with an optimality gap (and skips
        summarization when the budget is gone) instead of raising, each rung
        recorded in the report's ``degraded`` list.
        """
        timings: dict[str, float] = {"stage1": stage1_seconds}
        degraded: list[dict] = []

        solve_start = time.perf_counter()
        solver = PartitionedSolver(
            problem, self.config.solve_config(),
            deadline=deadline, allow_partial=allow_partial,
        )
        explanations = solver.solve()
        timings["solve"] = time.perf_counter() - solve_start
        if solver.stats.partial:
            degraded.append(
                {
                    "site": "solve.partition",
                    "fallback": "partial-incumbent",
                    "unsolved_partitions": solver.stats.unsolved_partitions,
                    "optimality_gap": solver.stats.optimality_gap,
                }
            )

        summary = ExplanationSummary()
        if self.config.summarize:
            if deadline is not None and allow_partial and deadline.expired():
                # The budget is spent: return the incumbent promptly rather
                # than burn more time summarizing it -- explicitly reported.
                degraded.append({"site": "summarize", "fallback": "skipped"})
            else:
                if deadline is not None:
                    deadline.check("summarize")
                summarize_start = time.perf_counter()
                summarizer = PatternSummarizer(min_precision=self.config.min_summary_precision)
                summary = summarizer.summarize(
                    explanations, problem.canonical_left, problem.canonical_right
                )
                timings["summarize"] = time.perf_counter() - summarize_start

        # Compute the total exactly once, after every stage key exists --
        # mutating it afterwards (the old `+= build_time`) desyncs it from
        # the per-stage keys.
        timings["total"] = sum(timings.values())
        return ExplanationReport(
            problem=problem,
            explanations=explanations,
            summary=summary,
            stats=solver.stats,
            timings=timings,
            degraded=degraded,
        )

    # -- end to end ----------------------------------------------------------------------
    def explain(
        self,
        query_left: Query,
        db_left: Database,
        query_right: Query,
        db_right: Database,
        *,
        attribute_matches: AttributeMatching | None = None,
        tuple_mapping: TupleMapping | None = None,
        labeled_pairs: set[tuple[str, str]] | None = None,
    ) -> ExplanationReport:
        """Run all three stages end to end."""
        build_start = time.perf_counter()
        problem = self.build_problem(
            query_left,
            db_left,
            query_right,
            db_right,
            attribute_matches=attribute_matches,
            tuple_mapping=tuple_mapping,
            labeled_pairs=labeled_pairs,
        )
        build_time = time.perf_counter() - build_start
        return self.explain_problem(problem, stage1_seconds=build_time)

"""Partitioned solving of the EXP-3D problem (Section 4, Algorithm 3).

Three solving modes are supported:

* ``"none"``   -- one MILP for the whole problem (the paper's NOOPT);
* ``"components"`` -- one MILP per connected component of the match graph
  (exact, no accuracy loss, but no size guarantee);
* ``"smart"``  -- the smart-partitioning optimizer: pre-partitioning,
  balanced min-cut graph partitioning with ``L_max = batch_size``, one MILP
  per partition (the paper's BATCH-``b``).

Each partition's restriction + MILP build + solve is an independent unit: with
``workers > 1`` the units are dispatched to a thread or process pool
(partitions are disjoint sub-problems, so the merge is order-preserving and
the result is identical to the sequential ``workers=1`` path).  Restricting
the canonical relations and the mapping to the partitions is done in a single
pass that buckets tuples and matches by partition, instead of one full scan
per partition.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Literal

from repro.core.canonical import CanonicalRelation
from repro.core.explanations import ExplanationSet
from repro.core.milp_model import MILPTransformation
from repro.core.problem import ExplainProblem
from repro.core.scoring import MatchLogProbability, Priors
from repro.graphs.smart_partition import SmartPartitioner, TuplePartition
from repro.graphs.weighting import WeightingParams
from repro.matching.attribute_match import SemanticRelation
from repro.matching.tuple_matching import TupleMapping
from repro.solver.backends import MILPSolver, default_solver

PartitioningMode = Literal["none", "components", "smart"]
ExecutorKind = Literal["thread", "process"]


@dataclass
class SolveConfig:
    """Configuration of Stage 2 solving."""

    partitioning: PartitioningMode = "smart"
    batch_size: int = 1000
    weighting: WeightingParams = field(default_factory=WeightingParams)
    use_prepartitioning: bool = True
    solver: MILPSolver | None = None
    workers: int | None = None      # None resolves to os.cpu_count()
    executor: ExecutorKind = "thread"

    def resolved_workers(self) -> int:
        """The worker count to use: ``workers`` or, when unset, ``os.cpu_count()``."""
        if self.workers is not None:
            if self.workers < 1:
                raise ValueError(f"workers must be positive, got {self.workers}")
            return self.workers
        return os.cpu_count() or 1


@dataclass
class SolveStats:
    """Diagnostics of a partitioned solve."""

    num_partitions: int = 0
    num_supernodes: int = 0
    cut_edges: int = 0
    largest_partition: int = 0
    partition_time: float = 0.0
    solve_time: float = 0.0
    total_time: float = 0.0
    workers_used: int = 1
    milp_sizes: list[dict] = field(default_factory=list)


def _restrict_by_partition(
    problem: ExplainProblem, partitions: list[TuplePartition]
) -> tuple[list[CanonicalRelation], list[CanonicalRelation], list[TupleMapping]]:
    """Bucket canonical tuples and matches by partition in one pass each.

    Partitions are disjoint by construction, so a key belongs to at most one
    partition and a match is internal to a partition exactly when both its
    endpoints land in the same one.  Tuple and match order within each bucket
    follows the original relation/mapping order, which keeps the per-partition
    MILPs identical to the former per-partition full-scan restriction.
    """
    left_of: dict[str, int] = {}
    right_of: dict[str, int] = {}
    for position, partition in enumerate(partitions):
        for key in partition.left_keys:
            left_of[key] = position
        for key in partition.right_keys:
            right_of[key] = position

    left_buckets: list[list] = [[] for _ in partitions]
    for canonical_tuple in problem.canonical_left.tuples:
        position = left_of.get(canonical_tuple.key)
        if position is not None:
            left_buckets[position].append(canonical_tuple)
    right_buckets: list[list] = [[] for _ in partitions]
    for canonical_tuple in problem.canonical_right.tuples:
        position = right_of.get(canonical_tuple.key)
        if position is not None:
            right_buckets[position].append(canonical_tuple)
    match_buckets: list[list] = [[] for _ in partitions]
    for match in problem.mapping:
        position = left_of.get(match.left_key)
        if position is not None and right_of.get(match.right_key) == position:
            match_buckets[position].append(match)

    template_left = problem.canonical_left
    template_right = problem.canonical_right
    # The restricted relations exist only for MILP building; dropping the
    # provenance back-reference keeps process-pool payloads small.
    lefts = [
        CanonicalRelation(
            template_left.side, template_left.attributes, bucket, label=template_left.label
        )
        for bucket in left_buckets
    ]
    rights = [
        CanonicalRelation(
            template_right.side, template_right.attributes, bucket, label=template_right.label
        )
        for bucket in right_buckets
    ]
    mappings = [TupleMapping(bucket) for bucket in match_buckets]
    return lefts, rights, mappings


def _solve_partition_task(
    task: tuple[int, CanonicalRelation, CanonicalRelation, TupleMapping, SemanticRelation, Priors, MILPSolver]
) -> tuple[ExplanationSet, dict]:
    """One independent unit of work: build and solve a partition's MILP.

    Module-level (and fed picklable arguments) so it can run on a process
    pool as well as on threads or inline.
    """
    index, left, right, mapping, relation, priors, solver = task
    transformation = MILPTransformation(
        left, right, mapping, relation, priors, solver=solver, name=f"exp3d_part{index}"
    )
    piece = transformation.solve()
    return piece, transformation.problem_size()


def _worker_solver(solver: MILPSolver) -> MILPSolver:
    """A per-task solver instance when the backend supports cloning."""
    clone = getattr(solver, "clone", None)
    return clone() if callable(clone) else solver


def _supports_cloning(solver: MILPSolver) -> bool:
    return callable(getattr(solver, "clone", None))


class PartitionedSolver:
    """Solves an :class:`ExplainProblem`, optionally split into sub-problems."""

    def __init__(self, problem: ExplainProblem, config: SolveConfig | None = None):
        self.problem = problem
        self.config = config or SolveConfig()
        self.solver = self.config.solver or default_solver()
        self.stats = SolveStats()

    # -- partition selection ----------------------------------------------------------
    def _partitions(self) -> list[TuplePartition]:
        graph = self.problem.match_graph()
        mode = self.config.partitioning
        if mode not in ("none", "components", "smart"):
            raise ValueError(f"unknown partitioning mode {mode!r}")
        if mode == "none" or graph.num_nodes <= self.config.batch_size:
            partition = TuplePartition(
                0,
                frozenset(self.problem.canonical_left.keys()),
                frozenset(self.problem.canonical_right.keys()),
            )
            self.stats.num_supernodes = graph.num_nodes
            return [partition]
        if mode == "components":
            result = SmartPartitioner.by_connected_components(graph)
            self.stats.num_supernodes = result.num_supernodes
            return list(result.partitions)
        partitioner = SmartPartitioner(
            batch_size=self.config.batch_size,
            weighting=self.config.weighting,
            use_prepartitioning=self.config.use_prepartitioning,
        )
        result = partitioner.partition(graph)
        self.stats.num_supernodes = result.num_supernodes
        self.stats.cut_edges = result.cut_edges
        return list(result.partitions)

    # -- solving ------------------------------------------------------------------------
    def solve(self) -> ExplanationSet:
        """Solve all sub-problems (possibly in parallel) and merge the results."""
        if self.config.executor not in ("thread", "process"):
            raise ValueError(f"unknown executor kind {self.config.executor!r}")
        start = time.perf_counter()
        partitions = self._partitions()
        self.stats.num_partitions = len(partitions)
        self.stats.largest_partition = max((p.size for p in partitions), default=0)
        self.stats.partition_time = time.perf_counter() - start

        solve_start = time.perf_counter()
        lefts, rights, mappings = _restrict_by_partition(self.problem, partitions)
        covered_pairs: set[tuple[str, str]] = set()
        for mapping in mappings:
            covered_pairs.update(mapping.pairs())

        workers = self.config.resolved_workers()
        if workers > 1 and not _supports_cloning(self.solver):
            # A backend without clone() may mutate internal state during a
            # solve (the MILPSolver protocol only requires solve()), so one
            # shared instance must never serve concurrent partitions.
            workers = 1
        self.stats.workers_used = max(1, min(workers, len(partitions)))
        parallel = self.stats.workers_used > 1 and len(partitions) > 1
        tasks = [
            (
                partition.index,
                lefts[position],
                rights[position],
                mappings[position],
                self.problem.relation,
                self.problem.priors,
                # Sequential solving keeps the caller's instance (its post-solve
                # state, e.g. BnB stats, stays observable as before).
                _worker_solver(self.solver) if parallel else self.solver,
            )
            for position, partition in enumerate(partitions)
        ]
        if not parallel:
            # Deterministic sequential fallback (also the workers=1 reference path).
            results = [_solve_partition_task(task) for task in tasks]
        else:
            pool_type = ThreadPoolExecutor if self.config.executor == "thread" else ProcessPoolExecutor
            with pool_type(max_workers=self.stats.workers_used) as pool:
                # Executor.map preserves task order, so the merge below is
                # independent of completion order.
                results = list(pool.map(_solve_partition_task, tasks))

        pieces = [piece for piece, _ in results]
        self.stats.milp_sizes.extend(size for _, size in results)
        merged = ExplanationSet.merge_all(pieces)

        # Matches cut across partitions are implicitly rejected (z = 0); add
        # their log(1 - p) terms so the merged objective matches Equation (13).
        for match in self.problem.mapping:
            if match.pair not in covered_pairs:
                merged.objective += MatchLogProbability.of(match.probability).rejected

        self.stats.solve_time = time.perf_counter() - solve_start
        self.stats.total_time = time.perf_counter() - start
        return merged

    # -- convenience --------------------------------------------------------------------
    def expected_partitions(self) -> int:
        graph_size = len(self.problem.canonical_left) + len(self.problem.canonical_right)
        return max(1, math.ceil(graph_size / self.config.batch_size))

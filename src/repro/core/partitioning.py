"""Partitioned solving of the EXP-3D problem (Section 4, Algorithm 3).

Three solving modes are supported:

* ``"none"``   -- one MILP for the whole problem (the paper's NOOPT);
* ``"components"`` -- one MILP per connected component of the match graph
  (exact, no accuracy loss, but no size guarantee);
* ``"smart"``  -- the smart-partitioning optimizer: pre-partitioning,
  balanced min-cut graph partitioning with ``L_max = batch_size``, one MILP
  per partition (the paper's BATCH-``b``).

Each partition's restriction + MILP build + solve is an independent unit: with
``workers > 1`` the units are dispatched to a thread or process pool
(partitions are disjoint sub-problems, so the merge is order-preserving and
the result is identical to the sequential ``workers=1`` path).  Restricting
the canonical relations and the mapping to the partitions is done in a single
pass that buckets tuples and matches by partition, instead of one full scan
per partition.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Literal, Optional

from repro.core.canonical import CanonicalRelation
from repro.core.explanations import ExplanationSet, ProvenanceExplanation
from repro.core.milp_model import MILPTransformation
from repro.core.problem import ExplainProblem
from repro.core.scoring import MatchLogProbability, Priors
from repro.graphs.smart_partition import SmartPartitioner, TuplePartition
from repro.graphs.weighting import WeightingParams
from repro.matching.attribute_match import SemanticRelation
from repro.matching.tuple_matching import TupleMapping
from repro.reliability.deadline import Deadline, DeadlineExceeded, OperationCancelled
from repro.reliability.faults import FAULTS
from repro.solver.backends import MILPSolver, default_solver

PartitioningMode = Literal["none", "components", "smart"]
ExecutorKind = Literal["thread", "process"]


@dataclass
class SolveConfig:
    """Configuration of Stage 2 solving."""

    partitioning: PartitioningMode = "smart"
    batch_size: int = 1000
    weighting: WeightingParams = field(default_factory=WeightingParams)
    use_prepartitioning: bool = True
    solver: MILPSolver | None = None
    workers: int | None = None      # None resolves to os.cpu_count()
    executor: ExecutorKind = "thread"

    def resolved_workers(self) -> int:
        """The worker count to use: ``workers`` or, when unset, ``os.cpu_count()``."""
        if self.workers is not None:
            if self.workers < 1:
                raise ValueError(f"workers must be positive, got {self.workers}")
            return self.workers
        return os.cpu_count() or 1


@dataclass
class SolveStats:
    """Diagnostics of a partitioned solve."""

    num_partitions: int = 0
    num_supernodes: int = 0
    cut_edges: int = 0
    largest_partition: int = 0
    partition_time: float = 0.0
    solve_time: float = 0.0
    total_time: float = 0.0
    workers_used: int = 1
    milp_sizes: list[dict] = field(default_factory=list)
    # Anytime/partial solving (deadline expiry with ``allow_partial``):
    partial: bool = False
    unsolved_partitions: int = 0
    optimality_gap: float = 0.0


def _restrict_by_partition(
    problem: ExplainProblem, partitions: list[TuplePartition]
) -> tuple[list[CanonicalRelation], list[CanonicalRelation], list[TupleMapping]]:
    """Bucket canonical tuples and matches by partition in one pass each.

    Partitions are disjoint by construction, so a key belongs to at most one
    partition and a match is internal to a partition exactly when both its
    endpoints land in the same one.  Tuple and match order within each bucket
    follows the original relation/mapping order, which keeps the per-partition
    MILPs identical to the former per-partition full-scan restriction.
    """
    left_of: dict[str, int] = {}
    right_of: dict[str, int] = {}
    for position, partition in enumerate(partitions):
        for key in partition.left_keys:
            left_of[key] = position
        for key in partition.right_keys:
            right_of[key] = position

    left_buckets: list[list] = [[] for _ in partitions]
    for canonical_tuple in problem.canonical_left.tuples:
        position = left_of.get(canonical_tuple.key)
        if position is not None:
            left_buckets[position].append(canonical_tuple)
    right_buckets: list[list] = [[] for _ in partitions]
    for canonical_tuple in problem.canonical_right.tuples:
        position = right_of.get(canonical_tuple.key)
        if position is not None:
            right_buckets[position].append(canonical_tuple)
    match_buckets: list[list] = [[] for _ in partitions]
    for match in problem.mapping:
        position = left_of.get(match.left_key)
        if position is not None and right_of.get(match.right_key) == position:
            match_buckets[position].append(match)

    template_left = problem.canonical_left
    template_right = problem.canonical_right
    # The restricted relations exist only for MILP building; dropping the
    # provenance back-reference keeps process-pool payloads small.
    lefts = [
        CanonicalRelation(
            template_left.side, template_left.attributes, bucket, label=template_left.label
        )
        for bucket in left_buckets
    ]
    rights = [
        CanonicalRelation(
            template_right.side, template_right.attributes, bucket, label=template_right.label
        )
        for bucket in right_buckets
    ]
    mappings = [TupleMapping(bucket) for bucket in match_buckets]
    return lefts, rights, mappings


def _solve_partition_task(
    task: tuple[int, CanonicalRelation, CanonicalRelation, TupleMapping, SemanticRelation, Priors, MILPSolver]
) -> tuple[ExplanationSet, dict]:
    """One independent unit of work: build and solve a partition's MILP.

    Module-level (and fed picklable arguments) so it can run on a process
    pool as well as on threads or inline.
    """
    FAULTS.check("solve.partition")
    index, left, right, mapping, relation, priors, solver = task
    transformation = MILPTransformation(
        left, right, mapping, relation, priors, solver=solver, name=f"exp3d_part{index}"
    )
    piece = transformation.solve()
    return piece, transformation.problem_size()


def _trivial_partition_solution(
    left: CanonicalRelation,
    right: CanonicalRelation,
    mapping: TupleMapping,
    priors: Priors,
) -> tuple[ExplanationSet, float]:
    """A feasible fallback for a partition whose MILP was never solved.

    Removing every tuple (all become provenance explanations) and rejecting
    every match satisfies all MILP constraints by construction, so merging
    this piece with optimally solved partitions still yields a *valid*
    explanation set -- just not an optimal one.  Returns the piece and an
    upper bound on the objective this partition could have contributed minus
    what the trivial solution contributes, i.e. this partition's share of the
    reported optimality gap.
    """
    a = priors.removed
    per_tuple_best = max(a, priors.kept_unchanged, priors.kept_changed)
    provenance = [
        ProvenanceExplanation(relation.side, canonical_tuple.key)
        for relation in (left, right)
        for canonical_tuple in relation
    ]
    objective = a * len(provenance)
    bound = per_tuple_best * len(provenance)
    for match in mapping:
        terms = MatchLogProbability.of(match.probability)
        objective += terms.rejected
        bound += max(terms.selected, terms.rejected)
    piece = ExplanationSet(provenance=provenance, objective=objective)
    return piece, bound - objective


def _worker_solver(solver: MILPSolver) -> MILPSolver:
    """A per-task solver instance when the backend supports cloning."""
    clone = getattr(solver, "clone", None)
    return clone() if callable(clone) else solver


def _supports_cloning(solver: MILPSolver) -> bool:
    return callable(getattr(solver, "clone", None))


class PartitionedSolver:
    """Solves an :class:`ExplainProblem`, optionally split into sub-problems."""

    def __init__(
        self,
        problem: ExplainProblem,
        config: SolveConfig | None = None,
        *,
        deadline: Deadline | None = None,
        allow_partial: bool = False,
    ):
        self.problem = problem
        self.config = config or SolveConfig()
        self.solver = self.config.solver or default_solver()
        self.stats = SolveStats()
        #: Cooperative deadline observed before each partition solve; an
        #: unbounded deadline still observes its cancellation event.
        self.deadline = deadline or Deadline.unbounded()
        #: When True, deadline expiry mid-solve yields the incumbent (solved
        #: partitions + trivial fallbacks, with an optimality gap in
        #: ``stats``) instead of raising :class:`DeadlineExceeded`.
        self.allow_partial = allow_partial

    # -- partition selection ----------------------------------------------------------
    def _partitions(self) -> list[TuplePartition]:
        graph = self.problem.match_graph()
        mode = self.config.partitioning
        if mode not in ("none", "components", "smart"):
            raise ValueError(f"unknown partitioning mode {mode!r}")
        if mode == "none" or graph.num_nodes <= self.config.batch_size:
            partition = TuplePartition(
                0,
                frozenset(self.problem.canonical_left.keys()),
                frozenset(self.problem.canonical_right.keys()),
            )
            self.stats.num_supernodes = graph.num_nodes
            return [partition]
        if mode == "components":
            result = SmartPartitioner.by_connected_components(graph)
            self.stats.num_supernodes = result.num_supernodes
            return list(result.partitions)
        partitioner = SmartPartitioner(
            batch_size=self.config.batch_size,
            weighting=self.config.weighting,
            use_prepartitioning=self.config.use_prepartitioning,
        )
        result = partitioner.partition(graph)
        self.stats.num_supernodes = result.num_supernodes
        self.stats.cut_edges = result.cut_edges
        return list(result.partitions)

    # -- solving ------------------------------------------------------------------------
    def solve(self) -> ExplanationSet:
        """Solve all sub-problems (possibly in parallel) and merge the results."""
        if self.config.executor not in ("thread", "process"):
            raise ValueError(f"unknown executor kind {self.config.executor!r}")
        start = time.perf_counter()
        partitions = self._partitions()
        self.stats.num_partitions = len(partitions)
        self.stats.largest_partition = max((p.size for p in partitions), default=0)
        self.stats.partition_time = time.perf_counter() - start

        solve_start = time.perf_counter()
        lefts, rights, mappings = _restrict_by_partition(self.problem, partitions)
        covered_pairs: set[tuple[str, str]] = set()
        for mapping in mappings:
            covered_pairs.update(mapping.pairs())

        workers = self.config.resolved_workers()
        if workers > 1 and not _supports_cloning(self.solver):
            # A backend without clone() may mutate internal state during a
            # solve (the MILPSolver protocol only requires solve()), so one
            # shared instance must never serve concurrent partitions.
            workers = 1
        self.stats.workers_used = max(1, min(workers, len(partitions)))
        parallel = self.stats.workers_used > 1 and len(partitions) > 1
        tasks = [
            (
                partition.index,
                lefts[position],
                rights[position],
                mappings[position],
                self.problem.relation,
                self.problem.priors,
                # Sequential solving keeps the caller's instance (its post-solve
                # state, e.g. BnB stats, stays observable as before).
                _worker_solver(self.solver) if parallel else self.solver,
            )
            for position, partition in enumerate(partitions)
        ]
        if not parallel:
            # Deterministic sequential fallback (also the workers=1 reference path).
            results = self._run_sequential(tasks)
        else:
            pool_type = ThreadPoolExecutor if self.config.executor == "thread" else ProcessPoolExecutor
            results = self._run_parallel(tasks, pool_type)

        # Positions left as None missed the deadline: substitute the trivial
        # feasible solution and account its contribution to the optimality
        # gap, keeping the merge order identical to a full solve.
        pieces: list[ExplanationSet] = []
        gap = 0.0
        for position, result in enumerate(results):
            if result is not None:
                piece, size = result
                self.stats.milp_sizes.append(size)
            else:
                piece, partition_gap = _trivial_partition_solution(
                    lefts[position], rights[position], mappings[position],
                    self.problem.priors,
                )
                gap += partition_gap
            pieces.append(piece)
        unsolved = sum(1 for result in results if result is None)
        if unsolved:
            self.stats.partial = True
            self.stats.unsolved_partitions = unsolved
            self.stats.optimality_gap = gap
        merged = ExplanationSet.merge_all(pieces)

        # Matches cut across partitions are implicitly rejected (z = 0); add
        # their log(1 - p) terms so the merged objective matches Equation (13).
        for match in self.problem.mapping:
            if match.pair not in covered_pairs:
                merged.objective += MatchLogProbability.of(match.probability).rejected

        self.stats.solve_time = time.perf_counter() - solve_start
        self.stats.total_time = time.perf_counter() - start
        return merged

    # -- task execution (sequential / parallel, deadline-checkpointed) ------------------
    def _run_sequential(self, tasks: list) -> list[Optional[tuple]]:
        """Solve tasks in order; a deadline checkpoint precedes each one.

        Returns one slot per task; ``None`` marks a partition the deadline
        cut off (only reachable with ``allow_partial`` -- otherwise the
        checkpoint's :class:`DeadlineExceeded` propagates).  Cancellation
        always propagates: a cancelled request has no use for an incumbent.
        """
        results: list[Optional[tuple]] = [None] * len(tasks)
        for position, task in enumerate(tasks):
            try:
                self.deadline.check("solve.partition")
            except DeadlineExceeded:
                if not self.allow_partial:
                    raise
                break
            results[position] = _solve_partition_task(task)
        return results

    def _run_parallel(self, tasks: list, pool_type) -> list[Optional[tuple]]:
        """Dispatch all tasks, then await them in order within the deadline.

        On expiry, not-yet-started futures are cancelled; futures already
        running finish (threads cannot be killed), which bounds the overrun
        to one checkpoint interval -- the same guarantee as the sequential
        path.  Completed futures are harvested as the incumbent when
        ``allow_partial`` is set.
        """
        results: list[Optional[tuple]] = [None] * len(tasks)
        with pool_type(max_workers=self.stats.workers_used) as pool:
            futures = [pool.submit(_solve_partition_task, task) for task in tasks]
            try:
                for position, future in enumerate(futures):
                    if self.deadline.cancelled():
                        raise OperationCancelled("solve.partition")
                    try:
                        results[position] = future.result(timeout=self.deadline.remaining())
                    except FutureTimeoutError:
                        raise DeadlineExceeded(
                            "solve.partition", self.deadline.elapsed(),
                            float(self.deadline.seconds),
                        ) from None
            except (DeadlineExceeded, OperationCancelled):
                for future in futures:
                    future.cancel()
                if not self.allow_partial or self.deadline.cancelled():
                    raise
                for position, future in enumerate(futures):
                    if results[position] is None and future.done() and not future.cancelled():
                        try:
                            results[position] = future.result(timeout=0)
                        except Exception:  # noqa: BLE001 - failed piece stays unsolved
                            pass
        return results

    # -- convenience --------------------------------------------------------------------
    def expected_partitions(self) -> int:
        graph_size = len(self.problem.canonical_left) + len(self.problem.canonical_right)
        return max(1, math.ceil(graph_size / self.config.batch_size))

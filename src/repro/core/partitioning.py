"""Partitioned solving of the EXP-3D problem (Section 4, Algorithm 3).

Three solving modes are supported:

* ``"none"``   -- one MILP for the whole problem (the paper's NOOPT);
* ``"components"`` -- one MILP per connected component of the match graph
  (exact, no accuracy loss, but no size guarantee);
* ``"smart"``  -- the smart-partitioning optimizer: pre-partitioning,
  balanced min-cut graph partitioning with ``L_max = batch_size``, one MILP
  per partition (the paper's BATCH-``b``).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Literal

from repro.core.canonical import CanonicalRelation
from repro.core.explanations import ExplanationSet
from repro.core.milp_model import MILPTransformation
from repro.core.problem import ExplainProblem
from repro.core.scoring import MatchLogProbability
from repro.graphs.smart_partition import SmartPartitioner, TuplePartition
from repro.graphs.weighting import WeightingParams
from repro.matching.tuple_matching import TupleMapping
from repro.solver.backends import MILPSolver, default_solver

PartitioningMode = Literal["none", "components", "smart"]


@dataclass
class SolveConfig:
    """Configuration of Stage 2 solving."""

    partitioning: PartitioningMode = "smart"
    batch_size: int = 1000
    weighting: WeightingParams = field(default_factory=WeightingParams)
    use_prepartitioning: bool = True
    solver: MILPSolver | None = None


@dataclass
class SolveStats:
    """Diagnostics of a partitioned solve."""

    num_partitions: int = 0
    num_supernodes: int = 0
    cut_edges: int = 0
    largest_partition: int = 0
    partition_time: float = 0.0
    solve_time: float = 0.0
    total_time: float = 0.0
    milp_sizes: list[dict] = field(default_factory=list)


def _restrict_canonical(relation: CanonicalRelation, keys: frozenset[str]) -> CanonicalRelation:
    """A canonical relation restricted to a subset of its tuples."""
    return CanonicalRelation(
        relation.side,
        relation.attributes,
        [t for t in relation.tuples if t.key in keys],
        label=relation.label,
        provenance=relation.provenance,
    )


def _restrict_mapping(mapping: TupleMapping, partition: TuplePartition) -> TupleMapping:
    return mapping.filtered(
        lambda match: match.left_key in partition.left_keys
        and match.right_key in partition.right_keys
    )


class PartitionedSolver:
    """Solves an :class:`ExplainProblem`, optionally split into sub-problems."""

    def __init__(self, problem: ExplainProblem, config: SolveConfig | None = None):
        self.problem = problem
        self.config = config or SolveConfig()
        self.solver = self.config.solver or default_solver()
        self.stats = SolveStats()

    # -- partition selection ----------------------------------------------------------
    def _partitions(self) -> list[TuplePartition]:
        graph = self.problem.match_graph()
        mode = self.config.partitioning
        if mode not in ("none", "components", "smart"):
            raise ValueError(f"unknown partitioning mode {mode!r}")
        if mode == "none" or graph.num_nodes <= self.config.batch_size:
            partition = TuplePartition(
                0,
                frozenset(self.problem.canonical_left.keys()),
                frozenset(self.problem.canonical_right.keys()),
            )
            self.stats.num_supernodes = graph.num_nodes
            return [partition]
        if mode == "components":
            result = SmartPartitioner.by_connected_components(graph)
            self.stats.num_supernodes = result.num_supernodes
            return list(result.partitions)
        if mode == "smart":
            partitioner = SmartPartitioner(
                batch_size=self.config.batch_size,
                weighting=self.config.weighting,
                use_prepartitioning=self.config.use_prepartitioning,
            )
            result = partitioner.partition(graph)
            self.stats.num_supernodes = result.num_supernodes
            self.stats.cut_edges = result.cut_edges
            return list(result.partitions)
        raise ValueError(f"unknown partitioning mode {mode!r}")

    # -- solving ------------------------------------------------------------------------
    def solve(self) -> ExplanationSet:
        """Solve all sub-problems and merge their explanation sets."""
        start = time.perf_counter()
        partitions = self._partitions()
        self.stats.num_partitions = len(partitions)
        self.stats.largest_partition = max((p.size for p in partitions), default=0)
        self.stats.partition_time = time.perf_counter() - start

        solve_start = time.perf_counter()
        pieces: list[ExplanationSet] = []
        covered_pairs: set[tuple[str, str]] = set()
        for partition in partitions:
            left = _restrict_canonical(self.problem.canonical_left, partition.left_keys)
            right = _restrict_canonical(self.problem.canonical_right, partition.right_keys)
            mapping = _restrict_mapping(self.problem.mapping, partition)
            covered_pairs.update(mapping.pairs())
            transformation = MILPTransformation(
                left,
                right,
                mapping,
                self.problem.relation,
                self.problem.priors,
                solver=self.solver,
                name=f"exp3d_part{partition.index}",
            )
            piece = transformation.solve()
            self.stats.milp_sizes.append(transformation.problem_size())
            pieces.append(piece)
        merged = ExplanationSet.merge_all(pieces)

        # Matches cut across partitions are implicitly rejected (z = 0); add
        # their log(1 - p) terms so the merged objective matches Equation (13).
        for match in self.problem.mapping:
            if match.pair not in covered_pairs:
                merged.objective += MatchLogProbability.of(match.probability).rejected

        self.stats.solve_time = time.perf_counter() - solve_start
        self.stats.total_time = time.perf_counter() - start
        return merged

    # -- convenience --------------------------------------------------------------------
    def expected_partitions(self) -> int:
        graph_size = len(self.problem.canonical_left) + len(self.problem.canonical_right)
        return max(1, math.ceil(graph_size / self.config.batch_size))

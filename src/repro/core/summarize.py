"""Stage 3: summarization of explanations (Section 3.3).

When the discrepancies between two datasets are extensive, the explanation set
can involve hundreds of tuples.  Stage 3 compresses it into conjunctive
patterns over the provenance attributes ("Degree = 'Associate degree'"),
following the Data-Auditor / Data-X-Ray style of pattern tableaux: find a
small set of patterns that cover the explained ("target") tuples with high
precision.

The summarizer is a greedy weighted set cover:

1. enumerate candidate patterns (single attribute-value conditions and pairs
   of conditions) over the provenance tuples behind the explained canonical
   tuples;
2. repeatedly pick the pattern with the best score (covered targets minus a
   penalty for covered non-targets), until every target is covered or no
   pattern clears the precision threshold;
3. targets left uncovered are reported individually, so the summary never
   loses information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, Sequence

from repro.core.canonical import CanonicalRelation
from repro.core.explanations import ExplanationSet
from repro.graphs.bipartite import Side


@dataclass(frozen=True)
class SummaryPattern:
    """A conjunctive pattern summarizing part of the explanations."""

    side: Side
    conditions: tuple[tuple[str, object], ...]
    covered_targets: int
    covered_others: int

    @property
    def precision(self) -> float:
        total = self.covered_targets + self.covered_others
        return self.covered_targets / total if total else 0.0

    def matches(self, record: dict) -> bool:
        return all(record.get(attribute) == value for attribute, value in self.conditions)

    def describe(self) -> str:
        clauses = " AND ".join(f"{attribute} = {value!r}" for attribute, value in self.conditions)
        return (
            f"[{self.side.value}] {clauses}  "
            f"(covers {self.covered_targets} explained tuples, precision {self.precision:.2f})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SummaryPattern({self.describe()})"


@dataclass
class ExplanationSummary:
    """The summarized explanations ``E_S``: patterns plus residual singletons."""

    patterns: list[SummaryPattern] = field(default_factory=list)
    residual_keys: list[tuple[str, str]] = field(default_factory=list)

    @property
    def size(self) -> int:
        """``|E_S|``: number of patterns plus uncovered explanations."""
        return len(self.patterns) + len(self.residual_keys)

    def describe(self) -> str:
        lines = [pattern.describe() for pattern in self.patterns]
        if self.residual_keys:
            lines.append(
                f"+ {len(self.residual_keys)} individual explanations not covered by any pattern"
            )
        return "\n".join(lines) if lines else "(no explanations to summarize)"


class PatternSummarizer:
    """Greedy pattern-cover summarizer over explanation tuples."""

    def __init__(
        self,
        *,
        min_precision: float = 0.75,
        max_conditions: int = 2,
        max_patterns: int = 50,
        other_penalty: float = 1.0,
    ):
        self.min_precision = min_precision
        self.max_conditions = max_conditions
        self.max_patterns = max_patterns
        self.other_penalty = other_penalty

    # -- candidate generation -----------------------------------------------------------
    @staticmethod
    def _records_for(
        relation: CanonicalRelation, keys: Iterable[str]
    ) -> list[tuple[str, dict]]:
        """(canonical key, full provenance record) pairs for the given canonical keys.

        When a canonical tuple groups several provenance tuples, each member
        contributes its full record; when no provenance is attached, the
        canonical values themselves are used.
        """
        records: list[tuple[str, dict]] = []
        for key in keys:
            canonical_tuple = relation.get(key)
            if canonical_tuple is None:
                continue
            members = relation.provenance_members(key)
            if members:
                for member in members:
                    records.append((key, dict(member.values)))
            else:
                records.append((key, dict(canonical_tuple.values)))
        return records

    def _candidate_patterns(
        self, target_records: Sequence[dict], attributes: Sequence[str]
    ) -> list[tuple[tuple[str, object], ...]]:
        singles: set[tuple[str, object]] = set()
        for record in target_records:
            for attribute in attributes:
                value = record.get(attribute)
                if value is not None and _is_hashable(value):
                    singles.add((attribute, value))
        candidates: list[tuple[tuple[str, object], ...]] = [(single,) for single in singles]
        if self.max_conditions >= 2:
            for first, second in combinations(sorted(singles, key=repr), 2):
                if first[0] != second[0]:
                    candidates.append((first, second))
        return candidates

    # -- summarization per side ------------------------------------------------------------
    def _summarize_side(
        self,
        relation: CanonicalRelation,
        target_keys: set[str],
        side: Side,
    ) -> tuple[list[SummaryPattern], list[tuple[str, str]]]:
        if not target_keys:
            return [], []
        all_keys = set(relation.keys())
        target_records = self._records_for(relation, sorted(target_keys))
        other_records = self._records_for(relation, sorted(all_keys - target_keys))
        if not target_records:
            return [], [(side.value, key) for key in sorted(target_keys)]

        attributes = sorted({name for _, record in target_records for name in record})
        candidates = self._candidate_patterns([r for _, r in target_records], attributes)

        uncovered: dict[int, tuple[str, dict]] = dict(enumerate(target_records))
        patterns: list[SummaryPattern] = []

        while uncovered and len(patterns) < self.max_patterns:
            best_pattern: tuple[tuple[str, object], ...] | None = None
            best_score = 0.0
            best_cover: list[int] = []
            best_others = 0
            for conditions in candidates:
                cover = [
                    index
                    for index, (_, record) in uncovered.items()
                    if all(record.get(a) == v for a, v in conditions)
                ]
                if len(cover) < 2:
                    continue  # a pattern covering < 2 targets is no better than listing them
                others = sum(
                    1
                    for _, record in other_records
                    if all(record.get(a) == v for a, v in conditions)
                )
                precision = len(cover) / (len(cover) + others)
                if precision < self.min_precision:
                    continue
                score = len(cover) - self.other_penalty * others
                if score > best_score:
                    best_score = score
                    best_pattern = conditions
                    best_cover = cover
                    best_others = others
            if best_pattern is None:
                break
            patterns.append(
                SummaryPattern(side, best_pattern, len(best_cover), best_others)
            )
            for index in best_cover:
                uncovered.pop(index, None)

        residual_keys = sorted({key for key, _ in uncovered.values()})
        return patterns, [(side.value, key) for key in residual_keys]

    # -- public API ----------------------------------------------------------------------
    def summarize(
        self,
        explanations: ExplanationSet,
        canonical_left: CanonicalRelation,
        canonical_right: CanonicalRelation,
    ) -> ExplanationSummary:
        """Summarize an explanation set over both canonical relations."""
        summary = ExplanationSummary()
        for side, relation in ((Side.LEFT, canonical_left), (Side.RIGHT, canonical_right)):
            targets = explanations.explained_keys(side)
            patterns, residuals = self._summarize_side(relation, targets, side)
            summary.patterns.extend(patterns)
            summary.residual_keys.extend(residuals)
        return summary


def _is_hashable(value) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True

"""Explain3D core: the paper's primary contribution.

The pipeline has three stages (Section 3):

1. **Canonicalization** (:mod:`repro.core.canonical`) -- derive provenance
   relations, group them by the matched attributes and sum impacts.
2. **MILP refinement** (:mod:`repro.core.milp_model`,
   :mod:`repro.core.partitioning`) -- encode the EXP-3D problem as a mixed
   integer linear program, optionally split it with the smart-partitioning
   optimizer, solve, and decode explanations plus the evidence mapping.
3. **Summarization** (:mod:`repro.core.summarize`) -- compress the
   explanations into conjunctive patterns.

:class:`repro.core.explain3d.Explain3D` is the user-facing facade tying the
stages together; :class:`repro.core.problem.ExplainProblem` is the bundled
input (canonical relations, attribute matches, initial tuple mapping, priors).
"""

from repro.core.explanations import (
    ExplanationSet,
    ProvenanceExplanation,
    ValueExplanation,
)
from repro.core.canonical import CanonicalRelation, CanonicalTuple, canonicalize
from repro.core.scoring import Priors, ExplanationScorer, derive_explanations_from_mapping
from repro.core.problem import ExplainProblem, build_problem
from repro.core.milp_model import MILPTransformation
from repro.core.partitioning import PartitionedSolver, SolveConfig
from repro.core.summarize import ExplanationSummary, PatternSummarizer, SummaryPattern
from repro.core.explain3d import Explain3D, Explain3DConfig, ExplanationReport

__all__ = [
    "ProvenanceExplanation",
    "ValueExplanation",
    "ExplanationSet",
    "CanonicalTuple",
    "CanonicalRelation",
    "canonicalize",
    "Priors",
    "ExplanationScorer",
    "derive_explanations_from_mapping",
    "ExplainProblem",
    "build_problem",
    "MILPTransformation",
    "SolveConfig",
    "PartitionedSolver",
    "PatternSummarizer",
    "SummaryPattern",
    "ExplanationSummary",
    "Explain3D",
    "Explain3DConfig",
    "ExplanationReport",
]

"""Stage 2: the MILP transformation of the EXP-3D problem (Section 3.2).

For a pair of canonical relations ``T1, T2`` with an initial tuple mapping the
transformation introduces, per Algorithm 1:

* a binary ``x_t`` per canonical tuple -- the tuple is a provenance-based
  explanation (Definition 2.5: it maps to no tuple on the other side);
* a binary ``z_ij`` per initial tuple match -- the match is selected into the
  evidence mapping;
* per *anchor* tuple (the side whose tuples may have degree > 1 in a valid
  mapping -- the right side for ``<=``/equivalence matches, the left side for
  ``>=``), a binary ``y_t`` ("impact unchanged") and a continuous refined
  impact ``I*_t``.

The formulation follows Equations (7)-(13) with two strengthenings that do not
change the optimum but make the program far easier to solve than a literal
big-M transcription:

1. **Unmatched tuples are provenance explanations.**  Definition 2.5 ties the
   two directly, so we add ``x_t >= 1 - sum_j z_tj`` (and ``z_ij <= 1 - x_t``),
   which makes ``x_t`` exactly "tuple t has no selected match".
2. **Value corrections are attributed to anchor tuples.**  Within a component
   anchored at ``t_j``, balancing the impacts requires at most one correction,
   and correcting the anchor (``I*_j = sum of the selected neighbours' original
   impacts``) is always optimal.  Non-anchor tuples therefore keep their
   original impacts, and the component impact-equality constraint
   (Equations (11)-(12)) becomes the *linear* equation
   ``sum_i z_ij * I_i = I*_j`` -- the products involve constants only.

The objective is Equation (13): per-tuple log-probabilities (Equation (8),
using the semantically consistent reading of Equation (3)) plus per-match
log-probabilities (Equation (9)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.canonical import CanonicalRelation, CanonicalTuple
from repro.core.explanations import ExplanationSet, ProvenanceExplanation, ValueExplanation
from repro.core.scoring import MatchLogProbability, Priors
from repro.graphs.bipartite import Side
from repro.matching.attribute_match import SemanticRelation
from repro.matching.tuple_matching import TupleMapping, TupleMatch
from repro.solver.backends import MILPSolution, MILPSolver, default_solver
from repro.solver.linearize import add_equality_indicator
from repro.solver.model import ConstraintSense, LinearExpression, MILPModel, ObjectiveSense

_IMPACT_TOLERANCE = 1e-6


@dataclass
class _AnchorVariables:
    """Variables of an anchor-side tuple."""

    removed: object          # x_t
    unchanged: object        # y_t (kept with original impact)
    refined_impact: object   # I*_t


class MILPTransformation:
    """Builds and solves the MILP for one (sub-)problem of EXP-3D."""

    def __init__(
        self,
        canonical_left: CanonicalRelation,
        canonical_right: CanonicalRelation,
        mapping: TupleMapping,
        relation: SemanticRelation,
        priors: Priors = Priors(),
        *,
        solver: MILPSolver | None = None,
        name: str = "exp3d",
    ):
        self.canonical_left = canonical_left
        self.canonical_right = canonical_right
        self.mapping = mapping
        self.relation = relation
        self.priors = priors
        self.solver = solver or default_solver()
        self.name = name

        self._model: MILPModel | None = None
        self._removed_vars: dict[tuple[str, str], object] = {}
        self._anchor_vars: dict[str, _AnchorVariables] = {}
        self._match_vars: dict[tuple[str, str], object] = {}

    # -- orientation ------------------------------------------------------------------
    def anchor_side(self) -> Side:
        """The side whose tuples may have degree > 1 (component anchors)."""
        if self.relation.right_degree_limited and not self.relation.left_degree_limited:
            return Side.LEFT
        return Side.RIGHT

    def _anchor_relation(self) -> CanonicalRelation:
        return self.canonical_left if self.anchor_side() is Side.LEFT else self.canonical_right

    def _other_relation(self) -> CanonicalRelation:
        return self.canonical_right if self.anchor_side() is Side.LEFT else self.canonical_left

    def _anchor_key_of(self, match: TupleMatch) -> str:
        return match.left_key if self.anchor_side() is Side.LEFT else match.right_key

    def _other_key_of(self, match: TupleMatch) -> str:
        return match.right_key if self.anchor_side() is Side.LEFT else match.left_key

    def _usable_matches(self) -> list[TupleMatch]:
        """Matches whose both endpoints lie in this (sub-)problem."""
        anchor_relation = self._anchor_relation()
        other_relation = self._other_relation()
        usable = []
        for match in self.mapping:
            if self._anchor_key_of(match) in anchor_relation and self._other_key_of(match) in other_relation:
                usable.append(match)
        return usable

    # -- model construction --------------------------------------------------------------
    def build(self) -> MILPModel:
        """Construct the MILP (Algorithm 1, lines 1-10)."""
        model = MILPModel(self.name)
        priors = self.priors
        a = priors.removed
        u = priors.kept_unchanged
        v = priors.kept_changed

        anchor_side = self.anchor_side()
        other_side = anchor_side.other()
        anchor_relation = self._anchor_relation()
        other_relation = self._other_relation()
        matches = self._usable_matches()

        matches_by_anchor: dict[str, list[TupleMatch]] = {}
        matches_by_other: dict[str, list[TupleMatch]] = {}
        for match in matches:
            matches_by_anchor.setdefault(self._anchor_key_of(match), []).append(match)
            matches_by_other.setdefault(self._other_key_of(match), []).append(match)

        objective = LinearExpression()

        # -- non-anchor tuples: only x_t ----------------------------------------------
        for canonical_tuple in other_relation:
            tag = f"{other_side.value}[{canonical_tuple.key}]"
            removed = model.add_binary(f"x_{tag}")
            self._removed_vars[(other_side.value, canonical_tuple.key)] = removed
            # Equation (8) with the impact fixed: kept tuples keep their impact.
            objective = objective + u + (a - u) * removed

        # -- anchor tuples: x_t, y_t, I*_t ---------------------------------------------
        for canonical_tuple in anchor_relation:
            tag = f"{anchor_side.value}[{canonical_tuple.key}]"
            removed = model.add_binary(f"x_{tag}")
            unchanged = model.add_binary(f"y_{tag}")
            neighbour_impact = sum(
                other_relation[self._other_key_of(match)].impact
                for match in matches_by_anchor.get(canonical_tuple.key, [])
            )
            upper = max(canonical_tuple.impact, neighbour_impact, 0.0)
            lower = min(canonical_tuple.impact, 0.0)
            refined = model.add_continuous(f"istar_{tag}", lower=lower, upper=upper)

            self._removed_vars[(anchor_side.value, canonical_tuple.key)] = removed
            self._anchor_vars[canonical_tuple.key] = _AnchorVariables(removed, unchanged, refined)

            # y is only meaningful for kept tuples.
            model.add_constraint(
                unchanged + removed, ConstraintSense.LESS_EQUAL, 1.0, f"yx_{tag}"
            )
            # Equation (7): y = 1 forces I* = I.
            add_equality_indicator(
                model,
                unchanged,
                refined,
                canonical_tuple.impact,
                big_m=(upper - lower) + abs(canonical_tuple.impact) + 1.0,
                name=f"eq_{tag}",
            )
            # Equation (8): a removed tuple scores `a`, a kept unchanged tuple `u`,
            # a kept corrected tuple `v`.
            objective = objective + v + (a - v) * removed + (u - v) * unchanged

        # -- matches: z_ij --------------------------------------------------------------
        for match in matches:
            anchor_key = self._anchor_key_of(match)
            other_key = self._other_key_of(match)
            tag = f"{match.left_key}|{match.right_key}"
            selected = model.add_binary(f"z_{tag}")
            self._match_vars[match.pair] = selected

            # A selected match requires both endpoints to be kept (Equation 9).
            model.add_constraint(
                selected + self._removed_vars[(anchor_side.value, anchor_key)],
                ConstraintSense.LESS_EQUAL,
                1.0,
                f"keep_a_{tag}",
            )
            model.add_constraint(
                selected + self._removed_vars[(other_side.value, other_key)],
                ConstraintSense.LESS_EQUAL,
                1.0,
                f"keep_o_{tag}",
            )
            terms = MatchLogProbability.of(match.probability)
            objective = objective + terms.rejected + (terms.selected - terms.rejected) * selected

        # -- Definition 2.5: a kept tuple must have a selected match ----------------------
        for relation, side, by_key in (
            (other_relation, other_side, matches_by_other),
            (anchor_relation, anchor_side, matches_by_anchor),
        ):
            for canonical_tuple in relation:
                tag = f"{side.value}[{canonical_tuple.key}]"
                removed = self._removed_vars[(side.value, canonical_tuple.key)]
                incident = by_key.get(canonical_tuple.key, [])
                if not incident:
                    model.add_constraint(removed, ConstraintSense.EQUAL, 1.0, f"forced_{tag}")
                    continue
                gate = LinearExpression.from_variable(removed)
                for match in incident:
                    gate = gate + self._match_vars[match.pair]
                model.add_constraint(gate, ConstraintSense.GREATER_EQUAL, 1.0, f"matched_{tag}")

        # -- Equation (10): valid-mapping cardinality -------------------------------------
        self._add_degree_constraints(model, matches_by_anchor, matches_by_other)

        # -- Equations (11)-(12): component impact equality --------------------------------
        for canonical_tuple in anchor_relation:
            incident = matches_by_anchor.get(canonical_tuple.key, [])
            variables = self._anchor_vars[canonical_tuple.key]
            balance = LinearExpression()
            for match in incident:
                impact = other_relation[self._other_key_of(match)].impact
                balance = balance + impact * self._match_vars[match.pair]
            balance = balance - variables.refined_impact
            model.add_constraint(
                balance, ConstraintSense.EQUAL, 0.0, f"balance_{anchor_side.value}[{canonical_tuple.key}]"
            )

        model.set_objective(objective, ObjectiveSense.MAXIMIZE)
        self._model = model
        return model

    def _add_degree_constraints(self, model, matches_by_anchor, matches_by_other) -> None:
        anchor_side = self.anchor_side()
        anchor_limited = (
            self.relation.left_degree_limited
            if anchor_side is Side.LEFT
            else self.relation.right_degree_limited
        )
        # The non-anchor side is degree-limited by construction of the anchor choice.
        for key, incident in matches_by_other.items():
            if len(incident) <= 1:
                continue
            expr = LinearExpression()
            for match in incident:
                expr = expr + self._match_vars[match.pair]
            model.add_constraint(expr, ConstraintSense.LESS_EQUAL, 1.0, f"deg_o_{key}")
        if anchor_limited:
            for key, incident in matches_by_anchor.items():
                if len(incident) <= 1:
                    continue
                expr = LinearExpression()
                for match in incident:
                    expr = expr + self._match_vars[match.pair]
                model.add_constraint(expr, ConstraintSense.LESS_EQUAL, 1.0, f"deg_a_{key}")

    # -- solving and decoding ---------------------------------------------------------------
    def solve(self) -> ExplanationSet:
        """Build (if needed), solve, and decode the explanation set (Algorithm 1)."""
        if not len(self.canonical_left) and not len(self.canonical_right):
            return ExplanationSet()
        model = self._model or self.build()
        solution = self.solver.solve(model)
        return self.decode(solution)

    def decode(self, solution: MILPSolution) -> ExplanationSet:
        """DecodeVariables: translate the solved assignment into explanations."""
        provenance: list[ProvenanceExplanation] = []
        value: list[ValueExplanation] = []
        evidence = TupleMapping()
        anchor_side = self.anchor_side()
        anchor_relation = self._anchor_relation()

        for (side_value, key), variable in self._removed_vars.items():
            if solution.binary(variable.name):
                provenance.append(ProvenanceExplanation(Side(side_value), key))

        for key, variables in self._anchor_vars.items():
            if solution.binary(variables.removed.name):
                continue
            canonical_tuple = anchor_relation.get(key)
            refined = solution.value(variables.refined_impact.name)
            if canonical_tuple is not None and abs(refined - canonical_tuple.impact) > _IMPACT_TOLERANCE:
                value.append(
                    ValueExplanation(anchor_side, key, canonical_tuple.impact, round(refined, 6))
                )

        for pair, variable in self._match_vars.items():
            if solution.binary(variable.name):
                probability = self.mapping.probability(*pair) or 1.0
                evidence.add(TupleMatch(pair[0], pair[1], probability))

        return ExplanationSet(
            provenance=provenance,
            value=value,
            evidence=evidence,
            objective=solution.objective,
        )

    def _lookup(self, side: Side, key: str) -> Optional[CanonicalTuple]:
        relation = self.canonical_left if side is Side.LEFT else self.canonical_right
        return relation.get(key)

    # -- introspection -----------------------------------------------------------------------
    @property
    def model(self) -> MILPModel | None:
        return self._model

    def problem_size(self) -> dict[str, int]:
        """Sizes used in reports: tuples, matches, variables, constraints."""
        model = self._model or self.build()
        return {
            "tuples": len(self.canonical_left) + len(self.canonical_right),
            "matches": len(self.mapping),
            "variables": model.num_variables,
            "constraints": model.num_constraints,
        }

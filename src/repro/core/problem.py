"""The bundled input of the EXP-3D problem (Problem 1).

An :class:`ExplainProblem` holds everything Stage 2 needs: the two canonical
relations, the attribute matches that made the queries comparable, the initial
probabilistic tuple mapping, and the priors.  :func:`build_problem` constructs
it from raw queries and databases, running Stage 1 (provenance derivation,
schema matching if needed, canonicalization, candidate generation and
similarity-to-probability calibration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.canonical import CanonicalRelation, canonicalize
from repro.core.scoring import Priors
from repro.graphs.bipartite import MatchGraph, Side
from repro.matching.attribute_match import AttributeMatching
from repro.matching.calibration import calibrate_matches
from repro.matching.features import TupleFeatureCache
from repro.matching.schema_matcher import infer_attribute_matches
from repro.matching.tuple_matching import (
    CandidateMatch,
    TupleMapping,
    TupleMatch,
    generate_candidates,
)
from repro.relational.errors import EmptyAggregateError
from repro.relational.executor import Database, scalar_result
from repro.relational.provenance import ProvenanceRelation, provenance_relation
from repro.relational.query import Query


class NotComparableError(ValueError):
    """Raised when two queries share no attribute match (Definition 2.2)."""


@dataclass
class Stage1Artifacts:
    """Reusable Stage-1 byproducts, used as an in/out parameter of :func:`build_problem`.

    Any field left ``None`` is computed as usual and *stored back*, so a
    long-lived caller (the service layer) can harvest the artifacts of a cold
    build and inject them into later builds against the same databases:

    * ``provenance_left`` / ``provenance_right`` skip query re-execution;
    * ``left_features`` / ``right_features`` skip re-tokenization (validated
      against the canonical tuples, rebuilt when stale);
    * ``candidates`` are the *unfiltered* scored candidate matches -- they are
      independent of ``min_similarity``, which is applied per request, so one
      scored list serves similarity-threshold perturbations too.
    """

    provenance_left: ProvenanceRelation | None = None
    provenance_right: ProvenanceRelation | None = None
    left_features: TupleFeatureCache | None = None
    right_features: TupleFeatureCache | None = None
    candidates: list[CandidateMatch] | None = None


@dataclass
class ExplainProblem:
    """The input of Problem 1: canonical relations, matches, mapping, priors."""

    canonical_left: CanonicalRelation
    canonical_right: CanonicalRelation
    attribute_matches: AttributeMatching
    mapping: TupleMapping
    priors: Priors = field(default_factory=Priors)
    query_left: Optional[Query] = None
    query_right: Optional[Query] = None
    provenance_left: Optional[ProvenanceRelation] = None
    provenance_right: Optional[ProvenanceRelation] = None
    result_left: Optional[float] = None
    result_right: Optional[float] = None

    @property
    def relation(self):
        """The dominant semantic relation governing mapping cardinality."""
        return self.attribute_matches.dominant_relation()

    @property
    def disagreement(self) -> Optional[float]:
        """Difference of the two query results (None when either is unknown)."""
        if self.result_left is None or self.result_right is None:
            return None
        return self.result_left - self.result_right

    def match_graph(self) -> MatchGraph:
        """The bipartite graph ``G = (T1, T2, M_tuple)`` used by Section 4."""
        return MatchGraph(
            self.canonical_left.keys(), self.canonical_right.keys(), self.mapping
        )

    def statistics(self) -> dict:
        """The per-dataset statistics reported in Figure 4."""
        return {
            "provenance_left": len(self.provenance_left) if self.provenance_left else None,
            "provenance_right": len(self.provenance_right) if self.provenance_right else None,
            "canonical_left": len(self.canonical_left),
            "canonical_right": len(self.canonical_right),
            "initial_matches": len(self.mapping),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExplainProblem(|T1|={len(self.canonical_left)}, |T2|={len(self.canonical_right)}, "
            f"|M|={len(self.mapping)}, relation={self.relation})"
        )


def _scored_candidates(
    canonical_left: CanonicalRelation,
    canonical_right: CanonicalRelation,
    attribute_matches: AttributeMatching,
    artifacts: Stage1Artifacts,
) -> list[CandidateMatch]:
    """The unfiltered scored candidate list, reusing/harvesting ``artifacts``.

    Scoring with a ``-inf`` threshold keeps every pair the (exact) blocker
    emits, so the list can be filtered down to any requested
    ``min_similarity`` afterwards without rescoring.  Feature caches are
    validated against the canonical tuples and rebuilt when stale, then
    stored back for the next request.
    """
    attribute_pairs = attribute_matches.attribute_pairs()
    left_attrs = [pair[0] for pair in attribute_pairs]
    right_attrs = [pair[1] for pair in attribute_pairs]
    left_features = artifacts.left_features
    if left_features is None or not left_features.covers(len(canonical_left), left_attrs):
        left_features = TupleFeatureCache.from_tuples(canonical_left.tuples, left_attrs)
    right_features = artifacts.right_features
    if right_features is None or not right_features.covers(len(canonical_right), right_attrs):
        right_features = TupleFeatureCache.from_tuples(canonical_right.tuples, right_attrs)
    artifacts.left_features = left_features
    artifacts.right_features = right_features

    if artifacts.candidates is None:
        artifacts.candidates = generate_candidates(
            canonical_left.tuples,
            canonical_right.tuples,
            attribute_matches,
            min_similarity=float("-inf"),
            left_features=left_features,
            right_features=right_features,
        )
    return artifacts.candidates


def _similarity_as_probability(candidates) -> TupleMapping:
    """Fallback when no labeled pairs exist: clamp similarity into a probability."""
    mapping = TupleMapping()
    for candidate in candidates:
        probability = min(max(candidate.similarity, 1e-3), 1.0 - 1e-3)
        mapping.add(
            TupleMatch(candidate.left_key, candidate.right_key, probability, candidate.similarity)
        )
    return mapping


def build_problem(
    query_left: Query,
    db_left: Database,
    query_right: Query,
    db_right: Database,
    *,
    attribute_matches: AttributeMatching | None = None,
    tuple_mapping: TupleMapping | None = None,
    labeled_pairs: set[tuple[str, str]] | None = None,
    priors: Priors = Priors(),
    num_buckets: int = 50,
    min_similarity: float = 0.0,
    min_match_probability: float = 0.0,
    compute_results: bool = True,
    artifacts: Stage1Artifacts | None = None,
) -> ExplainProblem:
    """Run Stage 1 and assemble an :class:`ExplainProblem`.

    ``labeled_pairs`` are gold canonical-key pairs used to calibrate similarity
    scores into probabilities (Section 5.1.2); when absent, similarities are
    used directly as (clamped) probabilities.  ``tuple_mapping`` overrides the
    whole record-linkage step with an externally supplied initial mapping.
    ``artifacts`` injects (and harvests) reusable Stage-1 byproducts -- see
    :class:`Stage1Artifacts`; the produced problem is identical with or
    without it.
    """
    # Stage 1 provenance capture runs through the query planner (repro.plan):
    # rewrites + hash joins replace the naive tree walk, with results (rows,
    # order, lineage) fingerprint-identical to the reference interpreter.
    if artifacts is not None and artifacts.provenance_left is not None:
        provenance_left = artifacts.provenance_left
    else:
        provenance_left = provenance_relation(
            query_left, db_left, label=f"P[{query_left.name}]", planner="optimized"
        )
    if artifacts is not None and artifacts.provenance_right is not None:
        provenance_right = artifacts.provenance_right
    else:
        provenance_right = provenance_relation(
            query_right, db_right, label=f"P[{query_right.name}]", planner="optimized"
        )
    if artifacts is not None:
        artifacts.provenance_left = provenance_left
        artifacts.provenance_right = provenance_right

    if attribute_matches is None:
        attribute_matches = infer_attribute_matches(provenance_left, provenance_right)
    attribute_matches = attribute_matches.normalized()
    if not attribute_matches.comparable:
        raise NotComparableError(
            f"queries {query_left.name} and {query_right.name} share no attribute match"
        )

    canonical_left = canonicalize(provenance_left, attribute_matches, Side.LEFT, label="T1")
    canonical_right = canonicalize(provenance_right, attribute_matches, Side.RIGHT, label="T2")

    if tuple_mapping is None:
        if artifacts is None:
            candidates = generate_candidates(
                canonical_left.tuples,
                canonical_right.tuples,
                attribute_matches,
                min_similarity=min_similarity,
            )
        else:
            candidates = _scored_candidates(
                canonical_left, canonical_right, attribute_matches, artifacts
            )
            # The harvested list is unfiltered; apply the request's threshold
            # with the same strict comparison the generator uses.
            candidates = [c for c in candidates if c.similarity > min_similarity]
        if labeled_pairs is not None:
            tuple_mapping = calibrate_matches(
                candidates,
                labeled_pairs,
                num_buckets=num_buckets,
                min_probability=min_match_probability,
            )
        else:
            tuple_mapping = _similarity_as_probability(candidates)

    result_left = result_right = None
    if compute_results:

        def scalar(query, db, planner, pointer):
            # An all-NULL aggregate input is not a planner failure: both the
            # optimized and the naive path raise it identically, so degrading
            # (or collapsing the results to None) would just hide a typed,
            # user-actionable condition.  Tag it with the JSON pointer of the
            # offending query and let it surface as a 400 envelope.
            try:
                return scalar_result(query, db, planner=planner)
            except EmptyAggregateError as exc:
                exc.path = exc.path or pointer
                raise

        try:
            result_left = scalar(query_left, db_left, "optimized", "/query_left")
            result_right = scalar(query_right, db_right, "optimized", "/query_right")
        except EmptyAggregateError:
            raise
        except Exception:
            # A planner failure must not erase the results (the problem may be
            # cached and served to later requests): degrade to the naive
            # interpreter first.  Only when that fails too is the query a
            # non-aggregate with no scalar result, and the disagreement is
            # judged on provenance rather than a single number.
            try:
                result_left = scalar(query_left, db_left, "naive", "/query_left")
                result_right = scalar(query_right, db_right, "naive", "/query_right")
            except EmptyAggregateError:
                raise
            except Exception:
                result_left = result_right = None

    return ExplainProblem(
        canonical_left=canonical_left,
        canonical_right=canonical_right,
        attribute_matches=attribute_matches,
        mapping=tuple_mapping,
        priors=priors,
        query_left=query_left,
        query_right=query_right,
        provenance_left=provenance_left,
        provenance_right=provenance_right,
        result_left=result_left,
        result_right=result_right,
    )

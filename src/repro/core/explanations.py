"""Explanations and their evidence (Definition 2.5).

The output of Explain3D is ``E = (Delta, delta | M*_tuple)``:

* ``Delta`` -- provenance-based explanations: canonical tuples on either side
  that have no counterpart on the other side;
* ``delta`` -- value-based explanations: impact corrections ``I -> I*``;
* ``M*_tuple`` -- the evidence mapping, a valid refinement of the initial
  tuple mapping that supports the explanations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.graphs.bipartite import Side
from repro.matching.tuple_matching import TupleMapping


@dataclass(frozen=True)
class ProvenanceExplanation:
    """A mismatched tuple: ``key`` (canonical tuple) on ``side`` has no counterpart."""

    side: Side
    key: str

    @property
    def identity(self) -> tuple[str, str]:
        return (self.side.value, self.key)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProvenanceExplanation({self.side.value}:{self.key})"


@dataclass(frozen=True)
class ValueExplanation:
    """An impact correction ``I -> I*`` for a kept tuple."""

    side: Side
    key: str
    old_impact: float
    new_impact: float

    @property
    def identity(self) -> tuple[str, str]:
        return (self.side.value, self.key)

    @property
    def delta(self) -> float:
        return self.new_impact - self.old_impact

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ValueExplanation({self.side.value}:{self.key}, "
            f"{self.old_impact:g} -> {self.new_impact:g})"
        )


@dataclass
class ExplanationSet:
    """The full output ``E = (Delta, delta | M*_tuple)`` plus its objective value."""

    provenance: list[ProvenanceExplanation] = field(default_factory=list)
    value: list[ValueExplanation] = field(default_factory=list)
    evidence: TupleMapping = field(default_factory=TupleMapping)
    objective: float = 0.0

    # -- set views used by the evaluation metrics ----------------------------------
    def provenance_identities(self) -> set[tuple[str, str]]:
        return {explanation.identity for explanation in self.provenance}

    def value_identities(self) -> set[tuple[str, str]]:
        return {explanation.identity for explanation in self.value}

    def explanation_identities(self) -> set[tuple[str, str, str]]:
        """All explanations as ``(kind, side, key)`` triples."""
        identities = {("provenance",) + explanation.identity for explanation in self.provenance}
        identities |= {("value",) + explanation.identity for explanation in self.value}
        return identities

    def evidence_pairs(self) -> frozenset[tuple[str, str]]:
        """A frozen view of the selected (left, right) pairs -- do not mutate."""
        return self.evidence.pairs()

    def explained_keys(self, side: Side) -> set[str]:
        """Canonical tuple keys on ``side`` touched by any explanation."""
        keys = {e.key for e in self.provenance if e.side is side}
        keys |= {e.key for e in self.value if e.side is side}
        return keys

    # -- bookkeeping ----------------------------------------------------------------
    @property
    def size(self) -> int:
        """``|E|``: the number of individual explanations."""
        return len(self.provenance) + len(self.value)

    def merge(self, other: "ExplanationSet") -> "ExplanationSet":
        """Combine explanation sets from independently solved sub-problems."""
        merged_evidence = TupleMapping(self.evidence)
        for match in other.evidence:
            merged_evidence.add(match)
        return ExplanationSet(
            provenance=self.provenance + other.provenance,
            value=self.value + other.value,
            evidence=merged_evidence,
            objective=self.objective + other.objective,
        )

    @staticmethod
    def merge_all(parts: Iterable["ExplanationSet"]) -> "ExplanationSet":
        result = ExplanationSet()
        for part in parts:
            result = result.merge(part)
        return result

    def describe(self, *, max_items: int = 10) -> str:
        """Human-readable multi-line description used by the examples."""
        lines = [
            f"{len(self.provenance)} provenance-based and {len(self.value)} value-based "
            f"explanations, {len(self.evidence)} evidence matches "
            f"(objective {self.objective:.3f})"
        ]
        for explanation in self.provenance[:max_items]:
            lines.append(f"  - missing counterpart: {explanation.side.value}:{explanation.key}")
        if len(self.provenance) > max_items:
            lines.append(f"  ... {len(self.provenance) - max_items} more provenance explanations")
        for explanation in self.value[:max_items]:
            lines.append(
                f"  - wrong impact: {explanation.side.value}:{explanation.key} "
                f"{explanation.old_impact:g} -> {explanation.new_impact:g}"
            )
        if len(self.value) > max_items:
            lines.append(f"  ... {len(self.value) - max_items} more value explanations")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExplanationSet({len(self.provenance)} provenance, {len(self.value)} value, "
            f"{len(self.evidence)} evidence)"
        )

"""Reproduction of "Explain3D: Explaining Disagreements in Disjoint Datasets" (VLDB 2019).

The public API re-exports the pieces most users need:

* :class:`Explain3D` / :class:`Explain3DConfig` -- the end-to-end framework;
* the relational substrate (:class:`Database`, :class:`Relation`, query
  builders) to express the two disagreeing queries;
* :func:`matching` and :class:`SemanticRelation` to declare attribute matches;
* the baselines and dataset generators used by the benchmark harness live in
  :mod:`repro.baselines`, :mod:`repro.datasets` and :mod:`repro.evaluation`;
* the long-lived explanation service (register databases once, serve many
  requests with content-addressed artifact caching, async jobs and a JSON
  HTTP API) lives in :mod:`repro.service` (``python -m repro.service``);
* :func:`parse_query` turns a real SQL string into a bound :class:`Query`
  (the full frontend lives in :mod:`repro.sql`; ``python -m repro.sql``
  parses, validates, pretty-prints and explains from the command line).
"""

from repro.core.explain3d import Explain3D, Explain3DConfig, ExplanationReport
from repro.core.explanations import ExplanationSet, ProvenanceExplanation, ValueExplanation
from repro.core.problem import ExplainProblem, build_problem
from repro.core.scoring import Priors
from repro.core.summarize import ExplanationSummary, SummaryPattern
from repro.graphs.bipartite import Side
from repro.matching.attribute_match import (
    AttributeMatch,
    AttributeMatching,
    SemanticRelation,
    matching,
)
from repro.matching.tuple_matching import TupleMapping, TupleMatch
from repro.relational.executor import Database, execute, scalar_result
from repro.relational.expressions import col
from repro.relational.query import (
    Aggregate,
    AggregateFunction,
    Join,
    Project,
    Query,
    Scan,
    Select,
    Union,
    aggregate_query,
    count_query,
    projection_query,
    sum_query,
)
from repro.plan import PhysicalPlan, PlanExplanation, plan_node, plan_query
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, DataType, Schema
from repro.sql import parse_query
from repro.stats import DatabaseStats, RelationStats, StatsCatalog, analyze_database

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Explain3D",
    "Explain3DConfig",
    "ExplanationReport",
    "ExplanationSet",
    "ProvenanceExplanation",
    "ValueExplanation",
    "ExplanationSummary",
    "SummaryPattern",
    "ExplainProblem",
    "build_problem",
    "Priors",
    "Side",
    "AttributeMatch",
    "AttributeMatching",
    "SemanticRelation",
    "matching",
    "TupleMapping",
    "TupleMatch",
    "Database",
    "execute",
    "scalar_result",
    "col",
    "parse_query",
    "PhysicalPlan",
    "PlanExplanation",
    "plan_query",
    "plan_node",
    "DatabaseStats",
    "RelationStats",
    "StatsCatalog",
    "analyze_database",
    "Query",
    "Scan",
    "Select",
    "Project",
    "Join",
    "Union",
    "Aggregate",
    "AggregateFunction",
    "count_query",
    "sum_query",
    "aggregate_query",
    "projection_query",
    "Relation",
    "Schema",
    "Attribute",
    "DataType",
]

"""Plain-text tables for the benchmark harness.

The benchmark modules print the same rows/series the paper's figures report
(method x precision/recall/F-measure, and method x execution time), so a run of
``pytest benchmarks/ --benchmark-only`` regenerates every table/figure in text
form.
"""

from __future__ import annotations

from typing import Sequence

from repro.evaluation.metrics import MethodEvaluation


def format_table(headers: Sequence[str], rows: Sequence[Sequence], *, title: str = "") -> str:
    """Render a list of rows as an aligned plain-text table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max([len(header)] + [len(row[index]) for row in cells]) if cells else len(header)
        for index, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_accuracy_table(
    evaluations: Sequence[MethodEvaluation], *, kind: str = "explanation", title: str = ""
) -> str:
    """A Figure 6a/6b/7a/7b-style accuracy table (method x P/R/F)."""
    rows = []
    for evaluation in evaluations:
        metrics = evaluation.explanation if kind == "explanation" else evaluation.evidence
        rows.append(
            [
                evaluation.method,
                f"{metrics.precision:.3f}",
                f"{metrics.recall:.3f}",
                f"{metrics.f_measure:.3f}",
            ]
        )
    return format_table(
        ["Method", "Precision", "Recall", "F-measure"],
        rows,
        title=title or f"{kind.capitalize()} accuracy",
    )


def format_timing_table(evaluations: Sequence[MethodEvaluation], *, title: str = "") -> str:
    """A Figure 6c/6f-style execution-time table."""
    rows = [
        [evaluation.method, f"{evaluation.seconds:.3f}"] for evaluation in evaluations
    ]
    return format_table(["Method", "Time (sec)"], rows, title=title or "Execution time")

"""Experiment harness: run methods over dataset pairs and aggregate results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.baselines.base import DisagreementExplainer
from repro.core.problem import ExplainProblem
from repro.datasets.gold import GoldStandard
from repro.evaluation.metrics import AccuracyMetrics, MethodEvaluation, evaluate_method_output


@dataclass
class ExperimentResult:
    """Results of running a set of methods on one problem."""

    name: str
    evaluations: list[MethodEvaluation] = field(default_factory=list)
    problem_stats: dict = field(default_factory=dict)

    def by_method(self) -> dict[str, MethodEvaluation]:
        return {evaluation.method: evaluation for evaluation in self.evaluations}

    def method(self, name: str) -> MethodEvaluation:
        return self.by_method()[name]


def run_method(
    method: DisagreementExplainer,
    problem: ExplainProblem,
    gold: GoldStandard,
) -> MethodEvaluation:
    """Run one method on one problem and score it against the gold standard."""
    timed = method.explain_timed(problem)
    return evaluate_method_output(
        method.name, timed.explanations, gold, problem, seconds=timed.seconds
    )


def run_methods(
    methods: Sequence[DisagreementExplainer],
    problem: ExplainProblem,
    gold: GoldStandard,
    *,
    name: str = "experiment",
) -> ExperimentResult:
    """Run several methods on the same problem (the Figure 6 setting)."""
    result = ExperimentResult(name=name, problem_stats=problem.statistics())
    for method in methods:
        result.evaluations.append(run_method(method, problem, gold))
    return result


def _mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def average_evaluations(per_run: Sequence[MethodEvaluation]) -> MethodEvaluation:
    """Average several evaluations of the *same* method (the Figure 7 setting)."""
    if not per_run:
        raise ValueError("cannot average an empty list of evaluations")
    names = {evaluation.method for evaluation in per_run}
    if len(names) != 1:
        raise ValueError(f"averaging requires a single method, got {sorted(names)}")

    explanation = AccuracyMetrics(
        precision=_mean(e.explanation.precision for e in per_run),
        recall=_mean(e.explanation.recall for e in per_run),
    )
    evidence = AccuracyMetrics(
        precision=_mean(e.evidence.precision for e in per_run),
        recall=_mean(e.evidence.recall for e in per_run),
    )
    return MethodEvaluation(
        method=per_run[0].method,
        explanation=explanation,
        evidence=evidence,
        seconds=_mean(e.seconds for e in per_run),
        num_explanations=int(round(_mean(e.num_explanations for e in per_run))),
        extras={"runs": len(per_run)},
    )

"""Accuracy metrics (Section 5.1.4).

Precision is the fraction of derived explanations (or evidence matches) that
are correct; recall is the fraction of the gold standard that was derived;
F-measure is their harmonic mean.

Value-based explanations are compared at the granularity of gold components:
within a connected component of the gold evidence mapping, correcting either
endpoint of an impact mismatch resolves the same disagreement (the MILP is free
to pick either side at identical cost), so a predicted value explanation counts
as correct when the gold standard marks *any* tuple of the same component.
Provenance-based explanations and evidence matches are compared by exact
identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.explanations import ExplanationSet
from repro.core.problem import ExplainProblem
from repro.datasets.gold import GoldStandard
from repro.graphs.bipartite import Side


@dataclass(frozen=True)
class AccuracyMetrics:
    """Precision / recall / F-measure triple."""

    precision: float
    recall: float
    true_positives: int = 0
    predicted: int = 0
    actual: int = 0

    @property
    def f_measure(self) -> float:
        if self.precision + self.recall == 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)

    @classmethod
    def from_sets(cls, predicted: set, actual: set) -> "AccuracyMetrics":
        true_positives = len(predicted & actual)
        precision = true_positives / len(predicted) if predicted else (1.0 if not actual else 0.0)
        recall = true_positives / len(actual) if actual else 1.0
        return cls(precision, recall, true_positives, len(predicted), len(actual))

    def as_dict(self) -> dict:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f_measure": self.f_measure,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AccuracyMetrics(P={self.precision:.3f}, R={self.recall:.3f}, "
            f"F={self.f_measure:.3f})"
        )


class _UnionFind:
    """Union-find over explanation identities, used for gold components."""

    def __init__(self):
        self.parent: dict = {}

    def find(self, node):
        self.parent.setdefault(node, node)
        while self.parent[node] != node:
            self.parent[node] = self.parent[self.parent[node]]
            node = self.parent[node]
        return node

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


def _gold_components(problem: ExplainProblem, gold: GoldStandard) -> _UnionFind:
    components = _UnionFind()
    for key in problem.canonical_left.keys():
        components.find((Side.LEFT.value, key))
    for key in problem.canonical_right.keys():
        components.find((Side.RIGHT.value, key))
    for left_key, right_key in gold.evidence_pairs:
        components.union((Side.LEFT.value, left_key), (Side.RIGHT.value, right_key))
    return components


def evaluate_explanations(
    explanations: ExplanationSet, gold: GoldStandard, problem: ExplainProblem
) -> AccuracyMetrics:
    """Explanation accuracy: provenance by identity, value by gold component."""
    components = _gold_components(problem, gold)

    predicted: set = {("provenance",) + identity for identity in explanations.provenance_identities()}
    actual: set = {("provenance",) + identity for identity in gold.provenance}

    predicted |= {
        ("value", components.find(identity)) for identity in explanations.value_identities()
    }
    actual |= {("value", components.find(identity)) for identity in gold.value}

    return AccuracyMetrics.from_sets(predicted, actual)


def evaluate_evidence(explanations: ExplanationSet, gold: GoldStandard) -> AccuracyMetrics:
    """Evidence accuracy: exact tuple-match pairs."""
    return AccuracyMetrics.from_sets(explanations.evidence_pairs(), set(gold.evidence_pairs))


@dataclass
class MethodEvaluation:
    """All reported numbers for one method on one problem."""

    method: str
    explanation: AccuracyMetrics
    evidence: AccuracyMetrics
    seconds: float = 0.0
    num_explanations: int = 0
    extras: dict = field(default_factory=dict)

    def as_row(self) -> dict:
        return {
            "method": self.method,
            "expl_precision": self.explanation.precision,
            "expl_recall": self.explanation.recall,
            "expl_f": self.explanation.f_measure,
            "evid_precision": self.evidence.precision,
            "evid_recall": self.evidence.recall,
            "evid_f": self.evidence.f_measure,
            "seconds": self.seconds,
        }


def evaluate_method_output(
    method_name: str,
    explanations: ExplanationSet,
    gold: GoldStandard,
    problem: ExplainProblem,
    *,
    seconds: float = 0.0,
) -> MethodEvaluation:
    """Bundle explanation + evidence accuracy for one method run."""
    return MethodEvaluation(
        method=method_name,
        explanation=evaluate_explanations(explanations, gold, problem),
        evidence=evaluate_evidence(explanations, gold),
        seconds=seconds,
        num_explanations=explanations.size,
    )

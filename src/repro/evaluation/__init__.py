"""Evaluation harness: accuracy metrics, method runner, and report tables.

Mirrors Section 5.1.4 of the paper:

* **explanation accuracy** -- precision/recall/F-measure of the derived
  explanations against the gold standard;
* **evidence accuracy** -- precision/recall/F-measure of the refined tuple
  mapping against the gold evidence mapping;
* **execution time** -- wall-clock time of each method.
"""

from repro.evaluation.metrics import (
    AccuracyMetrics,
    MethodEvaluation,
    evaluate_evidence,
    evaluate_explanations,
    evaluate_method_output,
)
from repro.evaluation.harness import (
    ExperimentResult,
    run_method,
    run_methods,
    average_evaluations,
)
from repro.evaluation.reporting import format_accuracy_table, format_table, format_timing_table

__all__ = [
    "AccuracyMetrics",
    "MethodEvaluation",
    "evaluate_explanations",
    "evaluate_evidence",
    "evaluate_method_output",
    "ExperimentResult",
    "run_method",
    "run_methods",
    "average_evaluations",
    "format_table",
    "format_accuracy_table",
    "format_timing_table",
]

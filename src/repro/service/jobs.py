"""Async job queue for the explanation service.

Requests are enqueued as :class:`Job` objects and drained by a bounded pool of
worker threads (layered on the same threading substrate as the Stage-2 worker
pools of :mod:`repro.core.partitioning` -- a job's partitions may themselves
solve in parallel, governed by its ``SolveConfig``).  Jobs expose their
status, can be cancelled while still queued, and batches can be submitted and
awaited as a unit.

The queue is deliberately generic over its runner: anything accepting an
:class:`~repro.service.engine.ExplainRequest`-shaped payload and returning a
result works, which keeps the queue testable in isolation.
"""

from __future__ import annotations

import enum
import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass
class Job:
    """One unit of queued work and its lifecycle."""

    id: str
    request: object
    state: JobState = JobState.QUEUED
    result: object = None
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    _done: threading.Event = field(default_factory=threading.Event, repr=False)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state; True if it did."""
        return self._done.wait(timeout)

    def status(self) -> dict:
        """JSON-safe status snapshot (the ``GET /jobs/<id>`` payload)."""
        return {
            "id": self.id,
            "state": self.state.value,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


@dataclass
class QueueStats:
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
        }


class JobQueue:
    """A bounded-concurrency job queue over a request runner.

    ``runner`` is typically ``ExplainService.explain``.  ``max_workers``
    bounds how many requests run concurrently; further submissions queue up
    (FIFO).  Worker threads are daemonic and started lazily on first submit,
    so constructing a queue is free.
    """

    def __init__(
        self,
        runner: Callable[[object], object],
        *,
        max_workers: int = 2,
        max_retained: int = 1024,
        name: str = "explain-jobs",
    ):
        if max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        if max_retained < 1:
            raise ValueError(f"max_retained must be positive, got {max_retained}")
        self.runner = runner
        self.max_workers = max_workers
        self.max_retained = max_retained
        self.name = name
        self.stats = QueueStats()
        self._queue: queue.Queue = queue.Queue()
        self._jobs: dict[str, Job] = {}
        self._lock = threading.RLock()
        self._counter = itertools.count(1)
        self._workers: list[threading.Thread] = []
        self._shutdown = threading.Event()

    # -- submission ---------------------------------------------------------------
    def submit(self, request) -> Job:
        """Enqueue one request; returns its :class:`Job` handle immediately."""
        if self._shutdown.is_set():
            raise RuntimeError("job queue has been shut down")
        with self._lock:
            job = Job(id=f"job-{next(self._counter)}", request=request)
            self._jobs[job.id] = job
            self.stats.submitted += 1
            self._prune_retained()
        self._queue.put(job)
        self._ensure_workers()
        return job

    def _prune_retained(self) -> None:
        """Drop the oldest *terminal* jobs beyond ``max_retained`` (lock held).

        Finished jobs hold full reports; without pruning, a long-lived daemon
        would retain one per job forever.  Live (queued/running) jobs are
        never dropped.
        """
        if len(self._jobs) <= self.max_retained:
            return
        excess = len(self._jobs) - self.max_retained
        for job_id in [
            job.id for job in self._jobs.values() if job.state.terminal
        ][:excess]:
            del self._jobs[job_id]

    def submit_batch(self, requests: Sequence) -> list[Job]:
        """Enqueue a batch; pair with :meth:`wait_all` to await it as a unit."""
        return [self.submit(request) for request in requests]

    # -- lifecycle ----------------------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> bool:
        """Cancel a job that has not started yet; False if it already ran."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state is not JobState.QUEUED:
                return False
            job.state = JobState.CANCELLED
            job.finished_at = time.time()
            self.stats.cancelled += 1
            job._done.set()
            return True

    @staticmethod
    def wait_all(jobs: Sequence[Job], timeout: float | None = None) -> bool:
        """Wait for every job in the sequence; True if all finished in time."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for job in jobs:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            if not job.wait(remaining):
                return False
        return True

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def queue_stats(self) -> dict:
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
        return {
            "workers": self.max_workers,
            "states": states,
            **self.stats.as_dict(),
        }

    def shutdown(self, *, wait: bool = True, timeout: float | None = None) -> None:
        """Stop accepting work; optionally wait for in-flight jobs to settle.

        Still-queued jobs are cancelled (terminal state, ``wait()`` returns)
        rather than abandoned in a forever-QUEUED limbo.
        """
        self._shutdown.set()
        with self._lock:
            for job in self._jobs.values():
                if job.state is JobState.QUEUED:
                    job.state = JobState.CANCELLED
                    job.finished_at = time.time()
                    self.stats.cancelled += 1
                    job._done.set()
        for _ in self._workers:
            self._queue.put(None)  # wake blocked workers
        if wait:
            for worker in self._workers:
                worker.join(timeout)

    # -- workers ------------------------------------------------------------------
    def _ensure_workers(self) -> None:
        with self._lock:
            while len(self._workers) < self.max_workers:
                worker = threading.Thread(
                    target=self._drain,
                    name=f"{self.name}-{len(self._workers)}",
                    daemon=True,
                )
                self._workers.append(worker)
                worker.start()

    def _drain(self) -> None:
        while not self._shutdown.is_set():
            job = self._queue.get()
            if job is None:
                break
            with self._lock:
                if job.state is not JobState.QUEUED:
                    continue  # cancelled while waiting
                job.state = JobState.RUNNING
                job.started_at = time.time()
            try:
                job.result = self.runner(job.request)
            except Exception as exc:  # noqa: BLE001 - job errors must not kill workers
                with self._lock:
                    job.state = JobState.FAILED
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.finished_at = time.time()
                    self.stats.failed += 1
            else:
                with self._lock:
                    job.state = JobState.DONE
                    job.finished_at = time.time()
                    self.stats.completed += 1
            finally:
                job._done.set()

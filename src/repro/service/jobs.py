"""Async job queue for the explanation service.

Requests are enqueued as :class:`Job` objects and drained by a bounded pool of
worker threads (layered on the same threading substrate as the Stage-2 worker
pools of :mod:`repro.core.partitioning` -- a job's partitions may themselves
solve in parallel, governed by its ``SolveConfig``).  Jobs expose their
status, can be cancelled both while queued *and* while running (running jobs
are cancelled cooperatively: the job's ``cancel_event`` is observed at
deadline checkpoints down to the per-partition solver), and batches can be
submitted and awaited as a unit.

Transient runner failures can be retried with exponential backoff and jitter
by passing a :class:`~repro.reliability.RetryPolicy`; retries never apply to
typed client or budget errors, only to the policy's ``retryable`` exception
types.

Submissions carrying an ``idempotency_key`` are **single-flight**: while a
job with that key is queued or running, identical submissions coalesce onto
it (one execution, every caller receives the result) instead of solving the
same problem twice.  The daemon derives the key from a fingerprint of the
request payload, so duplicate / retried HTTP submissions dedupe for free.

The queue is deliberately generic over its runner: anything accepting an
:class:`~repro.service.engine.ExplainRequest`-shaped payload and returning a
result works, which keeps the queue testable in isolation.
"""

from __future__ import annotations

import enum
import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.reliability.deadline import OperationCancelled
from repro.reliability.retry import RetryOutcome, RetryPolicy, retry_call


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass
class Job:
    """One unit of queued work and its lifecycle."""

    id: str
    request: object
    state: JobState = JobState.QUEUED
    result: object = None
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    retries: int = 0
    cancel_requested: bool = False
    #: Single-flight key: identical concurrent submissions share this job.
    idempotency_key: Optional[str] = None
    #: How many duplicate submissions were coalesced onto this job.
    coalesced: int = 0
    #: Cooperative cancellation flag, observed by the runner at deadline
    #: checkpoints when the request threads it through (ExplainRequest does).
    cancel_event: threading.Event = field(default_factory=threading.Event, repr=False)
    _done: threading.Event = field(default_factory=threading.Event, repr=False)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state; True if it did."""
        return self._done.wait(timeout)

    def status(self) -> dict:
        """JSON-safe status snapshot (the ``GET /jobs/<id>`` payload)."""
        return {
            "id": self.id,
            "state": self.state.value,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "retries": self.retries,
            "cancel_requested": self.cancel_requested,
            "idempotency_key": self.idempotency_key,
            "coalesced": self.coalesced,
        }


@dataclass
class QueueStats:
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    #: Submissions coalesced onto an in-flight identical job (single-flight).
    deduplicated: int = 0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "deduplicated": self.deduplicated,
        }


class JobQueue:
    """A bounded-concurrency job queue over a request runner.

    ``runner`` is typically ``ExplainService.explain``.  ``max_workers``
    bounds how many requests run concurrently; further submissions queue up
    (FIFO).  Worker threads are daemonic and started lazily on first submit,
    so constructing a queue is free.
    """

    def __init__(
        self,
        runner: Callable[[object], object],
        *,
        max_workers: int = 2,
        max_retained: int = 1024,
        name: str = "explain-jobs",
        retry_policy: RetryPolicy | None = None,
    ):
        if max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        if max_retained < 1:
            raise ValueError(f"max_retained must be positive, got {max_retained}")
        self.runner = runner
        self.max_workers = max_workers
        self.max_retained = max_retained
        self.name = name
        #: When set, transient runner failures (the policy's ``retryable``
        #: exception types) are retried with exponential backoff + jitter.
        self.retry_policy = retry_policy
        self.stats = QueueStats()
        self._queue: queue.Queue = queue.Queue()
        self._jobs: dict[str, Job] = {}
        #: Single-flight index: idempotency key -> its one in-flight job.
        self._inflight: dict[str, Job] = {}
        self._lock = threading.RLock()
        self._counter = itertools.count(1)
        self._workers: list[threading.Thread] = []
        self._shutdown = threading.Event()

    # -- submission ---------------------------------------------------------------
    def submit(self, request, *, idempotency_key: str | None = None) -> Job:
        """Enqueue one request; returns its :class:`Job` handle immediately.

        With an ``idempotency_key``, submissions are **single-flight**: while
        a job with the same key is queued or running, an identical submission
        returns that same job instead of enqueueing a second execution --
        both callers wait on (and receive) one result.  The coalescing window
        closes when the job settles: a key resubmitted *after* completion
        runs again (and typically hits the runner's report cache).  Note that
        cancelling a coalesced job cancels it for every caller sharing it.
        """
        if self._shutdown.is_set():
            raise RuntimeError("job queue has been shut down")
        with self._lock:
            if idempotency_key is not None:
                inflight = self._inflight.get(idempotency_key)
                if inflight is not None and not inflight.state.terminal:
                    inflight.coalesced += 1
                    self.stats.deduplicated += 1
                    return inflight
            job = Job(
                id=f"job-{next(self._counter)}",
                request=request,
                idempotency_key=idempotency_key,
            )
            if idempotency_key is not None:
                self._inflight[idempotency_key] = job
            # Thread the job's cancellation flag into the request so a
            # DELETE on a *running* job is observed at the runner's
            # cooperative checkpoints.  Requests that brought their own
            # event keep it (and the job shares it).
            existing = getattr(request, "cancel_event", None)
            if existing is not None:
                job.cancel_event = existing
            elif hasattr(request, "cancel_event"):
                request.cancel_event = job.cancel_event
            self._jobs[job.id] = job
            self.stats.submitted += 1
            self._prune_retained()
        self._queue.put(job)
        self._ensure_workers()
        return job

    def _unindex(self, job: Job) -> None:
        """Close the job's single-flight window (lock held, job terminal).

        New submissions of the key after this point start a fresh execution;
        callers already holding the job handle still read its result.
        """
        if (
            job.idempotency_key is not None
            and self._inflight.get(job.idempotency_key) is job
        ):
            del self._inflight[job.idempotency_key]

    def _prune_retained(self) -> None:
        """Drop the oldest *terminal* jobs beyond ``max_retained`` (lock held).

        Finished jobs hold full reports; without pruning, a long-lived daemon
        would retain one per job forever.  Live (queued/running) jobs are
        never dropped.
        """
        if len(self._jobs) <= self.max_retained:
            return
        excess = len(self._jobs) - self.max_retained
        for job_id in [
            job.id for job in self._jobs.values() if job.state.terminal
        ][:excess]:
            del self._jobs[job_id]

    def submit_batch(self, requests: Sequence) -> list[Job]:
        """Enqueue a batch; pair with :meth:`wait_all` to await it as a unit."""
        return [self.submit(request) for request in requests]

    # -- lifecycle ----------------------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; False only if it is already terminal (or unknown).

        A still-queued job is cancelled immediately.  A *running* job is
        cancelled cooperatively: its ``cancel_event`` is set here and the
        worker observes it at the runner's next deadline checkpoint, after
        which the job settles as CANCELLED.  ``True`` from this method
        therefore means "cancellation requested and will be honoured", not
        "already stopped" -- poll :meth:`Job.wait` for settlement.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state.terminal:
                return False
            job.cancel_requested = True
            job.cancel_event.set()
            if job.state is JobState.QUEUED:
                job.state = JobState.CANCELLED
                job.finished_at = time.time()
                self.stats.cancelled += 1
                self._unindex(job)
                job._done.set()
            return True

    @staticmethod
    def wait_all(jobs: Sequence[Job], timeout: float | None = None) -> bool:
        """Wait for every job in the sequence; True if all finished in time."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for job in jobs:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            if not job.wait(remaining):
                return False
        return True

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def queue_stats(self) -> dict:
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
        return {
            "workers": self.max_workers,
            "states": states,
            **self.stats.as_dict(),
        }

    def drain(self, timeout: float | None = None) -> bool:
        """Wait for every queued/running job to settle; True if all did.

        Used by graceful shutdown: the daemon stops accepting requests, then
        drains in-flight work bounded by ``--drain-seconds`` before exiting.
        """
        with self._lock:
            pending = [job for job in self._jobs.values() if not job.state.terminal]
        return self.wait_all(pending, timeout)

    def shutdown(self, *, wait: bool = True, timeout: float | None = None) -> None:
        """Stop accepting work; optionally wait for in-flight jobs to settle.

        Still-queued jobs are cancelled (terminal state, ``wait()`` returns)
        rather than abandoned in a forever-QUEUED limbo.
        """
        self._shutdown.set()
        with self._lock:
            for job in self._jobs.values():
                if job.state is JobState.QUEUED:
                    job.state = JobState.CANCELLED
                    job.finished_at = time.time()
                    self.stats.cancelled += 1
                    self._unindex(job)
                    job._done.set()
        for _ in self._workers:
            self._queue.put(None)  # wake blocked workers
        if wait:
            for worker in self._workers:
                worker.join(timeout)

    # -- workers ------------------------------------------------------------------
    def _ensure_workers(self) -> None:
        with self._lock:
            while len(self._workers) < self.max_workers:
                worker = threading.Thread(
                    target=self._drain,
                    name=f"{self.name}-{len(self._workers)}",
                    daemon=True,
                )
                self._workers.append(worker)
                worker.start()

    def _drain(self) -> None:
        while not self._shutdown.is_set():
            job = self._queue.get()
            if job is None:
                break
            with self._lock:
                if job.state is not JobState.QUEUED:
                    continue  # cancelled while waiting
                job.state = JobState.RUNNING
                job.started_at = time.time()
            try:
                if self.retry_policy is not None:
                    outcome = RetryOutcome()
                    job.result = retry_call(
                        lambda: self.runner(job.request),
                        self.retry_policy,
                        outcome=outcome,
                    )
                    job.retries = outcome.retried
                else:
                    job.result = self.runner(job.request)
            except OperationCancelled:
                # The runner observed the cancel_event at a checkpoint: the
                # job was cancelled while running, not failed.
                with self._lock:
                    job.state = JobState.CANCELLED
                    job.finished_at = time.time()
                    self.stats.cancelled += 1
            except Exception as exc:  # noqa: BLE001 - job errors must not kill workers
                with self._lock:
                    job.state = JobState.FAILED
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.finished_at = time.time()
                    self.stats.failed += 1
            else:
                with self._lock:
                    job.state = JobState.DONE
                    job.finished_at = time.time()
                    self.stats.completed += 1
            finally:
                with self._lock:
                    self._unindex(job)
                job._done.set()

"""The long-lived explanation engine: register databases once, explain many times.

:class:`ExplainService` wraps the one-shot :class:`~repro.core.explain3d.Explain3D`
pipeline in a service that keeps content-addressed Stage-1 artifacts alive
across requests:

* **provenance** per (database, query) -- skips query re-execution;
* **plans** per (database, ANALYZE statistics, query body) -- compiled
  :class:`~repro.plan.PhysicalPlan` objects; provenance misses execute the
  cached plan instead of re-planning, and renamed queries with the same body
  share one plan (the key ignores the query name);
* **stats** per (relation content, bucket count) -- ANALYZE statistics
  (:meth:`ExplainService.analyze`); identical relation content is analyzed
  once no matter which database or name it is registered under;
* **features** per (provenance pair, attribute matches) -- the tokenized
  :class:`~repro.matching.features.TupleFeatureCache` of each side;
* **candidates** per (provenance pair, attribute matches) -- the unfiltered
  scored candidate matches (independent of ``min_similarity``);
* **problem** per (Stage-1 inputs + linkage config) -- the assembled
  :class:`~repro.core.problem.ExplainProblem`;
* **report** per (problem + solve/summarize config) -- the finished
  :class:`~repro.core.explain3d.ExplanationReport`.

A repeated request is a report-cache hit (no recomputation at all); a request
that perturbs only the solve configuration reuses the cached problem; one that
perturbs only the linkage thresholds reuses provenance, features and scored
candidates.  Responses are identical to a direct ``Explain3D.explain()`` call
with the same inputs -- the caches inject work, never change it.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import Counter, OrderedDict
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional

from repro.core.explain3d import Explain3D, Explain3DConfig, ExplanationReport
from repro.core.problem import Stage1Artifacts, build_problem
from repro.live import DeltaConflictError, DeltaError, apply_changes_copy, delta_affects
from repro.matching.attribute_match import AttributeMatching
from repro.matching.tuple_matching import TupleMapping
from repro.plan import PhysicalPlan, logical_fingerprint, plan_node, plan_query
from repro.relational.errors import EmptyAggregateError, UnknownRelationError
from repro.relational.executor import Database
from repro.relational.provenance import provenance_relation
from repro.relational.query import Query
from repro.reliability.breaker import BreakerRegistry
from repro.reliability.deadline import Deadline, DeadlineExceeded, OperationCancelled
from repro.reliability.faults import FAULTS
from repro.service.cache import CacheRegistry, fingerprint_of

logger = logging.getLogger(__name__)

#: How many request shapes (per problem key) the engine remembers for
#: delta-aware cache rewiring, and how many applied delta ids it retains for
#: ingest idempotency.  Both are bookkeeping, not correctness: a forgotten
#: signature degrades to plain eviction-by-re-keying, a forgotten delta id to
#: a 409 conflict on the (stale) retry.
_SIGNATURE_LIMIT = 512
_DELTA_LOG_LIMIT = 512


@dataclass
class _LiveSignature:
    """The request shape behind one cached problem.

    Holds exactly what :meth:`ExplainService.ingest` needs to recompute the
    problem's artifact keys under a *different* database fingerprint: the
    queries, both database names, and the canonicalized request parts that
    participate in each key.  ``solve_parts`` collects every solve
    configuration seen for the problem (keyed by its own fingerprint), since
    each produced a distinct cached report.
    """

    database_left: str
    database_right: str
    query_left: Query
    query_right: Query
    matches_part: object
    mapping_part: object
    labeled_part: object
    stage1_part: object
    solve_parts: dict = field(default_factory=dict)


class UnknownDatabaseError(KeyError):
    """Raised when a request references a database name never registered."""

    def __init__(self, name: str, known):
        super().__init__(name)
        self.name = name
        self.known = sorted(known)

    def __str__(self) -> str:
        return f"unknown database {self.name!r} (registered: {self.known})"


@dataclass
class ServiceConfig:
    """Configuration of one :class:`ExplainService` instance."""

    default_pipeline: Explain3DConfig = field(default_factory=Explain3DConfig)
    cache_entries: int = 128
    report_cache_entries: int = 256
    spill_dir: str | Path | None = None
    #: Persist every cached artifact to ``spill_dir`` eagerly (not only on
    #: eviction), turning the directory into a shared cross-process cache
    #: tier: fleet workers pointed at one directory reuse each other's
    #: artifacts.  Safe by construction -- keys are content fingerprints and
    #: writes are atomic renames, so concurrent writers cannot conflict.
    spill_write_through: bool = False
    #: Deadline applied to requests that do not set their own (None = none).
    default_deadline_seconds: float | None = None
    #: Per-database circuit breaker: consecutive unexpected failures before
    #: the breaker opens, and the cool-down before a half-open probe.
    breaker_failures: int = 5
    breaker_reset_seconds: float = 30.0


@dataclass
class ExplainRequest:
    """One explanation request against registered databases.

    ``database_left`` / ``database_right`` are names previously passed to
    :meth:`ExplainService.register_database`.  ``config`` overrides the
    service's default pipeline configuration for this request only.

    Reliability knobs:

    * ``deadline_seconds`` -- wall-clock budget for this request, observed
      at cooperative checkpoints down to the per-partition solver;
    * ``on_deadline`` -- ``"error"`` raises a typed
      :class:`~repro.reliability.DeadlineExceeded`; ``"partial"`` returns
      the incumbent explanation with an optimality gap, explicitly marked in
      the response's ``degraded`` metadata;
    * ``cancel_event`` -- cooperative cancellation flag (set by
      :meth:`~repro.service.jobs.JobQueue.cancel` for running jobs), observed
      at the same checkpoints.
    """

    query_left: Query
    database_left: str
    query_right: Query
    database_right: str
    attribute_matches: AttributeMatching | None = None
    tuple_mapping: TupleMapping | None = None
    labeled_pairs: set | None = None
    config: Explain3DConfig | None = None
    deadline_seconds: float | None = None
    on_deadline: str = "error"
    cancel_event: threading.Event | None = field(default=None, repr=False, compare=False)


@dataclass
class ServiceResult:
    """A served explanation: the report plus service-level bookkeeping.

    ``degraded`` lists every degradation-ladder rung the serving path took
    (planner fallback, partial solve, skipped summarization...); an empty
    list means the full optimized path ran.  Fallbacks are never silent.
    """

    report: ExplanationReport
    request_fingerprint: str
    problem_fingerprint: str
    cached_report: bool
    cached_problem: bool
    service_seconds: float
    degraded: list = field(default_factory=list)
    deadline: dict | None = None

    def to_dict(self) -> dict:
        payload = self.report.to_dict()
        payload["service"] = {
            "request_fingerprint": self.request_fingerprint,
            "problem_fingerprint": self.problem_fingerprint,
            "cached_report": self.cached_report,
            "cached_problem": self.cached_problem,
            "service_seconds": self.service_seconds,
            "degraded": list(self.degraded),
            "deadline": self.deadline,
        }
        return payload


class ExplainService:
    """A long-lived engine serving many explain requests over registered databases."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.caches = CacheRegistry(
            max_entries=self.config.cache_entries,
            spill_dir=self.config.spill_dir,
            write_through=self.config.spill_write_through,
        )
        self._provenance = self.caches.cache("provenance")
        # Plans hold a reference to their whole database: spilling one would
        # pickle every base relation to disk.  Replanning is milliseconds, so
        # evicted plans are simply dropped.
        self._plans = self.caches.cache("plans", spill=False)
        # ANALYZE statistics, keyed by *relation* content fingerprint: the
        # same relation content registered under any database (or re-analyzed
        # after an unrelated relation changed) reuses one entry.
        self._stats = self.caches.cache("stats")
        self._features = self.caches.cache("features")
        self._candidates = self.caches.cache("candidates")
        self._problems = self.caches.cache("problem")
        self._reports = self.caches.cache(
            "report", max_entries=self.config.report_cache_entries
        )
        self._databases: dict[str, Database] = {}
        self._db_fingerprints: dict[str, str] = {}
        self._lock = threading.RLock()
        self._requests_served = 0
        # Live-update bookkeeping: request shapes for delta-aware rewiring,
        # applied delta ids for ingest idempotency, and a lock serializing
        # ingests (explains stay concurrent -- they read one atomic snapshot).
        self._signatures: OrderedDict[str, _LiveSignature] = OrderedDict()
        self._applied_deltas: OrderedDict[str, dict] = OrderedDict()
        self._ingest_lock = threading.Lock()
        self._ingests_applied = 0
        self.breakers = BreakerRegistry(
            failure_threshold=self.config.breaker_failures,
            reset_seconds=self.config.breaker_reset_seconds,
        )
        # Degradation-ladder counters: "site:fallback" -> times taken.
        self._degradations: Counter = Counter()

    def _record_degradation(self, site: str, fallback: str) -> None:
        with self._lock:
            self._degradations[f"{site}:{fallback}"] += 1

    # -- database registry ---------------------------------------------------------
    def register_database(self, db: Database, name: str | None = None) -> str:
        """Register (or replace) a database; returns its content fingerprint.

        Re-registering a changed database under the same name changes the
        fingerprint, so every derived artifact is re-keyed automatically --
        no explicit invalidation step exists or is needed.
        """
        label = name or db.name
        if not label:
            raise ValueError("databases must be registered under a non-empty name")
        fingerprint = db.fingerprint()
        with self._lock:
            self._databases[label] = db
            self._db_fingerprints[label] = fingerprint
        return fingerprint

    def database(self, name: str) -> Database:
        with self._lock:
            if name not in self._databases:
                raise UnknownDatabaseError(name, self._databases.keys())
            return self._databases[name]

    def databases(self) -> dict[str, str]:
        """Registered database names mapped to their fingerprints."""
        with self._lock:
            return dict(self._db_fingerprints)

    def _db_fingerprint(self, name: str) -> str:
        with self._lock:
            if name not in self._db_fingerprints:
                raise UnknownDatabaseError(name, self._databases.keys())
            return self._db_fingerprints[name]

    def _snapshot(self, name: str) -> tuple[Database, str]:
        """The (database, fingerprint) pair read under one lock acquisition.

        Reading them separately would let a concurrent re-registration pair
        version-1 rows with the version-2 fingerprint, poisoning every cache
        keyed off it; a request must see one consistent version throughout.
        """
        with self._lock:
            if name not in self._databases:
                raise UnknownDatabaseError(name, self._databases.keys())
            return self._databases[name], self._db_fingerprints[name]

    # -- fingerprint keys ----------------------------------------------------------
    @staticmethod
    def _matches_part(matches: AttributeMatching | None) -> object:
        return tuple(matches.matches) if matches is not None else "auto"

    @staticmethod
    def _mapping_part(mapping: TupleMapping | None) -> object:
        return tuple(mapping.matches) if mapping is not None else "auto"

    @staticmethod
    def _stage1_config_part(config: Explain3DConfig) -> object:
        """The config fields that shape Stage 1 (problem identity)."""
        return (
            config.priors,
            config.num_buckets,
            config.min_similarity,
            config.min_match_probability,
        )

    @staticmethod
    def _solver_part(solver) -> object:
        """Cache-key contribution of a solver backend.

        Keyed by class *and* configuration (``vars``), so differently
        parameterized instances (e.g. a gap-bounded vs an exact HiGHS) never
        serve each other's cached reports.  Attributes whose reprs are
        instance-specific make the key conservative -- a safe miss, never a
        wrong hit.
        """
        if solver is None:
            return "default"
        try:
            state = tuple(sorted((k, repr(v)) for k, v in vars(solver).items()))
        except TypeError:
            state = repr(solver)
        return (type(solver).__name__, state)

    @staticmethod
    def _solve_config_part(config: Explain3DConfig) -> object:
        """The config fields that shape the solved report.

        ``workers`` and ``executor`` are deliberately excluded: the parallel
        and sequential solve paths produce identical results (asserted by the
        perf-equivalence suite), so perturbing them should hit the report
        cache rather than resolve.
        """
        return (
            config.partitioning,
            config.batch_size,
            config.weighting,
            config.use_prepartitioning,
            config.summarize,
            config.min_summary_precision,
            ExplainService._solver_part(config.solver),
        )

    def _problem_key(
        self, request: ExplainRequest, config: Explain3DConfig, left_fp: str, right_fp: str
    ) -> str:
        return fingerprint_of(
            left_fp,
            request.query_left,
            right_fp,
            request.query_right,
            self._matches_part(request.attribute_matches),
            self._mapping_part(request.tuple_mapping),
            request.labeled_pairs if request.labeled_pairs is not None else "none",
            self._stage1_config_part(config),
        )

    def _report_key(self, problem_key: str, config: Explain3DConfig) -> str:
        return fingerprint_of(problem_key, self._solve_config_part(config))

    # -- the serving path ----------------------------------------------------------
    def explain(self, request: ExplainRequest) -> ServiceResult:
        """Serve one request, reusing every cached artifact that applies.

        The request deadline (or the service default) is observed at
        cooperative checkpoints throughout; unexpected pipeline failures
        trip the per-database circuit breakers, while client mistakes,
        deadlines and cancellations do not -- they say nothing about the
        health of the data behind a database name.
        """
        started = time.perf_counter()
        config = request.config or self.config.default_pipeline
        seconds = (
            request.deadline_seconds
            if request.deadline_seconds is not None
            else self.config.default_deadline_seconds
        )
        deadline = Deadline.after(seconds, cancel_event=request.cancel_event)
        # One consistent (database, fingerprint) snapshot per side serves the
        # whole request, even if a re-registration lands mid-flight.  Snapshot
        # *before* the breaker gate so an unknown name stays a 404 even while
        # a breaker is open.
        left = self._snapshot(request.database_left)
        right = self._snapshot(request.database_right)
        self.breakers.acquire(request.database_left, request.database_right)
        try:
            result = self._serve(request, config, deadline, left, right, started)
        except (DeadlineExceeded, OperationCancelled, UnknownDatabaseError):
            # Not a dependency-health signal: the request ran out of budget,
            # was cancelled, or named nothing -- the databases are fine.
            raise
        except Exception:
            self.breakers.record_failure(request.database_left, request.database_right)
            raise
        self.breakers.record_success(request.database_left, request.database_right)
        return result

    def _serve(
        self,
        request: ExplainRequest,
        config: Explain3DConfig,
        deadline: Deadline,
        left: tuple[Database, str],
        right: tuple[Database, str],
        started: float,
    ) -> ServiceResult:
        problem_key = self._problem_key(request, config, left[1], right[1])
        report_key = self._report_key(problem_key, config)
        self._record_signature(problem_key, request, config)
        degraded: list[dict] = []

        cached_report = self._reports.get(report_key)
        if cached_report is not None:
            with self._lock:
                self._requests_served += 1
            return ServiceResult(
                report=cached_report,
                request_fingerprint=report_key,
                problem_fingerprint=problem_key,
                cached_report=True,
                cached_problem=True,
                service_seconds=time.perf_counter() - started,
                deadline=deadline.to_dict(),
            )

        deadline.check("stage1.build")
        build_start = time.perf_counter()
        problem = self._problems.get(problem_key)
        cached_problem = problem is not None
        if problem is None:
            problem = self._build_problem(request, config, left, right, degraded)
            self._problems.put(problem_key, problem)
        build_seconds = time.perf_counter() - build_start

        deadline.check("stage2.solve")
        engine = Explain3D(config)
        report = engine.explain_problem(
            problem,
            stage1_seconds=build_seconds,
            deadline=deadline if deadline.bounded or deadline.cancel_event else None,
            allow_partial=request.on_deadline == "partial",
        )
        degraded.extend(report.degraded)
        for rung in degraded:
            self._record_degradation(rung.get("site", "?"), rung.get("fallback", "?"))
        if degraded:
            # Never cache a degraded report: the planner fallback produces
            # fingerprint-identical answers, but a partial solve or skipped
            # summary does not -- and a later, unhurried request with the
            # same key must get (and will cache) the full answer.
            report.degraded = list(degraded)
        else:
            self._reports.put(report_key, report)
        with self._lock:
            self._requests_served += 1
        return ServiceResult(
            report=report,
            request_fingerprint=report_key,
            problem_fingerprint=problem_key,
            cached_report=False,
            cached_problem=cached_problem,
            service_seconds=time.perf_counter() - started,
            degraded=list(degraded),
            deadline=deadline.to_dict(),
        )

    def _build_problem(
        self,
        request: ExplainRequest,
        config: Explain3DConfig,
        left: tuple[Database, str],
        right: tuple[Database, str],
        degraded: list[dict] | None = None,
    ):
        """Cold problem construction, threading cached Stage-1 artifacts through.

        ``degraded`` (when given) collects any degradation-ladder rungs taken
        while building -- e.g. the optimized planner failing over to the
        naive interpreter.
        """
        db_left, left_fp = left
        db_right, right_fp = right

        provenance_key_left = fingerprint_of(left_fp, request.query_left, "L")
        provenance_key_right = fingerprint_of(right_fp, request.query_right, "R")
        # Features and scored candidates depend on the provenance pair and the
        # attribute matches only -- *not* on min_similarity or calibration, so
        # threshold-perturbed requests reuse them wholesale.
        linkage_key = fingerprint_of(
            provenance_key_left,
            provenance_key_right,
            self._matches_part(request.attribute_matches),
        )

        artifacts = Stage1Artifacts(
            provenance_left=self._provenance.get(provenance_key_left),
            provenance_right=self._provenance.get(provenance_key_right),
        )
        # Provenance misses run through the plan cache: the physical plan is
        # keyed by (database, inner expression) only -- not the query *name*
        # -- so renamed or re-labelled queries with the same body reuse the
        # compiled plan even though their provenance artifacts differ.
        if artifacts.provenance_left is None:
            artifacts.provenance_left = self._planned_provenance(
                request.query_left, db_left, left_fp, degraded
            )
        if artifacts.provenance_right is None:
            artifacts.provenance_right = self._planned_provenance(
                request.query_right, db_right, right_fp, degraded
            )
        features = self._features.get(linkage_key)
        if features is not None:
            artifacts.left_features, artifacts.right_features = features
        artifacts.candidates = self._candidates.get(linkage_key)

        problem = build_problem(
            request.query_left,
            db_left,
            request.query_right,
            db_right,
            attribute_matches=request.attribute_matches,
            tuple_mapping=request.tuple_mapping,
            labeled_pairs=request.labeled_pairs,
            priors=config.priors,
            num_buckets=config.num_buckets,
            min_similarity=config.min_similarity,
            min_match_probability=config.min_match_probability,
            artifacts=artifacts,
        )

        # Harvest whatever the build produced for the next request.
        self._provenance.put(provenance_key_left, artifacts.provenance_left)
        self._provenance.put(provenance_key_right, artifacts.provenance_right)
        if artifacts.left_features is not None and artifacts.right_features is not None:
            self._features.put(
                linkage_key, (artifacts.left_features, artifacts.right_features)
            )
        if artifacts.candidates is not None:
            self._candidates.put(linkage_key, artifacts.candidates)
        return problem

    # -- ANALYZE statistics ----------------------------------------------------------
    def analyze(self, database: str, *, buckets: int | None = None) -> dict:
        """ANALYZE a registered database; returns the statistics as JSON.

        Per-relation statistics are served from (and stored in) the ``stats``
        artifact cache keyed by relation *content* fingerprint, so identical
        relation content -- under any name, in any registered database -- is
        analyzed exactly once.  The resulting
        :class:`~repro.stats.statistics.DatabaseStats` is attached to the
        database, which flips the planner to cost-based mode (join
        reordering, statistics-backed build sides) for every plan compiled
        afterwards; the plan cache re-keys automatically.
        """
        from repro.stats import DEFAULT_BUCKETS, DatabaseStats, analyze_relation

        buckets = buckets if buckets is not None else DEFAULT_BUCKETS
        db, _ = self._snapshot(database)
        try:
            relations = {}
            for name, relation in db.relations().items():
                FAULTS.check("stats.analyze")
                fingerprint = relation.fingerprint()
                key = fingerprint_of(fingerprint, buckets)
                stats = self._stats.get_or_compute(
                    key,
                    lambda relation=relation, fingerprint=fingerprint: analyze_relation(
                        relation, buckets=buckets, fingerprint=fingerprint
                    ),
                )
                # A content-cache hit may carry the name the identical content
                # was first analyzed under; report it under this database's name.
                relations[name] = stats.with_name(name)
        except Exception as exc:
            # Degradation ladder, rung 2: without ANALYZE statistics the
            # planner keeps using the heuristic cost model -- plans may be
            # slower, answers are identical.  Leave any previously attached
            # statistics in place rather than half-replacing them.
            logger.warning(
                "ANALYZE of %s failed (%s: %s); planner stays on the "
                "heuristic cost model",
                database, type(exc).__name__, exc,
            )
            self._record_degradation("stats.analyze", "heuristic-cost-model")
            return {
                "database": database,
                "relations": {},
                "degraded": [
                    {
                        "site": "stats.analyze",
                        "fallback": "heuristic-cost-model",
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                ],
            }
        statistics = DatabaseStats(relations, buckets=buckets)
        db.statistics = statistics
        payload = statistics.to_dict()
        payload["database"] = database
        payload["fingerprint"] = statistics.fingerprint()
        return payload

    # -- live updates (POST /ingest) ---------------------------------------------------
    def _record_signature(
        self, problem_key: str, request: ExplainRequest, config: Explain3DConfig
    ) -> None:
        """Remember the request shape behind ``problem_key`` for rewiring."""
        solve_part = self._solve_config_part(config)
        with self._lock:
            signature = self._signatures.get(problem_key)
            if signature is None:
                signature = _LiveSignature(
                    database_left=request.database_left,
                    database_right=request.database_right,
                    query_left=request.query_left,
                    query_right=request.query_right,
                    matches_part=self._matches_part(request.attribute_matches),
                    mapping_part=self._mapping_part(request.tuple_mapping),
                    labeled_part=(
                        request.labeled_pairs
                        if request.labeled_pairs is not None
                        else "none"
                    ),
                    stage1_part=self._stage1_config_part(config),
                )
                self._signatures[problem_key] = signature
            signature.solve_parts[fingerprint_of(solve_part)] = solve_part
            self._signatures.move_to_end(problem_key)
            while len(self._signatures) > _SIGNATURE_LIMIT:
                self._signatures.popitem(last=False)

    def _signature_keys(
        self, signature: _LiveSignature, left_fp: str, right_fp: str
    ) -> dict:
        """Every artifact key of one request shape under the given fingerprints."""
        provenance_left = fingerprint_of(left_fp, signature.query_left, "L")
        provenance_right = fingerprint_of(right_fp, signature.query_right, "R")
        linkage = fingerprint_of(
            provenance_left, provenance_right, signature.matches_part
        )
        problem = fingerprint_of(
            left_fp,
            signature.query_left,
            right_fp,
            signature.query_right,
            signature.matches_part,
            signature.mapping_part,
            signature.labeled_part,
            signature.stage1_part,
        )
        return {
            "provenance_left": provenance_left,
            "provenance_right": provenance_right,
            "linkage": linkage,
            "problem": problem,
            "reports": {
                solve_fp: fingerprint_of(problem, part)
                for solve_fp, part in signature.solve_parts.items()
            },
        }

    def _advance_stats(self, statistics, relation: str, delta, new_relation):
        """ANALYZE statistics carried across a delta; returns ``(stats, mode)``.

        Merges the delta into the attached statistics when they describe the
        delta's base content and carry mergeable sketches, falling back to a
        full rescan past the drift threshold (``mode`` is ``"incremental"``
        or ``"rescan"``).  Either way the result lands in the ``stats``
        artifact cache under the new content fingerprint, so a later ANALYZE
        of the post-delta database is a cache hit.
        """
        from repro.stats import analyze_relation
        from repro.stats.statistics import DRIFT_THRESHOLD, merge_relation_stats

        buckets = statistics.buckets
        base = statistics.relation(relation)
        stats = None
        mode = "rescan"
        if (
            base is not None
            and base.fingerprint == delta.base_fingerprint
            and all(column.sketch is not None for column in base.columns)
        ):
            merged = merge_relation_stats(base, delta, buckets=buckets)
            if merged.drift <= DRIFT_THRESHOLD:
                stats, mode = merged, "incremental"
        if stats is None:
            stats = analyze_relation(
                new_relation, buckets=buckets, fingerprint=delta.new_fingerprint
            )
        self._stats.put(fingerprint_of(delta.new_fingerprint, buckets), stats)
        return stats, mode

    def _rewire_caches(self, database: str, delta, new_db_fp: str) -> dict:
        """Delta-aware invalidation: evict what changed, rewire what did not.

        Walks every remembered request shape touching ``database``.  A shape
        the delta provably does not affect (see
        :func:`repro.live.delta_affects`) has its artifacts *rewired* -- same
        bytes, re-addressed to the new database fingerprint; an affected
        shape has its old-key artifacts evicted (with shared-tier tombstones)
        so nothing stale survives.  Artifacts whose keys do not change (the
        un-ingested side's provenance) are simply retained.  Compiled plans
        are never rewired: a physical plan binds the old database object, and
        replanning is cheap.
        """
        moves = {"rewired": 0, "evicted": 0, "retained": 0}
        with self._lock:
            signatures = list(self._signatures.items())
            current = dict(self._db_fingerprints)
        handled: set[tuple[str, str]] = set()

        def rewire(cache, old_key: str, new_key: str) -> None:
            if old_key == new_key:
                if (cache.name, old_key) not in handled:
                    handled.add((cache.name, old_key))
                    if old_key in cache:
                        moves["retained"] += 1
                return
            if (cache.name, old_key) in handled:
                return
            handled.add((cache.name, old_key))
            if cache.rewire(old_key, new_key):
                moves["rewired"] += 1
                moves["retained"] += 1

        def evict(cache, old_key: str) -> None:
            if (cache.name, old_key) in handled:
                return
            handled.add((cache.name, old_key))
            if cache.invalidate(old_key):
                moves["evicted"] += 1

        rekeyed: list[tuple[str, str]] = []
        for problem_key, signature in signatures:
            if database not in (signature.database_left, signature.database_right):
                continue
            old_left = current.get(signature.database_left)
            old_right = current.get(signature.database_right)
            if old_left is None or old_right is None:
                continue
            new_left = new_db_fp if signature.database_left == database else old_left
            new_right = new_db_fp if signature.database_right == database else old_right
            old_keys = self._signature_keys(signature, old_left, old_right)
            new_keys = self._signature_keys(signature, new_left, new_right)

            affected = False
            if signature.database_left == database:
                provenance = self._provenance.get(old_keys["provenance_left"])
                affected |= delta_affects(signature.query_left, delta, provenance)
            if not affected and signature.database_right == database:
                provenance = self._provenance.get(old_keys["provenance_right"])
                affected |= delta_affects(signature.query_right, delta, provenance)

            if affected:
                for slot, cache in (
                    ("provenance_left", self._provenance),
                    ("provenance_right", self._provenance),
                    ("linkage", self._features),
                    ("linkage", self._candidates),
                    ("problem", self._problems),
                ):
                    if old_keys[slot] != new_keys[slot]:
                        evict(cache, old_keys[slot])
                for solve_fp, report_key in old_keys["reports"].items():
                    if report_key != new_keys["reports"][solve_fp]:
                        evict(self._reports, report_key)
            else:
                rewire(self._provenance, old_keys["provenance_left"],
                       new_keys["provenance_left"])
                rewire(self._provenance, old_keys["provenance_right"],
                       new_keys["provenance_right"])
                rewire(self._features, old_keys["linkage"], new_keys["linkage"])
                rewire(self._candidates, old_keys["linkage"], new_keys["linkage"])
                rewire(self._problems, old_keys["problem"], new_keys["problem"])
                for solve_fp, report_key in old_keys["reports"].items():
                    rewire(self._reports, report_key, new_keys["reports"][solve_fp])
            rekeyed.append((problem_key, new_keys["problem"]))

        with self._lock:
            for old_problem_key, new_problem_key in rekeyed:
                signature = self._signatures.pop(old_problem_key, None)
                if signature is not None:
                    self._signatures[new_problem_key] = signature
        return moves

    def ingest(
        self,
        database: str,
        relation: str,
        changes,
        *,
        delta_id: str | None = None,
        expect_fingerprint: str | None = None,
    ) -> dict:
        """Apply a batch of row-level changes to a registered database.

        The serving path of ``POST /ingest``: builds a copy-on-write version
        of the touched relation (concurrent explains keep reading the
        pre-delta snapshot), advances ANALYZE statistics incrementally,
        evicts exactly the cached artifacts the delta affected -- rewiring
        the rest to the new database fingerprint -- and atomically swaps the
        new database version in.  Every explain answer is therefore
        byte-identical to a cold rebuild at either the pre- or post-delta
        version, never a mix.

        ``delta_id`` is the idempotency key: re-submitting an applied id
        returns the original summary without re-applying (the PR-7
        single-flight machinery on the router funnels concurrent duplicates
        into one call).  Without one, a deterministic id is derived from the
        payload and the current database fingerprint.  ``expect_fingerprint``
        (when given) must match the live database fingerprint, else
        :class:`~repro.live.DeltaConflictError` (HTTP 409).
        """
        with self._ingest_lock:
            db, db_fp = self._snapshot(database)
            if expect_fingerprint is not None and expect_fingerprint != db_fp:
                raise DeltaConflictError(
                    f"ingest targets {database!r} at fingerprint "
                    f"{expect_fingerprint[:12]}..., but the live database is at "
                    f"{db_fp[:12]}...; re-read and rebuild the delta"
                )
            idempotency_key = delta_id or fingerprint_of(
                database, relation, changes, db_fp
            )
            with self._lock:
                summary = self._applied_deltas.get(idempotency_key)
            if summary is not None:
                duplicate = dict(summary)
                duplicate["applied"] = False
                duplicate["deduplicated"] = True
                return duplicate
            # The fault gate sits before any state change: an injected ingest
            # fault leaves database, statistics and caches fully pre-delta.
            FAULTS.check("live.apply_delta")
            try:
                old_relation = db.relation(relation)
            except UnknownRelationError as exc:
                raise DeltaError(str(exc), "/relation") from None
            new_relation, delta = apply_changes_copy(old_relation, changes)

            stats_mode = "none"
            new_statistics = None
            if db.statistics is not None and relation in db.statistics:
                stats, stats_mode = self._advance_stats(
                    db.statistics, relation, delta, new_relation
                )
                relations = db.statistics.relations()
                relations[relation] = stats.with_name(relation)
                from repro.stats import DatabaseStats

                new_statistics = DatabaseStats(
                    relations, buckets=db.statistics.buckets
                )

            new_db = db.with_relation(relation, new_relation, statistics=new_statistics)
            new_db_fp = new_db.fingerprint()
            caches = self._rewire_caches(database, delta, new_db_fp)

            with self._lock:
                if self._db_fingerprints.get(database) != db_fp:
                    raise DeltaConflictError(
                        f"database {database!r} was re-registered during ingest; "
                        "re-read and rebuild the delta"
                    )
                self._databases[database] = new_db
                self._db_fingerprints[database] = new_db_fp
                self._ingests_applied += 1
                summary = {
                    "database": database,
                    "relation": relation,
                    "delta_id": delta.delta_id,
                    "applied": True,
                    "base_fingerprint": db_fp,
                    "fingerprint": new_db_fp,
                    "relation_fingerprint": delta.new_fingerprint,
                    "changes": delta.counts(),
                    "stats": stats_mode,
                    "caches": caches,
                }
                for key in {idempotency_key, delta.delta_id}:
                    self._applied_deltas[key] = summary
                while len(self._applied_deltas) > _DELTA_LOG_LIMIT:
                    self._applied_deltas.popitem(last=False)
            return dict(summary)

    # -- query planning --------------------------------------------------------------
    def _planned_provenance(
        self, query: Query, db: Database, db_fp: str, degraded: list[dict] | None = None
    ):
        """Provenance via the plan cache (compile once per database + body).

        Degradation ladder, rung 1: if the optimized planner fails for any
        reason -- a lowering bug, an injected fault -- fall back to the naive
        reference interpreter, which produces fingerprint-identical provenance
        (asserted by the chaos suite).  The rung is recorded in ``degraded``
        and in the engine counters; answers never change, only speed.
        """
        inner = query.inner
        try:
            plan = self._cached_plan(db, db_fp, inner, lambda: plan_node(inner, db))
        except Exception as exc:
            logger.warning(
                "optimized planner failed for %s (%s: %s); "
                "falling back to the naive interpreter",
                query.name, type(exc).__name__, exc,
            )
            self._record_degradation("plan.lower", "naive-interpreter")
            if degraded is not None:
                degraded.append(
                    {
                        "site": "plan.lower",
                        "fallback": "naive-interpreter",
                        "query": query.name,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
            return provenance_relation(
                query, db, label=f"P[{query.name}]", planner="naive"
            )
        return provenance_relation(query, db, label=f"P[{query.name}]", plan=plan)

    def _cached_plan(self, db: Database, db_fp: str, node, factory) -> PhysicalPlan:
        # ANALYZE statistics participate in the key: analyzing a database
        # changes the plans it should get (never their results), so cached
        # heuristic plans must not shadow the cost-based ones and vice versa.
        statistics = getattr(db, "statistics", None)
        stats_part = statistics.fingerprint() if statistics is not None else "none"
        key = fingerprint_of(db_fp, stats_part, logical_fingerprint(node))
        return self._plans.get_or_compute(key, factory)

    def explain_plan(self, database: str, query: Query, *, run: bool = True) -> dict:
        """EXPLAIN a query against a registered database (JSON plan tree).

        The compiled plan lands in (and is served from) the ``plans`` cache.
        The explain path plans the query's *inner* (provenance) expression
        rather than its root, so that plan is compiled and cached here too --
        an EXPLAIN genuinely warms the cache for the explain requests that
        follow.  ``run=True`` executes the root plan once and annotates each
        operator with actual row counts and timings.
        """
        db, db_fp = self._snapshot(database)
        plan = self._cached_plan(db, db_fp, query.root, lambda: plan_query(query, db))
        inner = query.inner
        if logical_fingerprint(inner) != plan.fingerprint:
            self._cached_plan(db, db_fp, inner, lambda: plan_node(inner, db))
        try:
            explanation = plan.explain(run=run).to_dict()
        except EmptyAggregateError as exc:
            # A well-formed aggregate over an all-NULL input: surface a typed
            # 400 pointing at the query, never an unhandled 500.
            exc.path = exc.path or "/query"
            raise
        explanation["database"] = database
        explanation["query"] = query.name
        return explanation

    # -- introspection ---------------------------------------------------------------
    def stats(self) -> dict:
        """Service counters: requests served, registered databases, cache stats."""
        with self._lock:
            served = self._requests_served
            databases = dict(self._db_fingerprints)
            degradations = dict(self._degradations)
            ingests = self._ingests_applied
        return {
            "requests_served": served,
            "ingests_applied": ingests,
            "databases": databases,
            "degradations": degradations,
            "breakers": self.breakers.states(),
            **self.caches.stats(),
        }

    def health(self) -> dict:
        """Liveness + reliability snapshot (the payload of ``GET /health``).

        ``status`` is ``"degraded"`` (not an error status -- the service is
        up and serving what it can) whenever any circuit breaker is open or
        any degradation rung has been taken; ``"ok"`` otherwise.
        """
        with self._lock:
            served = self._requests_served
            degradations = dict(self._degradations)
        breakers = self.breakers.states()
        cache_stats = self.caches.stats()
        degraded = self.breakers.any_open() or bool(degradations)
        return {
            "status": "degraded" if degraded else "ok",
            "requests_served": served,
            "breakers": breakers,
            "degradations": degradations,
            "caches": cache_stats["total"],
        }

    def clear_caches(self) -> None:
        self.caches.clear()

    def persist_caches(self) -> int:
        """Flush every in-memory cache entry to the disk spill; returns count.

        Called by the daemon's graceful-shutdown path so a successor process
        (or a fleet sibling sharing the spill directory) starts warm instead
        of relying on whatever happened to be evicted before the SIGTERM.
        No spill directory means nothing to do.
        """
        return self.caches.flush()

    # -- conveniences -----------------------------------------------------------------
    def request(
        self,
        query_left: Query,
        database_left: str,
        query_right: Query,
        database_right: str,
        **kwargs,
    ) -> ExplainRequest:
        """Shorthand for building an :class:`ExplainRequest`."""
        return ExplainRequest(
            query_left=query_left,
            database_left=database_left,
            query_right=query_right,
            database_right=database_right,
            **kwargs,
        )

    def with_config(self, request: ExplainRequest, **overrides) -> ExplainRequest:
        """A copy of ``request`` with pipeline-config fields overridden."""
        base = request.config or self.config.default_pipeline
        return replace(request, config=replace(base, **overrides))

"""The long-lived explanation engine: register databases once, explain many times.

:class:`ExplainService` wraps the one-shot :class:`~repro.core.explain3d.Explain3D`
pipeline in a service that keeps content-addressed Stage-1 artifacts alive
across requests:

* **provenance** per (database, query) -- skips query re-execution;
* **plans** per (database, ANALYZE statistics, query body) -- compiled
  :class:`~repro.plan.PhysicalPlan` objects; provenance misses execute the
  cached plan instead of re-planning, and renamed queries with the same body
  share one plan (the key ignores the query name);
* **stats** per (relation content, bucket count) -- ANALYZE statistics
  (:meth:`ExplainService.analyze`); identical relation content is analyzed
  once no matter which database or name it is registered under;
* **features** per (provenance pair, attribute matches) -- the tokenized
  :class:`~repro.matching.features.TupleFeatureCache` of each side;
* **candidates** per (provenance pair, attribute matches) -- the unfiltered
  scored candidate matches (independent of ``min_similarity``);
* **problem** per (Stage-1 inputs + linkage config) -- the assembled
  :class:`~repro.core.problem.ExplainProblem`;
* **report** per (problem + solve/summarize config) -- the finished
  :class:`~repro.core.explain3d.ExplanationReport`.

A repeated request is a report-cache hit (no recomputation at all); a request
that perturbs only the solve configuration reuses the cached problem; one that
perturbs only the linkage thresholds reuses provenance, features and scored
candidates.  Responses are identical to a direct ``Explain3D.explain()`` call
with the same inputs -- the caches inject work, never change it.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import Counter
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional

from repro.core.explain3d import Explain3D, Explain3DConfig, ExplanationReport
from repro.core.problem import Stage1Artifacts, build_problem
from repro.matching.attribute_match import AttributeMatching
from repro.matching.tuple_matching import TupleMapping
from repro.plan import PhysicalPlan, logical_fingerprint, plan_node, plan_query
from repro.relational.executor import Database
from repro.relational.provenance import provenance_relation
from repro.relational.query import Query
from repro.reliability.breaker import BreakerRegistry
from repro.reliability.deadline import Deadline, DeadlineExceeded, OperationCancelled
from repro.reliability.faults import FAULTS
from repro.service.cache import CacheRegistry, fingerprint_of

logger = logging.getLogger(__name__)


class UnknownDatabaseError(KeyError):
    """Raised when a request references a database name never registered."""

    def __init__(self, name: str, known):
        super().__init__(name)
        self.name = name
        self.known = sorted(known)

    def __str__(self) -> str:
        return f"unknown database {self.name!r} (registered: {self.known})"


@dataclass
class ServiceConfig:
    """Configuration of one :class:`ExplainService` instance."""

    default_pipeline: Explain3DConfig = field(default_factory=Explain3DConfig)
    cache_entries: int = 128
    report_cache_entries: int = 256
    spill_dir: str | Path | None = None
    #: Persist every cached artifact to ``spill_dir`` eagerly (not only on
    #: eviction), turning the directory into a shared cross-process cache
    #: tier: fleet workers pointed at one directory reuse each other's
    #: artifacts.  Safe by construction -- keys are content fingerprints and
    #: writes are atomic renames, so concurrent writers cannot conflict.
    spill_write_through: bool = False
    #: Deadline applied to requests that do not set their own (None = none).
    default_deadline_seconds: float | None = None
    #: Per-database circuit breaker: consecutive unexpected failures before
    #: the breaker opens, and the cool-down before a half-open probe.
    breaker_failures: int = 5
    breaker_reset_seconds: float = 30.0


@dataclass
class ExplainRequest:
    """One explanation request against registered databases.

    ``database_left`` / ``database_right`` are names previously passed to
    :meth:`ExplainService.register_database`.  ``config`` overrides the
    service's default pipeline configuration for this request only.

    Reliability knobs:

    * ``deadline_seconds`` -- wall-clock budget for this request, observed
      at cooperative checkpoints down to the per-partition solver;
    * ``on_deadline`` -- ``"error"`` raises a typed
      :class:`~repro.reliability.DeadlineExceeded`; ``"partial"`` returns
      the incumbent explanation with an optimality gap, explicitly marked in
      the response's ``degraded`` metadata;
    * ``cancel_event`` -- cooperative cancellation flag (set by
      :meth:`~repro.service.jobs.JobQueue.cancel` for running jobs), observed
      at the same checkpoints.
    """

    query_left: Query
    database_left: str
    query_right: Query
    database_right: str
    attribute_matches: AttributeMatching | None = None
    tuple_mapping: TupleMapping | None = None
    labeled_pairs: set | None = None
    config: Explain3DConfig | None = None
    deadline_seconds: float | None = None
    on_deadline: str = "error"
    cancel_event: threading.Event | None = field(default=None, repr=False, compare=False)


@dataclass
class ServiceResult:
    """A served explanation: the report plus service-level bookkeeping.

    ``degraded`` lists every degradation-ladder rung the serving path took
    (planner fallback, partial solve, skipped summarization...); an empty
    list means the full optimized path ran.  Fallbacks are never silent.
    """

    report: ExplanationReport
    request_fingerprint: str
    problem_fingerprint: str
    cached_report: bool
    cached_problem: bool
    service_seconds: float
    degraded: list = field(default_factory=list)
    deadline: dict | None = None

    def to_dict(self) -> dict:
        payload = self.report.to_dict()
        payload["service"] = {
            "request_fingerprint": self.request_fingerprint,
            "problem_fingerprint": self.problem_fingerprint,
            "cached_report": self.cached_report,
            "cached_problem": self.cached_problem,
            "service_seconds": self.service_seconds,
            "degraded": list(self.degraded),
            "deadline": self.deadline,
        }
        return payload


class ExplainService:
    """A long-lived engine serving many explain requests over registered databases."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.caches = CacheRegistry(
            max_entries=self.config.cache_entries,
            spill_dir=self.config.spill_dir,
            write_through=self.config.spill_write_through,
        )
        self._provenance = self.caches.cache("provenance")
        # Plans hold a reference to their whole database: spilling one would
        # pickle every base relation to disk.  Replanning is milliseconds, so
        # evicted plans are simply dropped.
        self._plans = self.caches.cache("plans", spill=False)
        # ANALYZE statistics, keyed by *relation* content fingerprint: the
        # same relation content registered under any database (or re-analyzed
        # after an unrelated relation changed) reuses one entry.
        self._stats = self.caches.cache("stats")
        self._features = self.caches.cache("features")
        self._candidates = self.caches.cache("candidates")
        self._problems = self.caches.cache("problem")
        self._reports = self.caches.cache(
            "report", max_entries=self.config.report_cache_entries
        )
        self._databases: dict[str, Database] = {}
        self._db_fingerprints: dict[str, str] = {}
        self._lock = threading.RLock()
        self._requests_served = 0
        self.breakers = BreakerRegistry(
            failure_threshold=self.config.breaker_failures,
            reset_seconds=self.config.breaker_reset_seconds,
        )
        # Degradation-ladder counters: "site:fallback" -> times taken.
        self._degradations: Counter = Counter()

    def _record_degradation(self, site: str, fallback: str) -> None:
        with self._lock:
            self._degradations[f"{site}:{fallback}"] += 1

    # -- database registry ---------------------------------------------------------
    def register_database(self, db: Database, name: str | None = None) -> str:
        """Register (or replace) a database; returns its content fingerprint.

        Re-registering a changed database under the same name changes the
        fingerprint, so every derived artifact is re-keyed automatically --
        no explicit invalidation step exists or is needed.
        """
        label = name or db.name
        if not label:
            raise ValueError("databases must be registered under a non-empty name")
        fingerprint = db.fingerprint()
        with self._lock:
            self._databases[label] = db
            self._db_fingerprints[label] = fingerprint
        return fingerprint

    def database(self, name: str) -> Database:
        with self._lock:
            if name not in self._databases:
                raise UnknownDatabaseError(name, self._databases.keys())
            return self._databases[name]

    def databases(self) -> dict[str, str]:
        """Registered database names mapped to their fingerprints."""
        with self._lock:
            return dict(self._db_fingerprints)

    def _db_fingerprint(self, name: str) -> str:
        with self._lock:
            if name not in self._db_fingerprints:
                raise UnknownDatabaseError(name, self._databases.keys())
            return self._db_fingerprints[name]

    def _snapshot(self, name: str) -> tuple[Database, str]:
        """The (database, fingerprint) pair read under one lock acquisition.

        Reading them separately would let a concurrent re-registration pair
        version-1 rows with the version-2 fingerprint, poisoning every cache
        keyed off it; a request must see one consistent version throughout.
        """
        with self._lock:
            if name not in self._databases:
                raise UnknownDatabaseError(name, self._databases.keys())
            return self._databases[name], self._db_fingerprints[name]

    # -- fingerprint keys ----------------------------------------------------------
    @staticmethod
    def _matches_part(matches: AttributeMatching | None) -> object:
        return tuple(matches.matches) if matches is not None else "auto"

    @staticmethod
    def _mapping_part(mapping: TupleMapping | None) -> object:
        return tuple(mapping.matches) if mapping is not None else "auto"

    @staticmethod
    def _stage1_config_part(config: Explain3DConfig) -> object:
        """The config fields that shape Stage 1 (problem identity)."""
        return (
            config.priors,
            config.num_buckets,
            config.min_similarity,
            config.min_match_probability,
        )

    @staticmethod
    def _solver_part(solver) -> object:
        """Cache-key contribution of a solver backend.

        Keyed by class *and* configuration (``vars``), so differently
        parameterized instances (e.g. a gap-bounded vs an exact HiGHS) never
        serve each other's cached reports.  Attributes whose reprs are
        instance-specific make the key conservative -- a safe miss, never a
        wrong hit.
        """
        if solver is None:
            return "default"
        try:
            state = tuple(sorted((k, repr(v)) for k, v in vars(solver).items()))
        except TypeError:
            state = repr(solver)
        return (type(solver).__name__, state)

    @staticmethod
    def _solve_config_part(config: Explain3DConfig) -> object:
        """The config fields that shape the solved report.

        ``workers`` and ``executor`` are deliberately excluded: the parallel
        and sequential solve paths produce identical results (asserted by the
        perf-equivalence suite), so perturbing them should hit the report
        cache rather than resolve.
        """
        return (
            config.partitioning,
            config.batch_size,
            config.weighting,
            config.use_prepartitioning,
            config.summarize,
            config.min_summary_precision,
            ExplainService._solver_part(config.solver),
        )

    def _problem_key(
        self, request: ExplainRequest, config: Explain3DConfig, left_fp: str, right_fp: str
    ) -> str:
        return fingerprint_of(
            left_fp,
            request.query_left,
            right_fp,
            request.query_right,
            self._matches_part(request.attribute_matches),
            self._mapping_part(request.tuple_mapping),
            request.labeled_pairs if request.labeled_pairs is not None else "none",
            self._stage1_config_part(config),
        )

    def _report_key(self, problem_key: str, config: Explain3DConfig) -> str:
        return fingerprint_of(problem_key, self._solve_config_part(config))

    # -- the serving path ----------------------------------------------------------
    def explain(self, request: ExplainRequest) -> ServiceResult:
        """Serve one request, reusing every cached artifact that applies.

        The request deadline (or the service default) is observed at
        cooperative checkpoints throughout; unexpected pipeline failures
        trip the per-database circuit breakers, while client mistakes,
        deadlines and cancellations do not -- they say nothing about the
        health of the data behind a database name.
        """
        started = time.perf_counter()
        config = request.config or self.config.default_pipeline
        seconds = (
            request.deadline_seconds
            if request.deadline_seconds is not None
            else self.config.default_deadline_seconds
        )
        deadline = Deadline.after(seconds, cancel_event=request.cancel_event)
        # One consistent (database, fingerprint) snapshot per side serves the
        # whole request, even if a re-registration lands mid-flight.  Snapshot
        # *before* the breaker gate so an unknown name stays a 404 even while
        # a breaker is open.
        left = self._snapshot(request.database_left)
        right = self._snapshot(request.database_right)
        self.breakers.acquire(request.database_left, request.database_right)
        try:
            result = self._serve(request, config, deadline, left, right, started)
        except (DeadlineExceeded, OperationCancelled, UnknownDatabaseError):
            # Not a dependency-health signal: the request ran out of budget,
            # was cancelled, or named nothing -- the databases are fine.
            raise
        except Exception:
            self.breakers.record_failure(request.database_left, request.database_right)
            raise
        self.breakers.record_success(request.database_left, request.database_right)
        return result

    def _serve(
        self,
        request: ExplainRequest,
        config: Explain3DConfig,
        deadline: Deadline,
        left: tuple[Database, str],
        right: tuple[Database, str],
        started: float,
    ) -> ServiceResult:
        problem_key = self._problem_key(request, config, left[1], right[1])
        report_key = self._report_key(problem_key, config)
        degraded: list[dict] = []

        cached_report = self._reports.get(report_key)
        if cached_report is not None:
            with self._lock:
                self._requests_served += 1
            return ServiceResult(
                report=cached_report,
                request_fingerprint=report_key,
                problem_fingerprint=problem_key,
                cached_report=True,
                cached_problem=True,
                service_seconds=time.perf_counter() - started,
                deadline=deadline.to_dict(),
            )

        deadline.check("stage1.build")
        build_start = time.perf_counter()
        problem = self._problems.get(problem_key)
        cached_problem = problem is not None
        if problem is None:
            problem = self._build_problem(request, config, left, right, degraded)
            self._problems.put(problem_key, problem)
        build_seconds = time.perf_counter() - build_start

        deadline.check("stage2.solve")
        engine = Explain3D(config)
        report = engine.explain_problem(
            problem,
            stage1_seconds=build_seconds,
            deadline=deadline if deadline.bounded or deadline.cancel_event else None,
            allow_partial=request.on_deadline == "partial",
        )
        degraded.extend(report.degraded)
        for rung in degraded:
            self._record_degradation(rung.get("site", "?"), rung.get("fallback", "?"))
        if degraded:
            # Never cache a degraded report: the planner fallback produces
            # fingerprint-identical answers, but a partial solve or skipped
            # summary does not -- and a later, unhurried request with the
            # same key must get (and will cache) the full answer.
            report.degraded = list(degraded)
        else:
            self._reports.put(report_key, report)
        with self._lock:
            self._requests_served += 1
        return ServiceResult(
            report=report,
            request_fingerprint=report_key,
            problem_fingerprint=problem_key,
            cached_report=False,
            cached_problem=cached_problem,
            service_seconds=time.perf_counter() - started,
            degraded=list(degraded),
            deadline=deadline.to_dict(),
        )

    def _build_problem(
        self,
        request: ExplainRequest,
        config: Explain3DConfig,
        left: tuple[Database, str],
        right: tuple[Database, str],
        degraded: list[dict] | None = None,
    ):
        """Cold problem construction, threading cached Stage-1 artifacts through.

        ``degraded`` (when given) collects any degradation-ladder rungs taken
        while building -- e.g. the optimized planner failing over to the
        naive interpreter.
        """
        db_left, left_fp = left
        db_right, right_fp = right

        provenance_key_left = fingerprint_of(left_fp, request.query_left, "L")
        provenance_key_right = fingerprint_of(right_fp, request.query_right, "R")
        # Features and scored candidates depend on the provenance pair and the
        # attribute matches only -- *not* on min_similarity or calibration, so
        # threshold-perturbed requests reuse them wholesale.
        linkage_key = fingerprint_of(
            provenance_key_left,
            provenance_key_right,
            self._matches_part(request.attribute_matches),
        )

        artifacts = Stage1Artifacts(
            provenance_left=self._provenance.get(provenance_key_left),
            provenance_right=self._provenance.get(provenance_key_right),
        )
        # Provenance misses run through the plan cache: the physical plan is
        # keyed by (database, inner expression) only -- not the query *name*
        # -- so renamed or re-labelled queries with the same body reuse the
        # compiled plan even though their provenance artifacts differ.
        if artifacts.provenance_left is None:
            artifacts.provenance_left = self._planned_provenance(
                request.query_left, db_left, left_fp, degraded
            )
        if artifacts.provenance_right is None:
            artifacts.provenance_right = self._planned_provenance(
                request.query_right, db_right, right_fp, degraded
            )
        features = self._features.get(linkage_key)
        if features is not None:
            artifacts.left_features, artifacts.right_features = features
        artifacts.candidates = self._candidates.get(linkage_key)

        problem = build_problem(
            request.query_left,
            db_left,
            request.query_right,
            db_right,
            attribute_matches=request.attribute_matches,
            tuple_mapping=request.tuple_mapping,
            labeled_pairs=request.labeled_pairs,
            priors=config.priors,
            num_buckets=config.num_buckets,
            min_similarity=config.min_similarity,
            min_match_probability=config.min_match_probability,
            artifacts=artifacts,
        )

        # Harvest whatever the build produced for the next request.
        self._provenance.put(provenance_key_left, artifacts.provenance_left)
        self._provenance.put(provenance_key_right, artifacts.provenance_right)
        if artifacts.left_features is not None and artifacts.right_features is not None:
            self._features.put(
                linkage_key, (artifacts.left_features, artifacts.right_features)
            )
        if artifacts.candidates is not None:
            self._candidates.put(linkage_key, artifacts.candidates)
        return problem

    # -- ANALYZE statistics ----------------------------------------------------------
    def analyze(self, database: str, *, buckets: int | None = None) -> dict:
        """ANALYZE a registered database; returns the statistics as JSON.

        Per-relation statistics are served from (and stored in) the ``stats``
        artifact cache keyed by relation *content* fingerprint, so identical
        relation content -- under any name, in any registered database -- is
        analyzed exactly once.  The resulting
        :class:`~repro.stats.statistics.DatabaseStats` is attached to the
        database, which flips the planner to cost-based mode (join
        reordering, statistics-backed build sides) for every plan compiled
        afterwards; the plan cache re-keys automatically.
        """
        from repro.stats import DEFAULT_BUCKETS, DatabaseStats, analyze_relation

        buckets = buckets if buckets is not None else DEFAULT_BUCKETS
        db, _ = self._snapshot(database)
        try:
            relations = {}
            for name, relation in db.relations().items():
                FAULTS.check("stats.analyze")
                fingerprint = relation.fingerprint()
                key = fingerprint_of(fingerprint, buckets)
                stats = self._stats.get_or_compute(
                    key,
                    lambda relation=relation, fingerprint=fingerprint: analyze_relation(
                        relation, buckets=buckets, fingerprint=fingerprint
                    ),
                )
                # A content-cache hit may carry the name the identical content
                # was first analyzed under; report it under this database's name.
                relations[name] = stats.with_name(name)
        except Exception as exc:
            # Degradation ladder, rung 2: without ANALYZE statistics the
            # planner keeps using the heuristic cost model -- plans may be
            # slower, answers are identical.  Leave any previously attached
            # statistics in place rather than half-replacing them.
            logger.warning(
                "ANALYZE of %s failed (%s: %s); planner stays on the "
                "heuristic cost model",
                database, type(exc).__name__, exc,
            )
            self._record_degradation("stats.analyze", "heuristic-cost-model")
            return {
                "database": database,
                "relations": {},
                "degraded": [
                    {
                        "site": "stats.analyze",
                        "fallback": "heuristic-cost-model",
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                ],
            }
        statistics = DatabaseStats(relations, buckets=buckets)
        db.statistics = statistics
        payload = statistics.to_dict()
        payload["database"] = database
        payload["fingerprint"] = statistics.fingerprint()
        return payload

    # -- query planning --------------------------------------------------------------
    def _planned_provenance(
        self, query: Query, db: Database, db_fp: str, degraded: list[dict] | None = None
    ):
        """Provenance via the plan cache (compile once per database + body).

        Degradation ladder, rung 1: if the optimized planner fails for any
        reason -- a lowering bug, an injected fault -- fall back to the naive
        reference interpreter, which produces fingerprint-identical provenance
        (asserted by the chaos suite).  The rung is recorded in ``degraded``
        and in the engine counters; answers never change, only speed.
        """
        inner = query.inner
        try:
            plan = self._cached_plan(db, db_fp, inner, lambda: plan_node(inner, db))
        except Exception as exc:
            logger.warning(
                "optimized planner failed for %s (%s: %s); "
                "falling back to the naive interpreter",
                query.name, type(exc).__name__, exc,
            )
            self._record_degradation("plan.lower", "naive-interpreter")
            if degraded is not None:
                degraded.append(
                    {
                        "site": "plan.lower",
                        "fallback": "naive-interpreter",
                        "query": query.name,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
            return provenance_relation(
                query, db, label=f"P[{query.name}]", planner="naive"
            )
        return provenance_relation(query, db, label=f"P[{query.name}]", plan=plan)

    def _cached_plan(self, db: Database, db_fp: str, node, factory) -> PhysicalPlan:
        # ANALYZE statistics participate in the key: analyzing a database
        # changes the plans it should get (never their results), so cached
        # heuristic plans must not shadow the cost-based ones and vice versa.
        statistics = getattr(db, "statistics", None)
        stats_part = statistics.fingerprint() if statistics is not None else "none"
        key = fingerprint_of(db_fp, stats_part, logical_fingerprint(node))
        return self._plans.get_or_compute(key, factory)

    def explain_plan(self, database: str, query: Query, *, run: bool = True) -> dict:
        """EXPLAIN a query against a registered database (JSON plan tree).

        The compiled plan lands in (and is served from) the ``plans`` cache.
        The explain path plans the query's *inner* (provenance) expression
        rather than its root, so that plan is compiled and cached here too --
        an EXPLAIN genuinely warms the cache for the explain requests that
        follow.  ``run=True`` executes the root plan once and annotates each
        operator with actual row counts and timings.
        """
        db, db_fp = self._snapshot(database)
        plan = self._cached_plan(db, db_fp, query.root, lambda: plan_query(query, db))
        inner = query.inner
        if logical_fingerprint(inner) != plan.fingerprint:
            self._cached_plan(db, db_fp, inner, lambda: plan_node(inner, db))
        explanation = plan.explain(run=run).to_dict()
        explanation["database"] = database
        explanation["query"] = query.name
        return explanation

    # -- introspection ---------------------------------------------------------------
    def stats(self) -> dict:
        """Service counters: requests served, registered databases, cache stats."""
        with self._lock:
            served = self._requests_served
            databases = dict(self._db_fingerprints)
            degradations = dict(self._degradations)
        return {
            "requests_served": served,
            "databases": databases,
            "degradations": degradations,
            "breakers": self.breakers.states(),
            **self.caches.stats(),
        }

    def health(self) -> dict:
        """Liveness + reliability snapshot (the payload of ``GET /health``).

        ``status`` is ``"degraded"`` (not an error status -- the service is
        up and serving what it can) whenever any circuit breaker is open or
        any degradation rung has been taken; ``"ok"`` otherwise.
        """
        with self._lock:
            served = self._requests_served
            degradations = dict(self._degradations)
        breakers = self.breakers.states()
        cache_stats = self.caches.stats()
        degraded = self.breakers.any_open() or bool(degradations)
        return {
            "status": "degraded" if degraded else "ok",
            "requests_served": served,
            "breakers": breakers,
            "degradations": degradations,
            "caches": cache_stats["total"],
        }

    def clear_caches(self) -> None:
        self.caches.clear()

    def persist_caches(self) -> int:
        """Flush every in-memory cache entry to the disk spill; returns count.

        Called by the daemon's graceful-shutdown path so a successor process
        (or a fleet sibling sharing the spill directory) starts warm instead
        of relying on whatever happened to be evicted before the SIGTERM.
        No spill directory means nothing to do.
        """
        return self.caches.flush()

    # -- conveniences -----------------------------------------------------------------
    def request(
        self,
        query_left: Query,
        database_left: str,
        query_right: Query,
        database_right: str,
        **kwargs,
    ) -> ExplainRequest:
        """Shorthand for building an :class:`ExplainRequest`."""
        return ExplainRequest(
            query_left=query_left,
            database_left=database_left,
            query_right=query_right,
            database_right=database_right,
            **kwargs,
        )

    def with_config(self, request: ExplainRequest, **overrides) -> ExplainRequest:
        """A copy of ``request`` with pipeline-config fields overridden."""
        base = request.config or self.config.default_pipeline
        return replace(request, config=replace(base, **overrides))

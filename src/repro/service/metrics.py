"""Per-endpoint request metrics for the service daemon and the fleet router.

:class:`LatencyRecorder` keeps, per endpoint label (``"POST /explain"``,
``"GET /jobs/{id}"``), a monotonically increasing request/error count and a
bounded sorted-sample reservoir of recent latencies from which p50/p90/p99
quantiles are computed on demand.  The reservoir keeps the most recent
``max_samples`` observations -- a deliberate sliding window, so the reported
quantiles describe *current* load rather than the daemon's whole lifetime
(a t-digest would summarize forever; for load balancing, recency wins).

The snapshot is JSON-safe and rides on ``GET /health``, which is how the
fleet router aggregates per-worker load -- the groundwork for
smarter-than-hash balancing.
"""

from __future__ import annotations

import math
import threading
from collections import deque


def quantile(ordered: list[float], fraction: float) -> float:
    """The ``fraction`` quantile of an ascending-sorted sample (nearest rank)."""
    if not ordered:
        return 0.0
    index = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
    return ordered[index]


class _EndpointSeries:
    """One endpoint's counters plus its bounded latency window."""

    __slots__ = ("count", "errors", "samples")

    def __init__(self, max_samples: int):
        self.count = 0
        self.errors = 0
        self.samples: deque[float] = deque(maxlen=max_samples)


class LatencyRecorder:
    """Thread-safe per-endpoint request counts and latency quantiles."""

    #: Quantiles reported in every snapshot (name -> fraction).
    QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))

    def __init__(self, *, max_samples: int = 512):
        if max_samples < 1:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        self.max_samples = max_samples
        self._series: dict[str, _EndpointSeries] = {}
        self._lock = threading.Lock()

    def observe(self, endpoint: str, seconds: float, *, error: bool = False) -> None:
        """Record one served request: its endpoint label, latency and outcome."""
        with self._lock:
            series = self._series.get(endpoint)
            if series is None:
                series = self._series[endpoint] = _EndpointSeries(self.max_samples)
            series.count += 1
            if error:
                series.errors += 1
            series.samples.append(seconds)

    def snapshot(self) -> dict:
        """JSON-safe per-endpoint metrics (the ``endpoints`` block of /health)."""
        with self._lock:
            frozen = {
                endpoint: (series.count, series.errors, list(series.samples))
                for endpoint, series in self._series.items()
            }
        payload = {}
        for endpoint, (count, errors, samples) in sorted(frozen.items()):
            ordered = sorted(samples)
            payload[endpoint] = {
                "count": count,
                "errors": errors,
                "window": len(ordered),
                **{
                    f"{name}_ms": round(quantile(ordered, fraction) * 1e3, 3)
                    for name, fraction in self.QUANTILES
                },
            }
        return payload

    def total_count(self) -> int:
        with self._lock:
            return sum(series.count for series in self._series.values())


def merge_endpoint_snapshots(snapshots: list[dict]) -> dict:
    """Aggregate per-worker endpoint snapshots into one fleet-level view.

    Counts and errors sum exactly; quantiles cannot be merged from quantiles,
    so the aggregate reports the per-worker range (min/max) of each quantile
    alongside the summed request counts -- enough for the router to spot an
    overloaded worker without shipping raw samples over the wire.
    """
    merged: dict[str, dict] = {}
    for snapshot in snapshots:
        for endpoint, stats in snapshot.items():
            slot = merged.setdefault(
                endpoint,
                {"count": 0, "errors": 0, "workers": 0},
            )
            slot["count"] += stats.get("count", 0)
            slot["errors"] += stats.get("errors", 0)
            slot["workers"] += 1
            for name, _ in LatencyRecorder.QUANTILES:
                value = stats.get(f"{name}_ms")
                if value is None:
                    continue
                low, high = f"{name}_ms_min", f"{name}_ms_max"
                slot[low] = min(slot.get(low, value), value)
                slot[high] = max(slot.get(high, value), value)
    return merged

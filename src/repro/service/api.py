"""JSON request/response schema and the stdlib-only HTTP daemon.

The wire format is deliberately declarative -- a request names registered
databases and describes its two queries as small JSON specs that compile into
the query AST of :mod:`repro.relational.query`:

.. code-block:: json

    {
      "database_left": "D1",
      "query_left": {"name": "Q1", "kind": "count", "relation": "D1",
                     "attribute": "Program"},
      "database_right": "D2",
      "query_right": {"name": "Q2", "kind": "count", "relation": "D2",
                      "attribute": "Major",
                      "where": [{"column": "Univ", "op": "=", "value": "A"}]},
      "attribute_matches": [["Program", "Major"]],
      "config": {"partitioning": "none", "priors": {"alpha": 0.9, "beta": 0.9}}
    }

A query spec may equally be **real SQL** (parsed, bound against the
registered database and lowered by :mod:`repro.sql`)::

    {"name": "Q2", "sql": "SELECT COUNT(Major) FROM D2 WHERE Univ = 'A'"}

or use a **nested source** instead of a flat relation, composing joins,
unions and differences declaratively::

    {"name": "Q2", "kind": "sum", "attribute": "bach_degr",
     "source": {"join": {"left": "School", "right": "Stats",
                         "on": [["ID", "ID"]]}},
     "where": [{"column": "Univ_name", "op": "=", "value": "UMass-Amherst"}]}

An explain payload may instead carry a **run pair** -- the run-diff workload
of :mod:`repro.runs`.  The two runs (inline records, or NDJSON/CSV run files
on the server) are registered as a disjoint database pair and the canonical
queries, attribute matches and request are synthesized by the bridge::

    {"runs": {"left": {"name": "single_thread", "records": [...]},
              "right": {"path": "runs/async_event_loop.ndjson"},
              "key": "id", "compare": "tax"}}

Malformed specs produce structured errors: :class:`SpecError` carries a
JSON-pointer-style ``path`` ("/query_left/where/0/op") that the daemon
returns alongside the message.

Endpoints of the daemon (``python -m repro.service``):

* ``GET  /health``        -- liveness + reliability snapshot (circuit-breaker
  states, degradation counters, cache totals, job-queue depth, per-endpoint
  request counts and latency quantiles -- the load signal the fleet router
  aggregates across workers);
* ``GET  /stats``         -- cache + job-queue counters;
* ``POST /databases``     -- register a database from records;
* ``POST /explain``       -- synchronous explain, returns the full report;
* ``POST /plan``          -- EXPLAIN one query: the optimized physical plan
  tree with per-operator estimated/actual row counts, q-errors and timings
  (``{"database": ..., "query": <spec>, "run": true}``);
* ``POST /analyze``       -- ANALYZE a registered database
  (``{"database": ..., "buckets": 8}``): collects per-relation/per-column
  statistics (cached by relation content in the ``stats`` artifact cache)
  and switches its plans to the cost-based planner;
* ``POST /ingest``        -- apply row-level changes to a registered database
  (``{"database": ..., "relation": ..., "changes": [{"op": "insert",
  "record": {...}}, {"op": "delete", "row_id": "D1:3"}]}``): statistics
  advance incrementally, unaffected cached artifacts are rewired to the new
  fingerprint, affected ones evicted; ``delta_id`` is the idempotency key
  (derived from the payload when omitted) and ``expect_fingerprint`` turns a
  lost update into a 409 conflict instead of a silent overwrite;
* ``POST /jobs``          -- asynchronous explain, returns a job id;
* ``GET  /jobs/<id>``     -- job status (plus the report once done);
* ``DELETE /jobs/<id>``   -- cancel a queued *or running* job (running jobs
  are cancelled cooperatively at the solver's checkpoints).

Every non-2xx response carries one uniform error envelope
``{"error": {"type", "message", "path"}}`` with a distinct status per typed
error: 400 spec/SQL errors, 404 unknown database, 409 cancelled, 503 open
circuit breaker, 504 deadline exceeded.  Unexpected failures are structured
500s -- never a bare string.

:class:`ServiceClient` is a thin urllib-based helper mirroring the endpoints.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import fields
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.explain3d import Explain3DConfig
from repro.core.scoring import Priors
from repro.graphs.weighting import WeightingParams
from repro.live import DeltaConflictError, DeltaError, validate_change_specs
from repro.matching.attribute_match import AttributeMatching, matching
from repro.matching.tuple_matching import TupleMapping, TupleMatch
from repro.relational.executor import Database
from repro.relational.expressions import (
    Comparison,
    Contains,
    IsNull,
    Membership,
    Not,
    Predicate,
)
from repro.relational.query import (
    AggregateFunction,
    Difference,
    Join,
    Query,
    QueryNode,
    Scan,
    Select,
    Union,
    aggregate_query,
    count_query,
    projection_query,
    sum_query,
)
from repro.reliability.breaker import CircuitOpenError
from repro.reliability.deadline import DeadlineExceeded, OperationCancelled
from repro.reliability.retry import RetryPolicy
from repro.relational.errors import EmptyAggregateError, SchemaError
from repro.relational.schema import DataType, Schema
from repro.runs.errors import RunError
from repro.runs.spec import compile_runs_payload
from repro.service.cache import fingerprint_of
from repro.service.engine import ExplainRequest, ExplainService, UnknownDatabaseError
from repro.service.jobs import JobQueue, JobState
from repro.service.metrics import LatencyRecorder
from repro.sql import SqlError
from repro.sql import parse_query as parse_sql_query


class SpecError(ValueError):
    """Raised when a JSON spec cannot be compiled into pipeline objects.

    ``path`` is a JSON-pointer-style location of the offending field within
    the request payload (e.g. ``/query_left/where/0/op``); the daemon returns
    it alongside the message so clients can highlight the exact field.
    """

    def __init__(self, message: str, path: str = ""):
        super().__init__(message)
        self.path = path

    def to_payload(self) -> dict:
        kind = "SqlError" if isinstance(self.__cause__, SqlError) else "SpecError"
        return error_payload(kind, str(self), self.path)


def error_payload(kind: str, message: str, path: str = "") -> dict:
    """The uniform error envelope of every non-2xx daemon response.

    ``{"error": {"type": ..., "message": ..., "path": ...}}`` -- ``type`` is
    the exception class name (machine-matchable), ``path`` a JSON-pointer to
    the offending request field where one exists (empty otherwise).
    """
    return {"error": {"type": kind, "message": message, "path": path}}


#: Exception type -> HTTP status for the daemon's typed error responses.
#: Anything not listed is an unexpected pipeline failure and maps to 500
#: (still as a structured envelope, never a bare string).
_ERROR_STATUS = (
    (SpecError, 400),
    (RunError, 400),
    (DeltaError, 400),
    # A well-formed aggregate over an all-NULL input: the caller's data, not
    # a server fault.  Must precede any broader ExecutionError mapping.
    (EmptyAggregateError, 400),
    (UnknownDatabaseError, 404),
    (DeltaConflictError, 409),
    (OperationCancelled, 409),
    (CircuitOpenError, 503),
    (DeadlineExceeded, 504),
)


# ---------------------------------------------------------------------------
# Spec -> object compilation
# ---------------------------------------------------------------------------

_COMPARISON_OPS = {"=", "==", "!=", "<>", "<", "<=", ">", ">="}


def predicate_from_spec(conditions: list[dict], path: str = "") -> Predicate | None:
    """An ANDed predicate from a list of condition specs (None when empty)."""
    if not conditions:
        return None
    if not isinstance(conditions, list):
        raise SpecError("'where' must be a list of condition objects", path)
    parts: list[Predicate] = []
    for index, condition in enumerate(conditions):
        here = f"{path}/{index}"
        if not isinstance(condition, dict) or "column" not in condition:
            raise SpecError(f"each condition needs a 'column': {condition!r}", here)
        column = condition["column"]
        op = condition.get("op", "=")
        if op in _COMPARISON_OPS:
            if "value" not in condition:
                raise SpecError(
                    f"comparison condition needs a 'value': {condition!r}",
                    f"{here}/value",
                )
            part: Predicate = Comparison(column, op, condition["value"])
        elif op == "in":
            part = Membership(column, tuple(condition.get("values", ())))
        elif op == "contains":
            part = Contains(column, str(condition.get("value", "")))
        elif op == "is_null":
            part = IsNull(column)
        elif op == "not_null":
            part = IsNull(column, negate=True)
        else:
            raise SpecError(f"unsupported condition op {op!r}", f"{here}/op")
        if condition.get("negate"):
            part = Not(part)
        parts.append(part)
    result = parts[0]
    for part in parts[1:]:
        result = result & part
    return result


def source_from_spec(spec, path: str = "") -> QueryNode:
    """A query-tree source from a spec: a relation name, or a nested object.

    Accepted shapes (exactly one of the object keys)::

        "Movie"                                  -- a base relation
        {"relation": "Movie"}                    -- the same, spelled out
        {"join": {"left": ..., "right": ...,
                  "on": [["m_id", "m_id"]]}}     -- equi-join of two sources
        {"union": [..., ...]}                    -- n-ary bag union
        {"difference": {"left": ..., "right": ...,
                        "on": ["name"]}}         -- anti-join on key columns

    Any object form may carry ``"where": [...]`` to wrap the source in a
    selection.  Sources nest arbitrarily.
    """
    if isinstance(spec, str):
        return Scan(spec)
    if not isinstance(spec, dict):
        raise SpecError(
            f"source spec must be a relation name or an object, "
            f"got {type(spec).__name__}",
            path,
        )
    kinds = [key for key in ("relation", "join", "union", "difference") if key in spec]
    if len(kinds) != 1:
        raise SpecError(
            "source spec needs exactly one of 'relation', 'join', "
            f"'union', 'difference'; got {sorted(spec)}",
            path,
        )
    kind = kinds[0]
    node: QueryNode
    if kind == "relation":
        node = Scan(str(spec["relation"]))
    elif kind == "join":
        body = spec["join"]
        if not isinstance(body, dict) or "left" not in body or "right" not in body:
            raise SpecError("'join' needs 'left' and 'right' sources", f"{path}/join")
        pairs: list[tuple[str, str]] = []
        for index, pair in enumerate(body.get("on", [])):
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                raise SpecError(
                    f"join 'on' entries are [left_attr, right_attr] pairs: {pair!r}",
                    f"{path}/join/on/{index}",
                )
            pairs.append((str(pair[0]), str(pair[1])))
        node = Join(
            source_from_spec(body["left"], f"{path}/join/left"),
            source_from_spec(body["right"], f"{path}/join/right"),
            on=tuple(pairs),
        )
    elif kind == "union":
        body = spec["union"]
        if not isinstance(body, list) or len(body) < 2:
            raise SpecError(
                "'union' needs a list of at least two sources", f"{path}/union"
            )
        node = Union(
            tuple(
                source_from_spec(member, f"{path}/union/{index}")
                for index, member in enumerate(body)
            )
        )
    else:  # difference
        body = spec["difference"]
        if not isinstance(body, dict) or "left" not in body or "right" not in body:
            raise SpecError(
                "'difference' needs 'left' and 'right' sources", f"{path}/difference"
            )
        on = body.get("on")
        if not isinstance(on, list) or not on:
            raise SpecError(
                "'difference' needs a non-empty 'on' list of key columns",
                f"{path}/difference/on",
            )
        node = Difference(
            source_from_spec(body["left"], f"{path}/difference/left"),
            source_from_spec(body["right"], f"{path}/difference/right"),
            on=tuple(str(name) for name in on),
        )
    inner_where = predicate_from_spec(spec.get("where", []), f"{path}/where")
    if inner_where is not None:
        node = Select(node, inner_where)
    return node


def query_from_spec(spec: dict, database=None, path: str = "") -> Query:
    """Compile a JSON query spec into a :class:`~repro.relational.query.Query`.

    Three spec families are accepted:

    * ``{"sql": "SELECT ..."}`` -- real SQL, parsed and lowered by
      :mod:`repro.sql` (bound against ``database`` when one is given);
    * ``{"kind": ..., "relation": ...}`` -- the flat single-relation form;
    * ``{"kind": ..., "source": {...}}`` -- the same kinds over a nested
      join/union/difference source tree (:func:`source_from_spec`).
    """
    if not isinstance(spec, dict):
        raise SpecError(
            f"query spec must be an object, got {type(spec).__name__}", path
        )
    if "sql" in spec:
        conflicting = sorted(
            {"kind", "relation", "source", "where", "attribute", "attributes",
             "distinct"} & set(spec)
        )
        if conflicting:
            raise SpecError(
                f"a 'sql' query spec cannot also carry declarative keys "
                f"{conflicting}; put the whole query in the SQL string",
                f"{path}/sql",
            )
        name = spec.get("name", "Q")
        try:
            return parse_sql_query(
                str(spec["sql"]),
                database,
                name=name,
                description=spec.get("description", ""),
            )
        except SqlError as exc:
            raise SpecError(f"bad SQL: {exc}", f"{path}/sql") from exc
    try:
        name = spec["name"]
    except KeyError as exc:
        raise SpecError(f"query spec needs {exc.args[0]!r}", path) from None
    if "relation" in spec and "source" in spec:
        raise SpecError(
            "query spec cannot carry both 'relation' and 'source'; "
            "put the relation inside the source tree",
            path,
        )
    if "relation" in spec:
        source: QueryNode = Scan(spec["relation"])
    elif "source" in spec:
        source = source_from_spec(spec["source"], f"{path}/source")
    else:
        raise SpecError("query spec needs 'relation', 'source' or 'sql'", path)
    kind = str(spec.get("kind", "count")).lower()
    predicate = predicate_from_spec(spec.get("where", []), f"{path}/where")
    description = spec.get("description", "")
    if kind == "count":
        return count_query(
            name, source, predicate=predicate, attribute=spec.get("attribute"),
            description=description,
        )
    if kind == "sum":
        if "attribute" not in spec:
            raise SpecError("sum query needs an 'attribute'", f"{path}/attribute")
        return sum_query(
            name, source, spec["attribute"], predicate=predicate, description=description
        )
    if kind in ("avg", "max", "min"):
        if "attribute" not in spec:
            raise SpecError(f"{kind} query needs an 'attribute'", f"{path}/attribute")
        return aggregate_query(
            name,
            AggregateFunction[kind.upper()],
            source,
            spec["attribute"],
            predicate=predicate,
            description=description,
        )
    if kind == "project":
        attributes = spec.get("attributes")
        if not attributes:
            raise SpecError("project query needs 'attributes'", f"{path}/attributes")
        return projection_query(
            name,
            source,
            list(attributes),
            predicate=predicate,
            distinct=bool(spec.get("distinct", True)),
            description=description,
        )
    raise SpecError(f"unsupported query kind {kind!r}", f"{path}/kind")


def database_from_spec(spec: dict) -> Database:
    """Build a :class:`Database` from ``{"name": ..., "relations": {name: [records]}}``.

    An optional ``"dtypes"`` block pins per-relation column types
    (``{"Run": {"id": "integer", "tax": "float"}}``), making a registration
    loss-free across the JSON wire: the rebuilt relation coerces into exactly
    the declared schema instead of re-inferring from the records, so content
    fingerprints agree with the sender's.  Without it, types are inferred.
    """
    if not isinstance(spec, dict) or "name" not in spec:
        raise SpecError("database spec needs a 'name'")
    relations = spec.get("relations")
    if not isinstance(relations, dict) or not relations:
        raise SpecError("database spec needs a non-empty 'relations' object")
    dtypes = spec.get("dtypes") or {}
    if not isinstance(dtypes, dict):
        raise SpecError("'dtypes' must be an object of {relation: {column: type}}", "/dtypes")
    db = Database(spec["name"])
    for relation_name, records in relations.items():
        if not isinstance(records, list):
            raise SpecError(f"relation {relation_name!r} must be a list of records")
        schema = None
        declared = dtypes.get(relation_name)
        if declared is not None:
            if not isinstance(declared, dict) or not declared:
                raise SpecError(
                    f"dtypes for relation {relation_name!r} must be a non-empty "
                    "object of {column: type}",
                    f"/dtypes/{relation_name}",
                )
            try:
                schema = Schema(
                    [(str(column), DataType(str(type_name)))
                     for column, type_name in declared.items()]
                )
            except (ValueError, SchemaError) as exc:
                raise SpecError(
                    f"bad dtypes for relation {relation_name!r}: {exc}",
                    f"/dtypes/{relation_name}",
                ) from None
        db.add_records(relation_name, records, schema)
    return db


def matches_from_spec(spec: list, path: str = "") -> AttributeMatching:
    """``[["Program", "Major"], ["zip", "county", "<="]]`` -> AttributeMatching."""
    try:
        return matching(*[tuple(pair) for pair in spec])
    except (KeyError, TypeError, ValueError) as exc:
        raise SpecError(f"bad attribute_matches spec: {exc}", path) from exc


def mapping_from_spec(spec: list, path: str = "") -> TupleMapping:
    """``[["T1:0", "T2:0", 0.95], ...]`` -> an explicit initial TupleMapping."""
    mapping = TupleMapping()
    for index, entry in enumerate(spec):
        if not isinstance(entry, (list, tuple)) or len(entry) < 3:
            raise SpecError(
                f"mapping entries are [left, right, probability]: {entry!r}",
                f"{path}/{index}",
            )
        left, right, probability = entry[0], entry[1], float(entry[2])
        similarity = float(entry[3]) if len(entry) > 3 else 0.0
        mapping.add(TupleMatch(str(left), str(right), probability, similarity))
    return mapping


_CONFIG_FIELDS = {f.name for f in fields(Explain3DConfig)}


def config_from_spec(spec: dict, path: str = "") -> Explain3DConfig:
    """Compile config overrides; nested priors/weighting are plain objects."""
    if not isinstance(spec, dict):
        raise SpecError("config spec must be an object", path)
    kwargs = dict(spec)
    unknown = set(kwargs) - _CONFIG_FIELDS
    if unknown:
        raise SpecError(f"unknown config fields: {sorted(unknown)}", path)
    if "solver" in kwargs:
        raise SpecError("solver backends cannot be configured over the wire", f"{path}/solver")
    try:
        if "priors" in kwargs:
            kwargs["priors"] = Priors(**kwargs["priors"])
        if "weighting" in kwargs:
            kwargs["weighting"] = WeightingParams(**kwargs["weighting"])
        return Explain3DConfig(**kwargs)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"bad config spec: {exc}", path) from exc


def plan_request_from_payload(payload: dict, *, database_resolver=None):
    """Compile a ``POST /plan`` payload into ``(database_name, query, run)``."""
    if not isinstance(payload, dict):
        raise SpecError("plan payload must be a JSON object")
    for key in ("database", "query"):
        if key not in payload:
            raise SpecError(f"plan payload needs {key!r}", f"/{key}")
    name = str(payload["database"])
    database = None
    if database_resolver is not None:
        try:
            database = database_resolver(name)
        except KeyError:
            database = None
    query = query_from_spec(payload["query"], database, "/query")
    return name, query, bool(payload.get("run", True))


def analyze_request_from_payload(payload: dict) -> tuple[str, int | None]:
    """Compile a ``POST /analyze`` payload into ``(database_name, buckets)``."""
    if not isinstance(payload, dict):
        raise SpecError("analyze payload must be a JSON object")
    if "database" not in payload:
        raise SpecError("analyze payload needs 'database'", "/database")
    buckets = payload.get("buckets")
    if buckets is not None:
        try:
            buckets = int(buckets)
        except (TypeError, ValueError) as exc:
            raise SpecError(f"bad bucket count: {exc}", "/buckets") from exc
        if buckets < 1:
            raise SpecError("bucket count must be positive", "/buckets")
    return str(payload["database"]), buckets


def ingest_request_from_payload(payload: dict) -> dict:
    """Compile a ``POST /ingest`` payload into :meth:`ExplainService.ingest` kwargs.

    Change specs are shape-validated here (JSON-pointer errors); value-level
    problems (unknown rows, bad columns) surface at apply time against the
    actual schema.  When the payload carries no ``delta_id``, a deterministic
    one is derived from the payload itself, so a client retry of the same
    batch dedupes at the engine's idempotency gate -- intentionally repeated
    identical batches must carry distinct ``delta_id`` values (or pin
    ``expect_fingerprint``).
    """
    if not isinstance(payload, dict):
        raise SpecError("ingest payload must be a JSON object")
    for key in ("database", "relation", "changes"):
        if key not in payload:
            raise SpecError(f"ingest payload needs {key!r}", f"/{key}")
    changes = validate_change_specs(payload["changes"], "/changes")
    expect = payload.get("expect_fingerprint")
    delta_id = payload.get("delta_id")
    if delta_id is None:
        delta_id = fingerprint_of(
            str(payload["database"]),
            str(payload["relation"]),
            changes,
            expect if expect is not None else "auto",
        )
    return {
        "database": str(payload["database"]),
        "relation": str(payload["relation"]),
        "changes": changes,
        "delta_id": str(delta_id),
        "expect_fingerprint": str(expect) if expect is not None else None,
    }


def runs_request_from_payload(payload: dict, service: ExplainService) -> ExplainRequest:
    """Compile a ``{"runs": ...}`` explain payload against a live service.

    The run pair is synthesized into a disjoint database pair by
    :mod:`repro.runs.bridge` and registered on the service (re-registering
    identical run content lands on the identical fingerprint, so repeated
    requests over the same runs stay warm in the report cache); the rewritten
    declarative payload then compiles through the ordinary
    :func:`request_from_payload` path.
    """
    compiled = compile_runs_payload(payload)
    problem = compiled.problem
    service.register_database(problem.database_left, problem.database_left.name)
    service.register_database(problem.database_right, problem.database_right.name)
    return request_from_payload(
        compiled.explain_payload, database_resolver=service.database
    )


def request_from_payload(payload: dict, *, database_resolver=None) -> ExplainRequest:
    """Compile a full JSON request payload into an :class:`ExplainRequest`.

    ``database_resolver`` maps a registered database name to its
    :class:`Database` so SQL query specs bind against the real schema (the
    daemon passes the service's registry).  A name the resolver cannot serve
    compiles leniently here and surfaces as an unknown-database error once
    the request reaches the engine.
    """
    if not isinstance(payload, dict):
        raise SpecError("request payload must be a JSON object")
    for key in ("query_left", "database_left", "query_right", "database_right"):
        if key not in payload:
            raise SpecError(f"request payload needs {key!r}", f"/{key}")

    def _database(name_key: str):
        if database_resolver is None:
            return None
        try:
            return database_resolver(str(payload[name_key]))
        except KeyError:
            return None

    labeled = payload.get("labeled_pairs")
    labeled_pairs = None
    if labeled:
        try:
            labeled_pairs = {(str(a), str(b)) for a, b in labeled}
        except (TypeError, ValueError) as exc:
            raise SpecError(
                f"labeled_pairs entries are [left, right] pairs: {exc}",
                "/labeled_pairs",
            ) from exc
    deadline_seconds = payload.get("deadline_seconds")
    if deadline_seconds is not None:
        try:
            deadline_seconds = float(deadline_seconds)
        except (TypeError, ValueError) as exc:
            raise SpecError(f"bad deadline_seconds: {exc}", "/deadline_seconds") from exc
        if deadline_seconds <= 0:
            raise SpecError("deadline_seconds must be positive", "/deadline_seconds")
    on_deadline = str(payload.get("on_deadline", "error"))
    if on_deadline not in ("error", "partial"):
        raise SpecError(
            f"on_deadline must be 'error' or 'partial', got {on_deadline!r}",
            "/on_deadline",
        )
    return ExplainRequest(
        query_left=query_from_spec(
            payload["query_left"], _database("database_left"), "/query_left"
        ),
        database_left=str(payload["database_left"]),
        query_right=query_from_spec(
            payload["query_right"], _database("database_right"), "/query_right"
        ),
        database_right=str(payload["database_right"]),
        attribute_matches=(
            matches_from_spec(payload["attribute_matches"], "/attribute_matches")
            if payload.get("attribute_matches")
            else None
        ),
        tuple_mapping=(
            mapping_from_spec(payload["tuple_mapping"], "/tuple_mapping")
            if payload.get("tuple_mapping")
            else None
        ),
        labeled_pairs=labeled_pairs,
        config=(
            config_from_spec(payload["config"], "/config")
            if payload.get("config")
            else None
        ),
        deadline_seconds=deadline_seconds,
        on_deadline=on_deadline,
    )


# ---------------------------------------------------------------------------
# The HTTP daemon
# ---------------------------------------------------------------------------

class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the service and its job queue."""

    daemon_threads = True

    def __init__(
        self,
        address,
        service: ExplainService,
        *,
        job_workers: int = 2,
        retry_policy: RetryPolicy | None = None,
    ):
        super().__init__(address, _ServiceRequestHandler)
        self.service = service
        self.jobs = JobQueue(
            service.explain, max_workers=job_workers, retry_policy=retry_policy
        )
        #: Per-endpoint request counts + latency quantiles (rides /health).
        self.metrics = LatencyRecorder()


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer  # narrowed for type checkers

    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # keep test and daemon output clean

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self._last_status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    _KNOWN_PATHS = frozenset(
        {"/health", "/stats", "/databases", "/explain", "/plan", "/analyze",
         "/ingest", "/jobs"}
    )

    def _endpoint(self, method: str) -> str:
        """A bounded-cardinality endpoint label for the metrics recorder."""
        path = self.path
        if path.startswith("/jobs/"):
            path = "/jobs/{id}"
        elif path not in self._KNOWN_PATHS:
            path = "{unknown}"
        return f"{method} {path}"

    def _timed(self, method: str, route) -> None:
        """Serve one request through ``route``, recording endpoint metrics."""
        self._last_status = 200
        start = time.perf_counter()
        try:
            route()
        finally:
            self.server.metrics.observe(
                self._endpoint(method),
                time.perf_counter() - start,
                error=self._last_status >= 400,
            )

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise SpecError("empty request body")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid JSON body: {exc}") from exc

    def _send_error(self, exc: Exception) -> None:
        """One typed JSON error envelope per exception -- never a bare 500.

        :class:`SpecError` keeps its own payload (it carries the JSON-pointer
        path and distinguishes SQL errors); everything else maps through
        ``_ERROR_STATUS``, with unexpected exceptions reported as a
        structured 500.
        """
        if isinstance(exc, SpecError):
            self._send_json(exc.to_payload(), status=400)
            return
        for exc_type, status in _ERROR_STATUS:
            if isinstance(exc, exc_type):
                self._send_json(
                    error_payload(
                        type(exc).__name__, str(exc), getattr(exc, "path", "")
                    ),
                    status=status,
                )
                return
        self._send_json(
            error_payload(type(exc).__name__, str(exc)), status=500
        )

    # -- routes -------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._timed("GET", self._route_get)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._timed("POST", self._route_post)

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._timed("DELETE", self._route_delete)

    def _route_get(self) -> None:
        try:
            if self.path == "/health":
                payload = self.server.service.health()
                queue_stats = self.server.jobs.queue_stats()
                payload["jobs"] = {
                    "queue_depth": queue_stats["states"].get("queued", 0),
                    "running": queue_stats["states"].get("running", 0),
                    **{
                        k: queue_stats[k]
                        for k in ("submitted", "completed", "failed",
                                  "cancelled", "deduplicated")
                    },
                }
                payload["endpoints"] = self.server.metrics.snapshot()
                self._send_json(payload)
            elif self.path == "/stats":
                self._send_json(
                    {"service": self.server.service.stats(), "jobs": self.server.jobs.queue_stats()}
                )
            elif self.path.startswith("/jobs/"):
                self._get_job(self.path.removeprefix("/jobs/"))
            else:
                self._send_json(
                    error_payload("NotFound", f"unknown path {self.path}"), status=404
                )
        except Exception as exc:  # noqa: BLE001 - surface errors as JSON
            self._send_error(exc)

    def _route_post(self) -> None:
        try:
            if self.path == "/databases":
                spec = self._read_json()
                db = database_from_spec(spec)
                fingerprint = self.server.service.register_database(db, db.name)
                self._send_json({"name": db.name, "fingerprint": fingerprint}, status=201)
            elif self.path == "/explain":
                payload = self._read_json()
                if isinstance(payload, dict) and "runs" in payload:
                    request = runs_request_from_payload(payload, self.server.service)
                else:
                    request = request_from_payload(
                        payload, database_resolver=self.server.service.database
                    )
                result = self.server.service.explain(request)
                self._send_json(result.to_dict())
            elif self.path == "/plan":
                name, query, run = plan_request_from_payload(
                    self._read_json(), database_resolver=self.server.service.database
                )
                self._send_json(self.server.service.explain_plan(name, query, run=run))
            elif self.path == "/analyze":
                name, buckets = analyze_request_from_payload(self._read_json())
                self._send_json(self.server.service.analyze(name, buckets=buckets))
            elif self.path == "/ingest":
                kwargs = ingest_request_from_payload(self._read_json())
                self._send_json(self.server.service.ingest(**kwargs))
            elif self.path == "/jobs":
                payload = self._read_json()
                request = request_from_payload(
                    payload, database_resolver=self.server.service.database
                )
                # Single-flight: identical concurrent submissions (retries,
                # duplicate clicks, router failover) coalesce onto one job.
                job = self.server.jobs.submit(
                    request, idempotency_key=fingerprint_of(payload)
                )
                self._send_json(job.status(), status=202)
            else:
                self._send_json(
                    error_payload("NotFound", f"unknown path {self.path}"), status=404
                )
        except Exception as exc:  # noqa: BLE001 - surface pipeline errors as JSON
            self._send_error(exc)

    def _route_delete(self) -> None:
        if not self.path.startswith("/jobs/"):
            self._send_json(
                error_payload("NotFound", f"unknown path {self.path}"), status=404
            )
            return
        job_id = self.path.removeprefix("/jobs/")
        job = self.server.jobs.get(job_id)
        if job is None:
            self._send_json(
                error_payload("UnknownJobError", f"unknown job {job_id}"), status=404
            )
        elif self.server.jobs.cancel(job_id):
            # Queued jobs are CANCELLED immediately; running jobs get a
            # cooperative cancel request honoured at the next checkpoint.
            self._send_json({"id": job_id, "state": job.state.value,
                             "cancel_requested": job.cancel_requested})
        else:
            self._send_json(
                error_payload(
                    "JobFinishedError", f"job {job_id} already finished"
                ),
                status=409,
            )

    def _get_job(self, job_id: str) -> None:
        job = self.server.jobs.get(job_id)
        if job is None:
            self._send_json(
                error_payload("UnknownJobError", f"unknown job {job_id}"), status=404
            )
            return
        payload = job.status()
        if job.state is JobState.DONE:
            payload["result"] = job.result.to_dict()
        self._send_json(payload)


def serve(
    service: ExplainService,
    *,
    host: str = "127.0.0.1",
    port: int = 8311,
    job_workers: int = 2,
    retry_policy: RetryPolicy | None = None,
) -> ServiceHTTPServer:
    """Create (but do not start) the HTTP server -- call ``serve_forever()``."""
    return ServiceHTTPServer(
        (host, port), service, job_workers=job_workers, retry_policy=retry_policy
    )


def serve_in_background(
    service: ExplainService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    job_workers: int = 2,
    retry_policy: RetryPolicy | None = None,
) -> tuple[ServiceHTTPServer, threading.Thread]:
    """Start the daemon on a background thread (port 0 = ephemeral); returns both."""
    server = serve(
        service, host=host, port=port, job_workers=job_workers, retry_policy=retry_policy
    )
    thread = threading.Thread(target=server.serve_forever, name="explain-http", daemon=True)
    thread.start()
    return server, thread


# ---------------------------------------------------------------------------
# The thin client
# ---------------------------------------------------------------------------

class ServiceClient:
    """A stdlib-only client for the explanation service daemon."""

    def __init__(self, base_url: str, *, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _call(self, method: str, path: str, payload: dict | None = None) -> dict:
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            body = exc.read()
            error_type, path = "", ""
            try:
                error = json.loads(body).get("error", body.decode(errors="replace"))
                if isinstance(error, dict):
                    detail = str(error.get("message", ""))
                    error_type = str(error.get("type", ""))
                    path = str(error.get("path", ""))
                else:
                    detail = str(error)
            except (json.JSONDecodeError, AttributeError):
                detail = body.decode(errors="replace")
            raise ServiceClientError(
                exc.code, detail, error_type=error_type, path=path
            ) from None

    def health(self) -> dict:
        return self._call("GET", "/health")

    def stats(self) -> dict:
        return self._call("GET", "/stats")

    def register_database(self, name: str, relations: dict[str, list[dict]]) -> dict:
        return self._call("POST", "/databases", {"name": name, "relations": relations})

    def explain(self, payload: dict) -> dict:
        return self._call("POST", "/explain", payload)

    def plan(self, payload: dict) -> dict:
        return self._call("POST", "/plan", payload)

    def analyze(self, database: str, *, buckets: int | None = None) -> dict:
        payload: dict = {"database": database}
        if buckets is not None:
            payload["buckets"] = buckets
        return self._call("POST", "/analyze", payload)

    def ingest(
        self,
        database: str,
        relation: str,
        changes: list,
        *,
        delta_id: str | None = None,
        expect_fingerprint: str | None = None,
    ) -> dict:
        payload: dict = {"database": database, "relation": relation, "changes": changes}
        if delta_id is not None:
            payload["delta_id"] = delta_id
        if expect_fingerprint is not None:
            payload["expect_fingerprint"] = expect_fingerprint
        return self._call("POST", "/ingest", payload)

    def submit_job(self, payload: dict) -> dict:
        return self._call("POST", "/jobs", payload)

    def job(self, job_id: str) -> dict:
        return self._call("GET", f"/jobs/{job_id}")

    def cancel_job(self, job_id: str) -> dict:
        return self._call("DELETE", f"/jobs/{job_id}")

    def wait_for_job(self, job_id: str, *, timeout: float = 30.0, poll: float = 0.05) -> dict:
        """Poll a job until it reaches a terminal state; returns the final status."""
        import time as _time

        deadline = _time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if JobState(status["state"]).terminal:
                return status
            if _time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} did not finish within {timeout}s")
            _time.sleep(poll)


class ServiceClientError(RuntimeError):
    """An HTTP error response from the daemon, with status code and detail.

    ``error_type`` and ``path`` mirror the daemon's typed error envelope
    (``{"error": {"type", "message", "path"}}``) when present.
    """

    def __init__(self, status: int, detail: str, *, error_type: str = "", path: str = ""):
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.detail = detail
        self.error_type = error_type
        self.path = path

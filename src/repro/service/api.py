"""JSON request/response schema and the stdlib-only HTTP daemon.

The wire format is deliberately declarative -- a request names registered
databases and describes its two queries as small JSON specs that compile into
the query AST of :mod:`repro.relational.query`:

.. code-block:: json

    {
      "database_left": "D1",
      "query_left": {"name": "Q1", "kind": "count", "relation": "D1",
                     "attribute": "Program"},
      "database_right": "D2",
      "query_right": {"name": "Q2", "kind": "count", "relation": "D2",
                      "attribute": "Major",
                      "where": [{"column": "Univ", "op": "=", "value": "A"}]},
      "attribute_matches": [["Program", "Major"]],
      "config": {"partitioning": "none", "priors": {"alpha": 0.9, "beta": 0.9}}
    }

Endpoints of the daemon (``python -m repro.service``):

* ``GET  /health``        -- liveness probe;
* ``GET  /stats``         -- cache + job-queue counters;
* ``POST /databases``     -- register a database from records;
* ``POST /explain``       -- synchronous explain, returns the full report;
* ``POST /jobs``          -- asynchronous explain, returns a job id;
* ``GET  /jobs/<id>``     -- job status (plus the report once done);
* ``DELETE /jobs/<id>``   -- cancel a still-queued job.

:class:`ServiceClient` is a thin urllib-based helper mirroring the endpoints.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from dataclasses import fields
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.explain3d import Explain3DConfig
from repro.core.scoring import Priors
from repro.graphs.weighting import WeightingParams
from repro.matching.attribute_match import AttributeMatching, matching
from repro.matching.tuple_matching import TupleMapping, TupleMatch
from repro.relational.executor import Database
from repro.relational.expressions import (
    Comparison,
    Contains,
    IsNull,
    Membership,
    Not,
    Predicate,
)
from repro.relational.query import (
    AggregateFunction,
    Query,
    Scan,
    aggregate_query,
    count_query,
    projection_query,
    sum_query,
)
from repro.service.engine import ExplainRequest, ExplainService, UnknownDatabaseError
from repro.service.jobs import JobQueue, JobState


class SpecError(ValueError):
    """Raised when a JSON spec cannot be compiled into pipeline objects."""


# ---------------------------------------------------------------------------
# Spec -> object compilation
# ---------------------------------------------------------------------------

_COMPARISON_OPS = {"=", "==", "!=", "<>", "<", "<=", ">", ">="}


def predicate_from_spec(conditions: list[dict]) -> Predicate | None:
    """An ANDed predicate from a list of condition specs (None when empty)."""
    if not conditions:
        return None
    parts: list[Predicate] = []
    for condition in conditions:
        if not isinstance(condition, dict) or "column" not in condition:
            raise SpecError(f"each condition needs a 'column': {condition!r}")
        column = condition["column"]
        op = condition.get("op", "=")
        if op in _COMPARISON_OPS:
            if "value" not in condition:
                raise SpecError(f"comparison condition needs a 'value': {condition!r}")
            part: Predicate = Comparison(column, op, condition["value"])
        elif op == "in":
            part = Membership(column, tuple(condition.get("values", ())))
        elif op == "contains":
            part = Contains(column, str(condition.get("value", "")))
        elif op == "is_null":
            part = IsNull(column)
        elif op == "not_null":
            part = IsNull(column, negate=True)
        else:
            raise SpecError(f"unsupported condition op {op!r}")
        if condition.get("negate"):
            part = Not(part)
        parts.append(part)
    result = parts[0]
    for part in parts[1:]:
        result = result & part
    return result


def query_from_spec(spec: dict) -> Query:
    """Compile a JSON query spec into a :class:`~repro.relational.query.Query`."""
    if not isinstance(spec, dict):
        raise SpecError(f"query spec must be an object, got {type(spec).__name__}")
    try:
        name = spec["name"]
        relation = spec["relation"]
    except KeyError as exc:
        raise SpecError(f"query spec needs {exc.args[0]!r}") from None
    kind = str(spec.get("kind", "count")).lower()
    predicate = predicate_from_spec(spec.get("where", []))
    source = Scan(relation)
    description = spec.get("description", "")
    if kind == "count":
        return count_query(
            name, source, predicate=predicate, attribute=spec.get("attribute"),
            description=description,
        )
    if kind == "sum":
        if "attribute" not in spec:
            raise SpecError("sum query needs an 'attribute'")
        return sum_query(
            name, source, spec["attribute"], predicate=predicate, description=description
        )
    if kind in ("avg", "max", "min"):
        if "attribute" not in spec:
            raise SpecError(f"{kind} query needs an 'attribute'")
        return aggregate_query(
            name,
            AggregateFunction[kind.upper()],
            source,
            spec["attribute"],
            predicate=predicate,
            description=description,
        )
    if kind == "project":
        attributes = spec.get("attributes")
        if not attributes:
            raise SpecError("project query needs 'attributes'")
        return projection_query(
            name,
            source,
            list(attributes),
            predicate=predicate,
            distinct=bool(spec.get("distinct", True)),
            description=description,
        )
    raise SpecError(f"unsupported query kind {kind!r}")


def database_from_spec(spec: dict) -> Database:
    """Build a :class:`Database` from ``{"name": ..., "relations": {name: [records]}}``."""
    if not isinstance(spec, dict) or "name" not in spec:
        raise SpecError("database spec needs a 'name'")
    relations = spec.get("relations")
    if not isinstance(relations, dict) or not relations:
        raise SpecError("database spec needs a non-empty 'relations' object")
    db = Database(spec["name"])
    for relation_name, records in relations.items():
        if not isinstance(records, list):
            raise SpecError(f"relation {relation_name!r} must be a list of records")
        db.add_records(relation_name, records)
    return db


def matches_from_spec(spec: list) -> AttributeMatching:
    """``[["Program", "Major"], ["zip", "county", "<="]]`` -> AttributeMatching."""
    try:
        return matching(*[tuple(pair) for pair in spec])
    except (KeyError, TypeError, ValueError) as exc:
        raise SpecError(f"bad attribute_matches spec: {exc}") from exc


def mapping_from_spec(spec: list) -> TupleMapping:
    """``[["T1:0", "T2:0", 0.95], ...]`` -> an explicit initial TupleMapping."""
    mapping = TupleMapping()
    for entry in spec:
        if not isinstance(entry, (list, tuple)) or len(entry) < 3:
            raise SpecError(f"mapping entries are [left, right, probability]: {entry!r}")
        left, right, probability = entry[0], entry[1], float(entry[2])
        similarity = float(entry[3]) if len(entry) > 3 else 0.0
        mapping.add(TupleMatch(str(left), str(right), probability, similarity))
    return mapping


_CONFIG_FIELDS = {f.name for f in fields(Explain3DConfig)}


def config_from_spec(spec: dict) -> Explain3DConfig:
    """Compile config overrides; nested priors/weighting are plain objects."""
    if not isinstance(spec, dict):
        raise SpecError("config spec must be an object")
    kwargs = dict(spec)
    unknown = set(kwargs) - _CONFIG_FIELDS
    if unknown:
        raise SpecError(f"unknown config fields: {sorted(unknown)}")
    if "solver" in kwargs:
        raise SpecError("solver backends cannot be configured over the wire")
    try:
        if "priors" in kwargs:
            kwargs["priors"] = Priors(**kwargs["priors"])
        if "weighting" in kwargs:
            kwargs["weighting"] = WeightingParams(**kwargs["weighting"])
        return Explain3DConfig(**kwargs)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"bad config spec: {exc}") from exc


def request_from_payload(payload: dict) -> ExplainRequest:
    """Compile a full JSON request payload into an :class:`ExplainRequest`."""
    if not isinstance(payload, dict):
        raise SpecError("request payload must be a JSON object")
    for key in ("query_left", "database_left", "query_right", "database_right"):
        if key not in payload:
            raise SpecError(f"request payload needs {key!r}")
    labeled = payload.get("labeled_pairs")
    labeled_pairs = None
    if labeled:
        try:
            labeled_pairs = {(str(a), str(b)) for a, b in labeled}
        except (TypeError, ValueError) as exc:
            raise SpecError(f"labeled_pairs entries are [left, right] pairs: {exc}") from exc
    return ExplainRequest(
        query_left=query_from_spec(payload["query_left"]),
        database_left=str(payload["database_left"]),
        query_right=query_from_spec(payload["query_right"]),
        database_right=str(payload["database_right"]),
        attribute_matches=(
            matches_from_spec(payload["attribute_matches"])
            if payload.get("attribute_matches")
            else None
        ),
        tuple_mapping=(
            mapping_from_spec(payload["tuple_mapping"])
            if payload.get("tuple_mapping")
            else None
        ),
        labeled_pairs=labeled_pairs,
        config=config_from_spec(payload["config"]) if payload.get("config") else None,
    )


# ---------------------------------------------------------------------------
# The HTTP daemon
# ---------------------------------------------------------------------------

class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the service and its job queue."""

    daemon_threads = True

    def __init__(self, address, service: ExplainService, *, job_workers: int = 2):
        super().__init__(address, _ServiceRequestHandler)
        self.service = service
        self.jobs = JobQueue(service.explain, max_workers=job_workers)


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer  # narrowed for type checkers

    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # keep test and daemon output clean

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise SpecError("empty request body")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid JSON body: {exc}") from exc

    # -- routes -------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/health":
            self._send_json({"status": "ok"})
        elif self.path == "/stats":
            self._send_json(
                {"service": self.server.service.stats(), "jobs": self.server.jobs.queue_stats()}
            )
        elif self.path.startswith("/jobs/"):
            self._get_job(self.path.removeprefix("/jobs/"))
        else:
            self._send_json({"error": f"unknown path {self.path}"}, status=404)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path == "/databases":
                spec = self._read_json()
                db = database_from_spec(spec)
                fingerprint = self.server.service.register_database(db, db.name)
                self._send_json({"name": db.name, "fingerprint": fingerprint}, status=201)
            elif self.path == "/explain":
                request = request_from_payload(self._read_json())
                result = self.server.service.explain(request)
                self._send_json(result.to_dict())
            elif self.path == "/jobs":
                request = request_from_payload(self._read_json())
                job = self.server.jobs.submit(request)
                self._send_json(job.status(), status=202)
            else:
                self._send_json({"error": f"unknown path {self.path}"}, status=404)
        except SpecError as exc:
            self._send_json({"error": str(exc)}, status=400)
        except UnknownDatabaseError as exc:
            self._send_json({"error": str(exc)}, status=404)
        except Exception as exc:  # noqa: BLE001 - surface pipeline errors as JSON
            self._send_json({"error": f"{type(exc).__name__}: {exc}"}, status=500)

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        if not self.path.startswith("/jobs/"):
            self._send_json({"error": f"unknown path {self.path}"}, status=404)
            return
        job_id = self.path.removeprefix("/jobs/")
        if self.server.jobs.get(job_id) is None:
            self._send_json({"error": f"unknown job {job_id}"}, status=404)
        elif self.server.jobs.cancel(job_id):
            self._send_json({"id": job_id, "state": JobState.CANCELLED.value})
        else:
            self._send_json({"error": f"job {job_id} already started"}, status=409)

    def _get_job(self, job_id: str) -> None:
        job = self.server.jobs.get(job_id)
        if job is None:
            self._send_json({"error": f"unknown job {job_id}"}, status=404)
            return
        payload = job.status()
        if job.state is JobState.DONE:
            payload["result"] = job.result.to_dict()
        self._send_json(payload)


def serve(
    service: ExplainService,
    *,
    host: str = "127.0.0.1",
    port: int = 8311,
    job_workers: int = 2,
) -> ServiceHTTPServer:
    """Create (but do not start) the HTTP server -- call ``serve_forever()``."""
    return ServiceHTTPServer((host, port), service, job_workers=job_workers)


def serve_in_background(
    service: ExplainService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    job_workers: int = 2,
) -> tuple[ServiceHTTPServer, threading.Thread]:
    """Start the daemon on a background thread (port 0 = ephemeral); returns both."""
    server = serve(service, host=host, port=port, job_workers=job_workers)
    thread = threading.Thread(target=server.serve_forever, name="explain-http", daemon=True)
    thread.start()
    return server, thread


# ---------------------------------------------------------------------------
# The thin client
# ---------------------------------------------------------------------------

class ServiceClient:
    """A stdlib-only client for the explanation service daemon."""

    def __init__(self, base_url: str, *, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _call(self, method: str, path: str, payload: dict | None = None) -> dict:
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                detail = json.loads(body).get("error", body.decode(errors="replace"))
            except (json.JSONDecodeError, AttributeError):
                detail = body.decode(errors="replace")
            raise ServiceClientError(exc.code, detail) from None

    def health(self) -> dict:
        return self._call("GET", "/health")

    def stats(self) -> dict:
        return self._call("GET", "/stats")

    def register_database(self, name: str, relations: dict[str, list[dict]]) -> dict:
        return self._call("POST", "/databases", {"name": name, "relations": relations})

    def explain(self, payload: dict) -> dict:
        return self._call("POST", "/explain", payload)

    def submit_job(self, payload: dict) -> dict:
        return self._call("POST", "/jobs", payload)

    def job(self, job_id: str) -> dict:
        return self._call("GET", f"/jobs/{job_id}")

    def cancel_job(self, job_id: str) -> dict:
        return self._call("DELETE", f"/jobs/{job_id}")

    def wait_for_job(self, job_id: str, *, timeout: float = 30.0, poll: float = 0.05) -> dict:
        """Poll a job until it reaches a terminal state; returns the final status."""
        import time as _time

        deadline = _time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if JobState(status["state"]).terminal:
                return status
            if _time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} did not finish within {timeout}s")
            _time.sleep(poll)


class ServiceClientError(RuntimeError):
    """An HTTP error response from the daemon, with status code and detail."""

    def __init__(self, status: int, detail: str):
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.detail = detail

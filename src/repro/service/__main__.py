"""Run the explanation service daemon: ``python -m repro.service``.

Options cover the service knobs (cache sizes, disk spill, job concurrency),
the reliability knobs (default request deadline, circuit-breaker thresholds,
job retry attempts), plus two smoke modes:

* ``--self-test`` boots the daemon on an ephemeral port, drives one full
  register + explain round trip through the HTTP client, validates the
  response shape, and exits -- the CI smoke job runs exactly that;
* ``--crash-smoke`` exercises crash recovery: it starts the daemon as a
  subprocess with a disk-spill directory, serves requests, ``kill -9``-s the
  process, corrupts a spilled cache file (plus plants an orphaned temp file,
  as a mid-write crash would), restarts on the same spill directory and
  asserts the warm answers are byte-identical to the pre-crash ones while
  the corrupt file is quarantined -- a warm cache is never worse than a
  cold one.

Chaos faults can be armed at daemon start via the ``REPRO_FAULTS``
environment variable, e.g. ``REPRO_FAULTS="cache.spill_load=raise"``.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro.reliability.faults import FAULTS
from repro.reliability.retry import RetryPolicy
from repro.service.api import ServiceClient, serve, serve_in_background
from repro.service.engine import ExplainService, ServiceConfig


def _build_service(args: argparse.Namespace) -> ExplainService:
    return ExplainService(
        ServiceConfig(
            cache_entries=args.cache_entries,
            report_cache_entries=args.report_cache_entries,
            spill_dir=args.spill_dir,
            spill_write_through=args.spill_write_through,
            default_deadline_seconds=args.default_deadline_seconds,
            breaker_failures=args.breaker_failures,
            breaker_reset_seconds=args.breaker_reset_seconds,
        )
    )


def self_test() -> int:
    """Boot the daemon, run one explain request end to end, validate the JSON."""
    service = ExplainService()
    server, _ = serve_in_background(service, port=0)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    try:
        assert client.health()["status"] == "ok"
        client.register_database(
            "D1",
            {
                "D1": [
                    {"Program": "Accounting", "Degree": "B.S."},
                    {"Program": "CS", "Degree": "B.A."},
                    {"Program": "CS", "Degree": "B.S."},
                    {"Program": "ECE", "Degree": "B.S."},
                ]
            },
        )
        client.register_database(
            "D2",
            {
                "D2": [
                    {"Univ": "A", "Major": "Accounting"},
                    {"Univ": "A", "Major": "CSE"},
                    {"Univ": "A", "Major": "ECE"},
                    {"Univ": "B", "Major": "Art"},
                ]
            },
        )
        payload = {
            "database_left": "D1",
            "query_left": {"name": "Q1", "kind": "count", "relation": "D1",
                           "attribute": "Program"},
            "database_right": "D2",
            "query_right": {
                "name": "Q2", "kind": "count", "relation": "D2", "attribute": "Major",
                "where": [{"column": "Univ", "op": "=", "value": "A"}],
            },
            "attribute_matches": [["Program", "Major"]],
            "config": {"partitioning": "none"},
        }
        report = client.explain(payload)
        for key in ("query_left", "query_right", "explanations", "summary",
                    "stats", "timings", "service"):
            assert key in report, f"report payload missing {key!r}"
        assert report["query_left"]["result"] == 4.0
        assert report["query_right"]["result"] == 3.0
        assert report["service"]["cached_report"] is False
        warm = client.explain(payload)
        assert warm["service"]["cached_report"] is True, "repeat request must hit the cache"
        job = client.submit_job(payload)
        final = client.wait_for_job(job["id"])
        assert final["state"] == "done", f"job failed: {final}"
        plan = client.plan(
            {"database": "D2", "query": payload["query_right"], "run": True}
        )
        assert plan["plan"]["operator"] == "AggregateExec", f"unexpected plan: {plan}"
        assert plan["rows_out"] == 1
        assert plan["cost_model"] == "heuristic", f"unexpected cost model: {plan}"
        analysis = client.analyze("D2")
        assert analysis["relations"]["D2"]["row_count"] == 4, f"bad ANALYZE: {analysis}"
        stats_plan = client.plan(
            {"database": "D2", "query": payload["query_right"], "run": True}
        )
        assert stats_plan["cost_model"] == "statistics", (
            f"ANALYZE did not switch the planner to statistics: {stats_plan}"
        )
        assert stats_plan["rows_out"] == 1
        stats = client.stats()
        assert stats["service"]["requests_served"] >= 3
        plans = stats["service"]["caches"]["plans"]
        assert plans["misses"] >= 1, f"plans cache never exercised: {plans}"
        stats_cache = stats["service"]["caches"]["stats"]
        assert stats_cache["misses"] >= 1, f"stats cache never exercised: {stats_cache}"
        print(
            "service self-test ok: cold + warm + async explain + plan + analyze "
            f"round trips passed (plans cache: {plans['hits']} hits / "
            f"{plans['misses']} misses)"
        )
        return 0
    finally:
        server.shutdown()


def crash_smoke() -> int:
    """Crash-recovery smoke: serve, ``kill -9``, corrupt a spill, restart.

    Asserts the three crash-safety guarantees end to end, across real
    processes: answers after recovery are identical to pre-crash answers;
    a corrupt spill file is quarantined (counted, renamed ``*.corrupt``)
    instead of crashing or poisoning the warm path; orphaned temp files from
    a mid-write crash are ignored.
    """
    import json
    import os
    import signal
    import subprocess
    import tempfile
    import time
    import urllib.error

    def _start_daemon(spill_dir: str) -> tuple[subprocess.Popen, ServiceClient]:
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.service",
                "--port", "0",
                "--cache-entries", "1",   # force evictions -> disk spill
                "--spill-dir", spill_dir,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=dict(os.environ),
        )
        line = process.stdout.readline()
        marker = "listening on "
        assert marker in line, f"daemon did not announce its port: {line!r}"
        base_url = line.split(marker, 1)[1].split()[0]
        client = ServiceClient(base_url, timeout=10.0)
        deadline = time.monotonic() + 10.0
        while True:
            try:
                client.health()
                return process, client
            except (urllib.error.URLError, ConnectionError, OSError):
                if time.monotonic() > deadline:
                    process.kill()
                    raise AssertionError("daemon never became healthy")
                time.sleep(0.05)

    def _register_and_explain(client: ServiceClient) -> dict:
        client.register_database(
            "D1",
            {"D1": [
                {"Program": "Accounting", "Degree": "B.S."},
                {"Program": "CS", "Degree": "B.A."},
                {"Program": "CS", "Degree": "B.S."},
                {"Program": "ECE", "Degree": "B.S."},
            ]},
        )
        client.register_database(
            "D2",
            {"D2": [
                {"Univ": "A", "Major": "Accounting"},
                {"Univ": "A", "Major": "CSE"},
                {"Univ": "A", "Major": "ECE"},
                {"Univ": "B", "Major": "Art"},
            ]},
        )
        payload = {
            "database_left": "D1",
            "query_left": {"name": "Q1", "kind": "count", "relation": "D1",
                           "attribute": "Program"},
            "database_right": "D2",
            "query_right": {
                "name": "Q2", "kind": "count", "relation": "D2", "attribute": "Major",
                "where": [{"column": "Univ", "op": "=", "value": "A"}],
            },
            "attribute_matches": [["Program", "Major"]],
            "config": {"partitioning": "none"},
        }
        return client.explain(payload)

    def _answers(report: dict) -> str:
        return json.dumps(
            {"explanations": report["explanations"], "summary": report["summary"]},
            sort_keys=True,
        )

    with tempfile.TemporaryDirectory(prefix="repro-crash-smoke-") as spill_dir:
        process, client = _start_daemon(spill_dir)
        try:
            before = _register_and_explain(client)
        except BaseException:
            process.kill()
            raise
        # The crash: no shutdown hooks, no flushing -- SIGKILL.
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=10)

        spills = sorted(p for p in os.listdir(spill_dir) if p.endswith(".pkl"))
        assert spills, f"no spill files written before the crash: {os.listdir(spill_dir)}"
        # Corrupt one spilled artifact (torn write / bit rot) and plant an
        # orphaned temp file, as a crash mid-spill-write would leave behind.
        victim = os.path.join(spill_dir, spills[0])
        raw = open(victim, "rb").read()
        open(victim, "wb").write(raw[: max(1, len(raw) // 2)])
        open(os.path.join(spill_dir, ".provenance-deadbeef.tmp"), "wb").write(b"torn")

        process, client = _start_daemon(spill_dir)
        try:
            after = _register_and_explain(client)
            assert _answers(before) == _answers(after), (
                "answers diverged across crash recovery"
            )
            health = client.health()
            stats = client.stats()["service"]
            spill_errors = stats["total"]["spill_errors"]
            listing = os.listdir(spill_dir)
            quarantined = [p for p in listing if p.endswith(".corrupt")]
            if spills[0] not in listing:
                # The warm path read the corrupt file: it must have been
                # quarantined and counted, never silently dropped.
                assert f"{spills[0]}.corrupt" in listing, (
                    f"corrupt spill vanished without quarantine: {listing}"
                )
                assert spill_errors >= 1
            print(
                "crash-recovery smoke ok: identical answers after kill -9 + "
                f"corrupt spill (spill_errors={spill_errors}, "
                f"quarantined={len(quarantined)}, status={health['status']})"
            )
        finally:
            process.kill()
            process.wait(timeout=10)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Explain3D explanation service daemon (JSON over HTTP)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8311)
    parser.add_argument("--job-workers", type=int, default=2,
                        help="concurrent async explain jobs")
    parser.add_argument("--cache-entries", type=int, default=128,
                        help="max in-memory entries per artifact cache")
    parser.add_argument("--report-cache-entries", type=int, default=256)
    parser.add_argument("--spill-dir", default=None,
                        help="directory for disk spill of evicted artifacts")
    parser.add_argument("--spill-write-through", action="store_true",
                        help="persist every cached artifact to --spill-dir eagerly "
                             "(shared cross-process cache tier for fleet workers)")
    parser.add_argument("--drain-seconds", type=float, default=10.0,
                        help="SIGTERM grace: bound on draining in-flight jobs "
                             "before the daemon persists its caches and exits 0")
    parser.add_argument("--default-deadline-seconds", type=float, default=None,
                        help="wall-clock budget applied to requests without one")
    parser.add_argument("--breaker-failures", type=int, default=5,
                        help="consecutive failures before a database's breaker opens")
    parser.add_argument("--breaker-reset-seconds", type=float, default=30.0,
                        help="cool-down before an open breaker admits a probe")
    parser.add_argument("--retry-attempts", type=int, default=1,
                        help="total tries per async job on transient errors (1 = no retry)")
    parser.add_argument("--self-test", action="store_true",
                        help="boot on an ephemeral port, run one request, exit")
    parser.add_argument("--crash-smoke", action="store_true",
                        help="kill -9 + corrupt-spill crash-recovery smoke, then exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.crash_smoke:
        return crash_smoke()

    if FAULTS.load_env():
        armed = ", ".join(f"{rule.site}={rule.mode}" for rule in FAULTS.rules())
        print(f"chaos faults armed from REPRO_FAULTS: {armed}")

    service = _build_service(args)
    retry_policy = (
        RetryPolicy(attempts=args.retry_attempts) if args.retry_attempts > 1 else None
    )
    server = serve(
        service,
        host=args.host,
        port=args.port,
        job_workers=args.job_workers,
        retry_policy=retry_policy,
    )
    host, port = server.server_address[:2]
    print(f"explain service listening on http://{host}:{port} (Ctrl-C to stop)",
          flush=True)

    # Graceful SIGTERM: stop accepting, drain in-flight jobs (bounded by
    # --drain-seconds), persist the cache spill, exit 0.  The handler only
    # requests shutdown from a helper thread -- calling ``server.shutdown()``
    # inside the handler would deadlock the serve_forever loop it interrupts.
    drain_requested = threading.Event()

    def _on_sigterm(signum, frame):  # noqa: ARG001 - stdlib signature
        drain_requested.set()
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        pass  # not the main thread (embedded use): skip the handler

    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.shutdown()
    if drain_requested.is_set():
        drained = server.jobs.drain(timeout=args.drain_seconds)
        server.jobs.shutdown(wait=False)
        persisted = service.persist_caches()
        print(
            f"SIGTERM drain: jobs {'settled' if drained else 'timed out'} "
            f"within {args.drain_seconds}s, persisted {persisted} cache "
            f"entr{'y' if persisted == 1 else 'ies'}; exiting 0",
            flush=True,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())

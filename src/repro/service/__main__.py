"""Run the explanation service daemon: ``python -m repro.service``.

Options cover the service knobs (cache sizes, disk spill, job concurrency)
plus ``--self-test``, which boots the daemon on an ephemeral port, drives one
full register + explain round trip through the HTTP client, validates the
response shape, and exits -- the CI smoke job runs exactly that.
"""

from __future__ import annotations

import argparse
import sys

from repro.service.api import ServiceClient, serve, serve_in_background
from repro.service.engine import ExplainService, ServiceConfig


def _build_service(args: argparse.Namespace) -> ExplainService:
    return ExplainService(
        ServiceConfig(
            cache_entries=args.cache_entries,
            report_cache_entries=args.report_cache_entries,
            spill_dir=args.spill_dir,
        )
    )


def self_test() -> int:
    """Boot the daemon, run one explain request end to end, validate the JSON."""
    service = ExplainService()
    server, _ = serve_in_background(service, port=0)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    try:
        assert client.health()["status"] == "ok"
        client.register_database(
            "D1",
            {
                "D1": [
                    {"Program": "Accounting", "Degree": "B.S."},
                    {"Program": "CS", "Degree": "B.A."},
                    {"Program": "CS", "Degree": "B.S."},
                    {"Program": "ECE", "Degree": "B.S."},
                ]
            },
        )
        client.register_database(
            "D2",
            {
                "D2": [
                    {"Univ": "A", "Major": "Accounting"},
                    {"Univ": "A", "Major": "CSE"},
                    {"Univ": "A", "Major": "ECE"},
                    {"Univ": "B", "Major": "Art"},
                ]
            },
        )
        payload = {
            "database_left": "D1",
            "query_left": {"name": "Q1", "kind": "count", "relation": "D1",
                           "attribute": "Program"},
            "database_right": "D2",
            "query_right": {
                "name": "Q2", "kind": "count", "relation": "D2", "attribute": "Major",
                "where": [{"column": "Univ", "op": "=", "value": "A"}],
            },
            "attribute_matches": [["Program", "Major"]],
            "config": {"partitioning": "none"},
        }
        report = client.explain(payload)
        for key in ("query_left", "query_right", "explanations", "summary",
                    "stats", "timings", "service"):
            assert key in report, f"report payload missing {key!r}"
        assert report["query_left"]["result"] == 4.0
        assert report["query_right"]["result"] == 3.0
        assert report["service"]["cached_report"] is False
        warm = client.explain(payload)
        assert warm["service"]["cached_report"] is True, "repeat request must hit the cache"
        job = client.submit_job(payload)
        final = client.wait_for_job(job["id"])
        assert final["state"] == "done", f"job failed: {final}"
        plan = client.plan(
            {"database": "D2", "query": payload["query_right"], "run": True}
        )
        assert plan["plan"]["operator"] == "AggregateExec", f"unexpected plan: {plan}"
        assert plan["rows_out"] == 1
        assert plan["cost_model"] == "heuristic", f"unexpected cost model: {plan}"
        analysis = client.analyze("D2")
        assert analysis["relations"]["D2"]["row_count"] == 4, f"bad ANALYZE: {analysis}"
        stats_plan = client.plan(
            {"database": "D2", "query": payload["query_right"], "run": True}
        )
        assert stats_plan["cost_model"] == "statistics", (
            f"ANALYZE did not switch the planner to statistics: {stats_plan}"
        )
        assert stats_plan["rows_out"] == 1
        stats = client.stats()
        assert stats["service"]["requests_served"] >= 3
        plans = stats["service"]["caches"]["plans"]
        assert plans["misses"] >= 1, f"plans cache never exercised: {plans}"
        stats_cache = stats["service"]["caches"]["stats"]
        assert stats_cache["misses"] >= 1, f"stats cache never exercised: {stats_cache}"
        print(
            "service self-test ok: cold + warm + async explain + plan + analyze "
            f"round trips passed (plans cache: {plans['hits']} hits / "
            f"{plans['misses']} misses)"
        )
        return 0
    finally:
        server.shutdown()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Explain3D explanation service daemon (JSON over HTTP)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8311)
    parser.add_argument("--job-workers", type=int, default=2,
                        help="concurrent async explain jobs")
    parser.add_argument("--cache-entries", type=int, default=128,
                        help="max in-memory entries per artifact cache")
    parser.add_argument("--report-cache-entries", type=int, default=256)
    parser.add_argument("--spill-dir", default=None,
                        help="directory for disk spill of evicted artifacts")
    parser.add_argument("--self-test", action="store_true",
                        help="boot on an ephemeral port, run one request, exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    service = _build_service(args)
    server = serve(service, host=args.host, port=args.port, job_workers=args.job_workers)
    host, port = server.server_address[:2]
    print(f"explain service listening on http://{host}:{port} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.shutdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
